#include "engine/engine.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <utility>

#include "exec/cost.h"
#include "query/fingerprint.h"
#include "query/optimize.h"
#include "query/parser.h"
#include "query/rewrite.h"
#include "storage/file_disk.h"

namespace ndq {

namespace internal {

struct TicketState {
  QueryPtr plan;
  std::shared_ptr<const SharedOperands> shared;
  /// Distributed batches: the batch's coordinator-side operand cache,
  /// kept alive by the tickets that share it.
  std::shared_ptr<OperandCache> dist_cache;
  OptimizeStats opt;  ///< what the optimizer did to `plan`

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  QueryOutcome outcome;

  void Complete(QueryOutcome out) {
    {
      std::lock_guard<std::mutex> lock(mu);
      outcome = std::move(out);
      done = true;
    }
    cv.notify_all();
  }

  const QueryOutcome& Wait() const {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return outcome;
  }

  bool IsDone() const {
    std::lock_guard<std::mutex> lock(mu);
    return done;
  }
};

/// One session's admission state. Submissions become "chains": at most
/// max_inflight pool tasks run at once, each evaluating queries and then
/// pulling the next waiting one, so a full pool never strands a queue and
/// no worker ever blocks waiting for admission (which could deadlock a
/// pool whose workers are all gatekeeping).
class SessionImpl : public std::enable_shared_from_this<SessionImpl> {
 public:
  SessionImpl(Engine* engine, SessionOptions options)
      : engine_(engine), options_(options) {}

  QueryTicket Submit(const std::string& text) {
    Result<QueryPtr> parsed = ParseQuery(text);
    if (!parsed.ok()) {
      return DoneTicket(nullptr, parsed.status(), {}, 0,
                        /*count_rejected=*/false);
    }
    return Submit(*parsed);
  }

  QueryTicket Submit(const QueryPtr& plan) {
    QueryPtr canonical = engine_->rewrite() ? RewriteQuery(plan) : plan;
    OptimizeStats opt;
    if (engine_->optimize_enabled()) {
      // Plan over a pinned view so the optimizer's statistics reads stay
      // on one store version while concurrent mutations publish.
      std::shared_ptr<const EntrySource> view = engine_->PinStore();
      OptimizedPlan optimized = OptimizeQuery(*view, canonical);
      canonical = optimized.plan;
      opt = optimized.stats;
    }
    return SubmitCanonical(std::move(canonical), nullptr, opt);
  }

  BatchResult RunBatch(std::vector<Result<QueryPtr>> parsed) {
    BatchResult br;
    br.outcomes.resize(parsed.size());

    std::vector<QueryPtr> canon(parsed.size());
    std::vector<OptimizeStats> opts(parsed.size());
    std::vector<QueryPtr> valid;
    // One pinned view for the whole batch's planning pass.
    std::shared_ptr<const EntrySource> view = engine_->PinStore();
    for (size_t i = 0; i < parsed.size(); ++i) {
      if (!parsed[i].ok()) continue;
      canon[i] = engine_->rewrite() ? RewriteQuery(*parsed[i]) : *parsed[i];
      // Optimize BEFORE the sharing census: reordering rebuilds operand
      // permutations into one canonical left-deep shape, so the census
      // sees them as the same sub-plan and shares it.
      if (engine_->optimize_enabled()) {
        OptimizedPlan optimized = OptimizeQuery(*view, canon[i]);
        canon[i] = optimized.plan;
        opts[i] = optimized.stats;
      }
      valid.push_back(canon[i]);
    }
    view.reset();

    // The sharing census over the canonical batch, and one precompute
    // pass so every shared subtree is materialized exactly once before
    // any query runs (queries then only ever hit).
    PlanCensus census = AnalyzeBatch(valid);
    br.stats.shared_subtrees = census.shared.size();
    br.stats.shared_occurrences = census.TotalOccurrences();
    OperandCache* cache = engine_->cache();
    std::shared_ptr<const SharedOperands> shared;
    std::shared_ptr<OperandCache> dist_cache;
    OperandCacheStats before;
    if (!census.shared.empty()) {
      if (engine_->fleet() != nullptr) {
        // Distributed: sharing happens at the coordinator. No precompute
        // pass — the local evaluator cannot reach the fleet; instead the
        // first query to need a shared sub-plan ships it and publishes
        // the shipped list to this per-batch cache, and every later
        // occurrence is a coordinator-local copy.
        if (engine_->options().cache_capacity_pages > 0) {
          shared = std::make_shared<const SharedOperands>(
              SharedOperands{census.SharedKeys()});
          dist_cache = std::make_shared<OperandCache>(
              engine_->fleet()->coordinator_disk(),
              engine_->options().cache_capacity_pages);
        }
      } else if (cache != nullptr) {
        before = cache->stats();
        shared = std::make_shared<const SharedOperands>(
            SharedOperands{census.SharedKeys()});
        engine_->PrecomputeShared(census.maximal, shared);
      }
    }

    std::vector<QueryTicket> tickets(parsed.size());
    for (size_t i = 0; i < parsed.size(); ++i) {
      if (!parsed[i].ok()) continue;
      tickets[i] = SubmitCanonical(canon[i], shared, opts[i], dist_cache);
    }
    for (size_t i = 0; i < parsed.size(); ++i) {
      if (!parsed[i].ok()) {
        br.outcomes[i].status = parsed[i].status();
        continue;
      }
      br.outcomes[i] = TakeOutcome(tickets[i]);
      for (const DegradationWarning& w : br.outcomes[i].warnings) {
        if (w.source == "admission") {
          ++br.stats.rejected;
          break;
        }
      }
    }
    if (shared != nullptr) {
      OperandCacheStats after =
          dist_cache != nullptr ? dist_cache->stats() : cache->stats();
      br.stats.cache_hits = after.hits - before.hits;
      br.stats.cache_misses = after.misses - before.misses;
    }
    return br;
  }

  /// Waits for the ticket and moves its outcome out (batch tickets are
  /// owned exclusively by RunBatch, so the move cannot race a reader).
  QueryOutcome TakeOutcome(const QueryTicket& ticket) {
    ticket.state_->Wait();
    std::lock_guard<std::mutex> lock(ticket.state_->mu);
    return std::move(ticket.state_->outcome);
  }

  UpdateResult Apply(const UpdateBatch& batch) {
    return engine_->ApplyUpdates(batch);
  }

  void Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return inflight_ == 0 && waiting_.empty(); });
  }

  SessionStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  /// Admission + enqueue of an already-canonical, already-optimized plan.
  QueryTicket SubmitCanonical(QueryPtr plan,
                              std::shared_ptr<const SharedOperands> shared,
                              const OptimizeStats& opt = {},
                              std::shared_ptr<OperandCache> dist_cache =
                                  nullptr) {
    double est = EstimateCost(*engine_->PinStore(), *plan).TotalPages();
    uint64_t budget = options_.per_query_page_budget ==
                              SessionOptions::kInheritBudget
                          ? engine_->page_budget()
                          : options_.per_query_page_budget;
    if (budget > 0 && est > static_cast<double>(budget)) {
      DegradationWarning w{
          "admission", "estimated " + std::to_string((uint64_t)est) +
                           " pages exceeds the per-query budget of " +
                           std::to_string(budget)};
      return DoneTicket(std::move(plan),
                        Status::ResourceExhausted(w.ToString()), {w}, est,
                        /*count_rejected=*/true);
    }

    auto state = std::make_shared<TicketState>();
    state->plan = std::move(plan);
    state->shared = std::move(shared);
    state->dist_cache = std::move(dist_cache);
    state->opt = opt;
    bool dispatch = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      size_t depth = options_.queue_depth == SessionOptions::kInherit
                         ? engine_->options().queue_depth
                         : options_.queue_depth;
      if (inflight_ + waiting_.size() >= depth) {
        ++stats_.rejected;
        DegradationWarning w{"admission",
                             "session queue depth " +
                                 std::to_string(depth) + " exceeded"};
        QueryOutcome out;
        out.status = Status::ResourceExhausted(w.ToString());
        out.plan = std::move(state->plan);
        out.warnings.push_back(std::move(w));
        out.estimated_pages = est;
        state->Complete(std::move(out));
        return QueryTicket(std::move(state));
      }
      ++stats_.submitted;
      size_t max_inflight = options_.max_inflight == SessionOptions::kInherit
                                ? engine_->options().max_inflight
                                : options_.max_inflight;
      if (max_inflight == 0) max_inflight = 1;
      if (inflight_ < max_inflight) {
        ++inflight_;
        dispatch = true;
      } else {
        waiting_.push_back(state);
      }
    }
    if (dispatch) {
      auto self = shared_from_this();
      engine_->Dispatch([self, state] { self->Chain(state); });
    }
    return QueryTicket(std::move(state));
  }

  /// One dispatched task: evaluate, deliver, pull the next waiting query.
  void Chain(std::shared_ptr<TicketState> state) {
    while (state != nullptr) {
      QueryOutcome out = engine_->ExecuteQuery(
          state->plan, state->shared.get(), state->dist_cache.get());
      out.optimizer = state->opt;
      out.trace.plan_rewrites = state->opt.Total();
      state->Complete(std::move(out));
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.completed;
      }
      state = PullNext();
    }
  }

  std::shared_ptr<TicketState> PullNext() {
    std::unique_lock<std::mutex> lock(mu_);
    if (!waiting_.empty()) {
      std::shared_ptr<TicketState> next = waiting_.front();
      waiting_.pop_front();
      return next;
    }
    --inflight_;
    lock.unlock();
    cv_.notify_all();
    return nullptr;
  }

  /// An already-completed ticket (parse errors, admission rejections).
  QueryTicket DoneTicket(QueryPtr plan, Status status,
                         std::vector<DegradationWarning> warnings, double est,
                         bool count_rejected) {
    auto state = std::make_shared<TicketState>();
    QueryOutcome out;
    out.status = std::move(status);
    out.plan = std::move(plan);
    out.warnings = std::move(warnings);
    out.estimated_pages = est;
    state->Complete(std::move(out));
    if (count_rejected) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
    }
    return QueryTicket(std::move(state));
  }

  Engine* const engine_;
  const SessionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<TicketState>> waiting_;
  size_t inflight_ = 0;  // chains currently dispatched
  SessionStats stats_;
};

}  // namespace internal

// ---------------------------------------------------------------------------
// UpdateOp
// ---------------------------------------------------------------------------

UpdateOp UpdateOp::Add(Entry e) {
  UpdateOp op;
  op.kind = Kind::kAdd;
  op.entry = std::move(e);
  return op;
}

UpdateOp UpdateOp::Put(Entry e) {
  UpdateOp op;
  op.kind = Kind::kPut;
  op.entry = std::move(e);
  return op;
}

UpdateOp UpdateOp::Remove(Dn dn) {
  UpdateOp op;
  op.kind = Kind::kRemove;
  op.dn = std::move(dn);
  return op;
}

// ---------------------------------------------------------------------------
// QueryTicket / Session
// ---------------------------------------------------------------------------

bool QueryTicket::done() const {
  return state_ != nullptr && state_->IsDone();
}

const QueryOutcome& QueryTicket::Wait() const {
  static const QueryOutcome kInvalid = [] {
    QueryOutcome out;
    out.status = Status::InvalidArgument("invalid (default) QueryTicket");
    return out;
  }();
  if (state_ == nullptr) return kInvalid;
  return state_->Wait();
}

namespace {

QueryTicket InvalidSessionTicket() {
  // Reuse the invalid-ticket path: a default ticket waits to an
  // InvalidArgument outcome.
  return QueryTicket();
}

}  // namespace

QueryTicket Session::Submit(const std::string& query_text) {
  if (impl_ == nullptr) return InvalidSessionTicket();
  return impl_->Submit(query_text);
}

QueryTicket Session::Submit(const QueryPtr& plan) {
  if (impl_ == nullptr) return InvalidSessionTicket();
  return impl_->Submit(plan);
}

QueryOutcome Session::Run(const std::string& query_text) {
  return Submit(query_text).Wait();
}

QueryOutcome Session::Run(const QueryPtr& plan) {
  return Submit(plan).Wait();
}

Result<std::vector<Entry>> Session::Query(const std::string& query_text) {
  QueryOutcome out = Run(query_text);
  if (!out.ok()) return out.status;
  return std::move(out.entries);
}

BatchResult Session::RunBatch(const std::vector<std::string>& query_texts) {
  std::vector<Result<QueryPtr>> parsed;
  parsed.reserve(query_texts.size());
  for (const std::string& text : query_texts) parsed.push_back(ParseQuery(text));
  return RunBatchParsed(std::move(parsed));
}

BatchResult Session::RunBatch(const std::vector<QueryPtr>& plans) {
  std::vector<Result<QueryPtr>> parsed;
  parsed.reserve(plans.size());
  for (const QueryPtr& plan : plans) {
    if (plan == nullptr) {
      parsed.push_back(Status::InvalidArgument("null plan in batch"));
    } else {
      parsed.push_back(plan);
    }
  }
  return RunBatchParsed(std::move(parsed));
}

BatchResult Session::RunBatchParsed(std::vector<Result<QueryPtr>> parsed) {
  if (impl_ == nullptr) {
    BatchResult br;
    br.outcomes.resize(parsed.size());
    for (QueryOutcome& out : br.outcomes) {
      out.status = Status::InvalidArgument("session not opened");
    }
    return br;
  }
  return impl_->RunBatch(std::move(parsed));
}

UpdateResult Session::Apply(const UpdateBatch& batch) {
  if (impl_ == nullptr) {
    UpdateResult res;
    res.status = Status::InvalidArgument("session not opened");
    return res;
  }
  return impl_->Apply(batch);
}

void Session::Drain() {
  if (impl_ != nullptr) impl_->Drain();
}

SessionStats Session::stats() const {
  if (impl_ == nullptr) return SessionStats();
  return impl_->stats();
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

namespace {

/// Builds one engine-owned disk per EngineOptions::disk_backend
/// ("" = $NDQ_DISK_BACKEND, then "sim"). File-backed disks live under
/// $NDQ_FILE_DISK_DIR (default /tmp) and are unlinked immediately after
/// opening — the fd keeps the storage alive for the engine's lifetime
/// and nothing ever leaks into the filesystem.
std::unique_ptr<Disk> MakeOwnedDisk(const EngineOptions& options,
                                    const char* role) {
  std::string backend = options.disk_backend;
  if (backend.empty()) {
    const char* env = std::getenv("NDQ_DISK_BACKEND");
    if (env != nullptr) backend = env;
  }
  if (backend != "file") return std::make_unique<SimDisk>(options.page_size);

  static std::atomic<uint64_t> seq{0};
  const char* dir = std::getenv("NDQ_FILE_DISK_DIR");
  std::string path = std::string(dir != nullptr ? dir : "/tmp") + "/ndq-" +
                     role + "-" + std::to_string(::getpid()) + "-" +
                     std::to_string(seq.fetch_add(1)) + ".pages";
  auto disk = std::make_unique<FileDisk>(path, options.page_size);
  if (disk->init_status().ok()) ::unlink(path.c_str());
  return disk;
}

}  // namespace

Engine::Engine(Schema schema, EngineOptions options)
    : owned_data_disk_(MakeOwnedDisk(options, "data")),
      owned_scratch_(MakeOwnedDisk(options, "scratch")),
      owned_store_(std::make_unique<DirectoryStore>(owned_data_disk_.get(),
                                                    std::move(schema))),
      scratch_(owned_scratch_.get()),
      data_disk_(owned_data_disk_.get()),
      store_(owned_store_.get()),
      options_(std::move(options)) {
  Init();
}

Engine::Engine(Disk* scratch, const EntrySource* store,
               EngineOptions options, Disk* data_disk)
    : scratch_(scratch),
      data_disk_(data_disk),
      store_(store),
      options_(std::move(options)) {
  Init();
}

namespace {

/// Stand-in store for an engine whose build failed: planning over it is
/// harmless (everything estimates to zero) and evaluation never happens —
/// ExecuteQuery short-circuits on init_status() first.
class NullSource : public EntrySource {
 public:
  Status ScanRange(std::string_view, std::string_view,
                   const std::function<Status(std::string_view)>&)
      const override {
    return Status::Internal("engine failed to initialize");
  }
  uint64_t num_entries() const override { return 0; }
  uint64_t EstimateRangeRecords(std::string_view,
                                std::string_view) const override {
    return 0;
  }
  uint64_t EstimateRangePages(std::string_view,
                              std::string_view) const override {
    return 0;
  }
};

}  // namespace

Engine::Engine(const DirectoryInstance& global, EngineOptions options)
    : options_(std::move(options)) {
  if (options_.backend == EngineBackend::kDistributed) {
    Result<DistributedDirectory> built =
        DistributedDirectory::Build(global, options_.topology);
    if (built.ok()) {
      fleet_ = std::make_unique<DistributedDirectory>(built.TakeValue());
      scratch_ = fleet_->coordinator_disk();
      store_ = &fleet_->estimation_source();
    } else {
      init_status_ = built.status();
    }
  } else {
    owned_data_disk_ = MakeOwnedDisk(options_, "data");
    owned_scratch_ = MakeOwnedDisk(options_, "scratch");
    Result<EntryStore> loaded =
        EntryStore::BulkLoad(owned_data_disk_.get(), global);
    if (loaded.ok()) {
      owned_entry_store_ =
          std::make_unique<EntryStore>(loaded.TakeValue());
      scratch_ = owned_scratch_.get();
      data_disk_ = owned_data_disk_.get();
      store_ = owned_entry_store_.get();
    } else {
      init_status_ = loaded.status();
    }
  }
  if (!init_status_.ok()) {
    if (owned_scratch_ == nullptr) {
      owned_scratch_ = std::make_unique<SimDisk>(options_.page_size);
    }
    null_source_ = std::make_unique<NullSource>();
    scratch_ = owned_scratch_.get();
    store_ = null_source_.get();
  }
  Init();
}

void Engine::Init() {
  // $NDQ_OPTIMIZE=on|off (also 1|0) overrides the constructed default,
  // mirroring $NDQ_DISK_BACKEND — CI's lever for running the whole suite
  // with the optimizer off without touching each test.
  if (const char* env = std::getenv("NDQ_OPTIMIZE")) {
    std::string v = env;
    if (v == "off" || v == "0") options_.optimize = false;
    if (v == "on" || v == "1") options_.optimize = true;
  }
  if (options_.cache_capacity_pages > 0) {
    cache_ =
        std::make_unique<OperandCache>(scratch_, options_.cache_capacity_pages);
  }
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    RebuildPoolLocked(options_.exec.parallelism == 0
                          ? 1
                          : options_.exec.parallelism);
  }
  if (!options_.fault_spec.empty()) {
    // A bad spec at construction leaves fault injection off; call
    // SetFaults directly to observe the parse error.
    SetFaults(options_.fault_spec).ok();
  }
  if (options_.io_depth > 0) SetIoDepth(options_.io_depth);
  if (owned_store_ != nullptr) {
    // Threshold-triggered flush/compaction runs on the engine's pool
    // (inline when workerless) with engine-wide in-flight accounting, so
    // Drain() and the destructor wait for maintenance like any query.
    owned_store_->SetMaintenanceExecutor(
        [this](std::function<void()> task) { Dispatch(std::move(task)); });
  }
}

Engine::~Engine() {
  Drain();
  AttachInjector(nullptr);
}

void Engine::RebuildPoolLocked(size_t parallelism) {
  // Order matters: the group and evaluator borrow the pool.
  evaluator_.reset();
  group_.reset();
  pool_.reset();
  options_.exec.parallelism = parallelism;
  // The fleet fans out across shards with the same degree; its pool is
  // its own (shard fetches must not deadlock against session dispatch).
  if (fleet_ != nullptr) fleet_->set_parallelism(parallelism);
  // A session thread blocks on its ticket instead of helping the pool
  // (unlike a direct ParallelEvaluator caller), so delivering
  // `parallelism` concurrent evaluation threads takes that many WORKERS —
  // a ThreadPool of parallelism+1. With parallelism 1 the pool stays
  // workerless and dispatch runs inline on the submitting thread.
  pool_ = std::make_unique<ThreadPool>(parallelism <= 1 ? 1
                                                        : parallelism + 1);
  group_ = std::make_unique<ThreadPool::TaskGroup>(pool_.get());
  evaluator_ = std::make_unique<ParallelEvaluator>(
      scratch_, store_, options_.exec, cache_.get(), pool_.get());
  // Re-install the index hook: the evaluator was just recreated but the
  // indexes (if built) survive pool resizes.
  evaluator_->SetIndexHook(MakeIndexHook());
}

Session Engine::OpenSession(SessionOptions options) {
  return Session(std::make_shared<internal::SessionImpl>(this, options));
}

void Engine::SetParallelism(size_t n) {
  if (n == 0) n = 1;
  std::unique_lock<std::mutex> lock(sched_mu_);
  sched_cv_.wait(lock, [&] { return global_inflight_ == 0; });
  RebuildPoolLocked(n);
}

size_t Engine::parallelism() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  // Invert the worker-count adjustment in RebuildPoolLocked.
  size_t p = pool_->parallelism();
  return p <= 1 ? 1 : p - 1;
}

Status Engine::SetFaults(const std::string& spec) {
  std::unique_lock<std::mutex> lock(sched_mu_);
  sched_cv_.wait(lock, [&] { return global_inflight_ == 0; });
  if (spec.empty() || spec == "off") {
    AttachInjector(nullptr);
    injector_.reset();
    options_.fault_spec.clear();
    return Status::OK();
  }
  NDQ_ASSIGN_OR_RETURN(FaultInjector parsed, FaultInjector::Parse(spec));
  AttachInjector(nullptr);
  injector_ = std::make_unique<FaultInjector>(std::move(parsed));
  AttachInjector(injector_.get());
  options_.fault_spec = spec;
  return Status::OK();
}

void Engine::SetPageBudget(uint64_t pages) {
  std::lock_guard<std::mutex> lock(sched_mu_);
  options_.per_query_page_budget = pages;
}

void Engine::SetOptimize(bool on) {
  std::lock_guard<std::mutex> lock(sched_mu_);
  options_.optimize = on;
}

bool Engine::optimize() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  return options_.optimize;
}

bool Engine::optimize_enabled() const { return optimize(); }

IndexHook Engine::MakeIndexHook() const {
  IndexHook hook;
  if (indexes_ == nullptr) return hook;
  hook.indexes = indexes_.get();
  hook.store = indexed_store_;
  const EntrySource* store = store_;
  hook.use_probe = [store](const Query& leaf) {
    return ChooseAccessPath(*store, leaf).path == AccessPath::kIndexProbe;
  };
  return hook;
}

Status Engine::BuildIndexes(const IndexSpec& spec) {
  if (fleet_ != nullptr) {
    return Status::InvalidArgument(
        "distributed engines have no coordinator-local segment to index; "
        "indexes live on the shards");
  }
  const auto* entry_store = dynamic_cast<const EntryStore*>(store_);
  if (entry_store == nullptr) {
    return Status::InvalidArgument(
        "BuildIndexes requires a bulk-loaded EntryStore (borrowing mode); "
        "the mutable DirectoryStore's merged view has no stable segment "
        "to index");
  }
  std::unique_lock<std::mutex> lock(sched_mu_);
  sched_cv_.wait(lock, [&] { return global_inflight_ == 0; });
  auto pool = std::make_unique<BufferPool>(scratch_, 256);
  NDQ_ASSIGN_OR_RETURN(AttributeIndexes built,
                       AttributeIndexes::Build(pool.get(), *entry_store, spec));
  indexes_ = std::make_unique<AttributeIndexes>(std::move(built));
  index_pool_ = std::move(pool);
  indexed_store_ = entry_store;
  evaluator_->SetIndexHook(MakeIndexHook());
  return Status::OK();
}

void Engine::SetIoDepth(size_t n) {
  std::unique_lock<std::mutex> lock(sched_mu_);
  sched_cv_.wait(lock, [&] { return global_inflight_ == 0; });
  scratch_->SetIoDepth(n);
  if (data_disk_ != nullptr && data_disk_ != scratch_) {
    data_disk_->SetIoDepth(n);
  }
  if (fleet_ != nullptr) {
    for (DirectoryServer* server : fleet_->servers()) {
      server->disk()->SetIoDepth(n);
    }
  }
  options_.io_depth = n;
}

size_t Engine::io_depth() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  return options_.io_depth;
}

uint64_t Engine::page_budget() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  return options_.per_query_page_budget;
}

std::shared_ptr<const EntrySource> Engine::PinStore() const {
  std::shared_ptr<const EntrySource> snap = store_->PinSnapshot();
  if (snap != nullptr) return snap;
  // Immutable store: a non-owning alias so callers hold one handle type.
  return std::shared_ptr<const EntrySource>(std::shared_ptr<void>(), store_);
}

UpdateResult Engine::ApplyUpdates(const UpdateBatch& batch) {
  UpdateResult res;
  if (fleet_ != nullptr) {
    res.status = Status::InvalidArgument(
        "distributed engines are read-only: the fleet's replicas are "
        "bulk-loaded copies of one instance; rebuild the engine to change "
        "the data");
    return res;
  }
  if (owned_store_ == nullptr) {
    res.status = Status::InvalidArgument(
        "engine has no mutable store (borrowing mode); mutate the "
        "borrowed store through its owner");
    return res;
  }
  res.op_status.reserve(batch.ops.size());
  for (const UpdateOp& op : batch.ops) {
    Status s;
    switch (op.kind) {
      case UpdateOp::Kind::kAdd:
        s = owned_store_->Add(op.entry);
        break;
      case UpdateOp::Kind::kPut:
        s = owned_store_->Put(op.entry);
        break;
      case UpdateOp::Kind::kRemove:
        s = owned_store_->Remove(op.dn);
        break;
    }
    if (s.ok()) {
      ++res.applied;
    } else if (res.status.ok()) {
      res.status = s;
    }
    res.op_status.push_back(std::move(s));
  }
  // Version-stamped cache keys already keep stale lists from serving new
  // queries; clearing reclaims their pages promptly.
  if (res.applied > 0) InvalidateCaches();
  return res;
}

void Engine::InvalidateCaches() {
  if (cache_ != nullptr) cache_->Clear();
}

void Engine::Drain() {
  std::unique_lock<std::mutex> lock(sched_mu_);
  sched_cv_.wait(lock, [&] { return global_inflight_ == 0; });
}

EvalStats Engine::eval_stats() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  return evaluator_->stats();
}

void Engine::AttachInjector(FaultInjector* injector) {
  scratch_->set_fault_injector(injector);
  if (data_disk_ != nullptr) data_disk_->set_fault_injector(injector);
  if (fleet_ != nullptr) {
    for (DirectoryServer* server : fleet_->servers()) {
      server->disk()->set_fault_injector(injector);
    }
  }
}

void Engine::Dispatch(std::function<void()> body) {
  ThreadPool::TaskGroup* group;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    ++global_inflight_;
    group = group_.get();
  }
  // With no pool workers this runs `body` inline on the calling thread;
  // the in-flight counter was already published, so a concurrent
  // SetParallelism cannot swap the pool out from under it.
  group->Run([this, body = std::move(body)] {
    body();
    std::lock_guard<std::mutex> lock(sched_mu_);
    --global_inflight_;
    sched_cv_.notify_all();
  });
}

QueryOutcome Engine::ExecuteQuery(const QueryPtr& plan,
                                  const SharedOperands* shared,
                                  OperandCache* dist_cache) {
  QueryOutcome out;
  out.plan = plan;
  if (!init_status_.ok()) {
    out.status = init_status_;
    return out;
  }
  out.estimated_pages = EstimateCost(*PinStore(), *plan).TotalPages();
  if (fleet_ != nullptr) {
    Result<std::vector<Entry>> r =
        fleet_->Execute(*plan, &out.trace, &out.warnings, dist_cache, shared);
    if (!r.ok()) {
      out.status = r.status();
      return out;
    }
    out.entries = r.TakeValue();
    return out;
  }
  Result<std::vector<Entry>> r =
      evaluator_->EvaluateToEntries(*plan, &out.trace, shared);
  out.trace.io_depth = scratch_->io_depth();
  if (!r.ok()) {
    out.status = r.status();
    return out;
  }
  out.entries = r.TakeValue();
  return out;
}

void Engine::PrecomputeShared(const std::vector<QueryPtr>& roots,
                              std::shared_ptr<const SharedOperands> shared) {
  if (cache_ == nullptr || roots.empty()) return;
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto sync = std::make_shared<Sync>();
  sync->remaining = roots.size();
  for (const QueryPtr& root : roots) {
    Dispatch([this, root, shared, sync] {
      // Evaluating the root with the shared set publishes it — and any
      // nested shared subtree — to the cache as a side effect; the list
      // itself is not needed. Failures (e.g. injected faults) are
      // absorbed: the queries will recompute whatever went uncached.
      Result<EntryList> r = evaluator_->Evaluate(*root, nullptr, shared.get());
      if (r.ok()) {
        ScopedRun guard(scratch_, r.TakeValue());
        guard.Free().ok();
      }
      {
        std::lock_guard<std::mutex> lock(sync->mu);
        --sync->remaining;
      }
      sync->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(sync->mu);
  sync->cv.wait(lock, [&] { return sync->remaining == 0; });
}

}  // namespace ndq
