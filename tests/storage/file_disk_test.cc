// FileDisk (storage/file_disk.h): the real-file backend must honor the
// exact same Disk contract the simulated device does — round-trips,
// free/reuse semantics, accounting, fault hooks, async prefetch — with
// pages living in an actual file on disk.

#include "storage/file_disk.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/fault_injector.h"
#include "storage/run.h"

namespace ndq {
namespace {

// A per-test backing path under TMPDIR (or /tmp), removed on teardown.
class FileDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* tmp = std::getenv("TMPDIR");
    path_ = std::string(tmp != nullptr ? tmp : "/tmp") + "/ndq-file-disk-" +
            std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".pages";
    ::unlink(path_.c_str());
  }
  void TearDown() override { ::unlink(path_.c_str()); }

  std::string path_;
};

TEST_F(FileDiskTest, RoundTripsPages) {
  FileDisk disk(path_, 512);
  ASSERT_TRUE(disk.init_status().ok()) << disk.init_status().ToString();

  std::vector<PageId> pages;
  std::vector<uint8_t> buf(disk.page_size());
  for (int i = 0; i < 20; ++i) {
    PageId id = disk.Allocate().TakeValue();
    std::memset(buf.data(), i + 1, buf.size());
    ASSERT_TRUE(disk.WritePage(id, buf.data()).ok());
    pages.push_back(id);
  }
  EXPECT_EQ(disk.live_pages(), 20u);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(disk.ReadPage(pages[i], buf.data()).ok());
    EXPECT_EQ(buf[0], static_cast<uint8_t>(i + 1));
    EXPECT_EQ(buf[buf.size() - 1], static_cast<uint8_t>(i + 1));
  }
  EXPECT_EQ(disk.stats().page_reads.load(), 20u);
  EXPECT_EQ(disk.stats().page_writes.load(), 20u);
  EXPECT_TRUE(disk.Sync().ok());
}

TEST_F(FileDiskTest, FreedPagesAreReusedAndZeroed) {
  FileDisk disk(path_, 512);
  PageId a = disk.Allocate().TakeValue();
  std::vector<uint8_t> buf(disk.page_size(), 0xAB);
  ASSERT_TRUE(disk.WritePage(a, buf.data()).ok());
  ASSERT_TRUE(disk.Free(a).ok());
  EXPECT_EQ(disk.live_pages(), 0u);
  EXPECT_FALSE(disk.ReadPage(a, buf.data()).ok()) << "read of freed page";

  PageId b = disk.Allocate().TakeValue();
  EXPECT_EQ(b, a) << "free list did not recycle the slot";
  ASSERT_TRUE(disk.ReadPage(b, buf.data()).ok());
  for (uint8_t byte : buf) ASSERT_EQ(byte, 0) << "recycled page not zeroed";
  EXPECT_FALSE(disk.Free(a + 100).ok()) << "free of never-allocated page";
}

TEST_F(FileDiskTest, ReopensExistingImage) {
  {
    FileDisk disk(path_, 512);
    std::vector<uint8_t> buf(disk.page_size(), 0x5A);
    PageId id = disk.Allocate().TakeValue();
    ASSERT_EQ(id, 0u);
    ASSERT_TRUE(disk.WritePage(id, buf.data()).ok());
    ASSERT_TRUE(disk.Sync().ok());
  }
  FileDisk reopened(path_, 512, /*open_existing=*/true);
  ASSERT_TRUE(reopened.init_status().ok())
      << reopened.init_status().ToString();
  EXPECT_EQ(reopened.live_pages(), 1u);
  std::vector<uint8_t> buf(reopened.page_size());
  ASSERT_TRUE(reopened.ReadPage(0, buf.data()).ok());
  EXPECT_EQ(buf[0], 0x5A);
}

TEST_F(FileDiskTest, InitErrorSurfacesOnFirstOperation) {
  FileDisk disk("/nonexistent-dir/ndq-test.pages", 512);
  EXPECT_FALSE(disk.init_status().ok());
  EXPECT_FALSE(disk.Allocate().ok());
  std::vector<uint8_t> buf(disk.page_size());
  EXPECT_FALSE(disk.ReadPage(0, buf.data()).ok());
}

TEST_F(FileDiskTest, RunScanAndPrefetchWorkOnRealFiles) {
  FileDisk disk(path_, 512);
  RunWriter writer(&disk);
  for (int i = 0; i < 1200; ++i) {
    ASSERT_TRUE(writer.Add("file-record-" + std::to_string(i)).ok());
  }
  ndq::Run run = writer.Finish().TakeValue();
  ASSERT_GT(run.pages.size(), 4u);

  auto scan = [&] {
    std::vector<std::string> got;
    RunReader reader(&disk, run);
    std::string rec;
    while (true) {
      Result<bool> more = reader.Next(&rec);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      got.push_back(rec);
    }
    return got;
  };

  disk.ResetStats();
  std::vector<std::string> sync_result = scan();
  ASSERT_EQ(sync_result.size(), 1200u);
  const uint64_t sync_reads = disk.stats().page_reads;

  disk.SetIoDepth(4);
  disk.ResetStats();
  EXPECT_EQ(scan(), sync_result);
  EXPECT_EQ(disk.stats().page_reads.load(), sync_reads)
      << "async accounting diverged on the file backend";
  disk.SetIoDepth(0);
}

TEST_F(FileDiskTest, FaultInjectionAppliesBeforeSyscalls) {
  FileDisk disk(path_, 512);
  PageId id = disk.Allocate().TakeValue();
  std::vector<uint8_t> buf(disk.page_size(), 1);
  ASSERT_TRUE(disk.WritePage(id, buf.data()).ok());

  FaultInjector injector(
      {FaultInjector::FailNth(1, FaultOpBit(FaultOp::kRead))});
  disk.set_fault_injector(&injector);
  EXPECT_FALSE(disk.ReadPage(id, buf.data()).ok());
  EXPECT_TRUE(disk.ReadPage(id, buf.data()).ok()) << "one-shot fault stuck";
  disk.set_fault_injector(nullptr);
  EXPECT_EQ(disk.stats().faults_injected.load(), 1u);
}

}  // namespace
}  // namespace ndq
