#include "storage/run.h"

#include <gtest/gtest.h>

namespace ndq {
namespace {

TEST(RunTest, WriteReadSmallRecords) {
  SimDisk disk(128);
  RunWriter w(&disk);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(w.Add("record-" + std::to_string(i)).ok());
  }
  ndq::Run run = w.Finish().ValueOrDie();
  EXPECT_EQ(run.num_records, 100u);

  RunReader r(&disk, run);
  std::string rec;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(r.Next(&rec).ValueOrDie());
    EXPECT_EQ(rec, "record-" + std::to_string(i));
  }
  EXPECT_FALSE(r.Next(&rec).ValueOrDie());
  EXPECT_FALSE(r.Next(&rec).ValueOrDie());  // stable at end
}

TEST(RunTest, RecordsSpanPages) {
  SimDisk disk(64);
  RunWriter w(&disk);
  std::string big(1000, 'z');
  ASSERT_TRUE(w.Add(big).ok());
  ASSERT_TRUE(w.Add("tail").ok());
  ndq::Run run = w.Finish().ValueOrDie();
  EXPECT_GT(run.pages.size(), 10u);  // 1000 bytes over 64-byte pages

  RunReader r(&disk, run);
  std::string rec;
  ASSERT_TRUE(r.Next(&rec).ValueOrDie());
  EXPECT_EQ(rec, big);
  ASSERT_TRUE(r.Next(&rec).ValueOrDie());
  EXPECT_EQ(rec, "tail");
}

TEST(RunTest, EmptyRun) {
  SimDisk disk(64);
  RunWriter w(&disk);
  ndq::Run run = w.Finish().ValueOrDie();
  EXPECT_TRUE(run.empty());
  EXPECT_TRUE(run.pages.empty());
  RunReader r(&disk, run);
  std::string rec;
  EXPECT_FALSE(r.Next(&rec).ValueOrDie());
}

TEST(RunTest, EmptyRecordsAllowed) {
  SimDisk disk(64);
  RunWriter w(&disk);
  ASSERT_TRUE(w.Add("").ok());
  ASSERT_TRUE(w.Add("x").ok());
  ASSERT_TRUE(w.Add("").ok());
  ndq::Run run = w.Finish().ValueOrDie();
  RunReader r(&disk, run);
  std::string rec;
  ASSERT_TRUE(r.Next(&rec).ValueOrDie());
  EXPECT_EQ(rec, "");
  ASSERT_TRUE(r.Next(&rec).ValueOrDie());
  EXPECT_EQ(rec, "x");
  ASSERT_TRUE(r.Next(&rec).ValueOrDie());
  EXPECT_EQ(rec, "");
}

TEST(RunTest, IoIsLinearInPayload) {
  // Writing N records costs ceil(bytes/page) writes; reading them back the
  // same number of reads: the linear-I/O building block of every theorem.
  SimDisk disk(4096);
  RunWriter w(&disk);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(w.Add("payload-payload-payload-" + std::to_string(i)).ok());
  }
  ndq::Run run = w.Finish().ValueOrDie();
  uint64_t expected_pages =
      (run.payload_bytes + disk.page_size() - 1) / disk.page_size();
  EXPECT_EQ(run.pages.size(), expected_pages);
  EXPECT_EQ(disk.stats().page_writes, expected_pages);

  disk.ResetStats();
  RunReader r(&disk, run);
  std::string rec;
  while (r.Next(&rec).ValueOrDie()) {
  }
  EXPECT_EQ(disk.stats().page_reads, expected_pages);
  EXPECT_EQ(r.records_read(), static_cast<uint64_t>(n));
}

TEST(RunTest, FreeRunReleasesPages) {
  SimDisk disk(64);
  RunWriter w(&disk);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(w.Add("some record").ok());
  ndq::Run run = w.Finish().ValueOrDie();
  EXPECT_GT(disk.live_pages(), 0u);
  ASSERT_TRUE(FreeRun(&disk, &run).ok());
  EXPECT_EQ(disk.live_pages(), 0u);
  EXPECT_TRUE(run.empty());
}

TEST(RunTest, AddAfterFinishRejected) {
  SimDisk disk(64);
  RunWriter w(&disk);
  ASSERT_TRUE(w.Add("x").ok());
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_FALSE(w.Add("y").ok());
}

}  // namespace
}  // namespace ndq
