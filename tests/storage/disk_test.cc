#include "storage/disk.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace ndq {
namespace {

TEST(SimDiskTest, AllocateWriteRead) {
  SimDisk disk(256);
  PageId p = *disk.Allocate();
  std::vector<uint8_t> out(256, 0xAA);
  ASSERT_TRUE(disk.ReadPage(p, out.data()).ok());
  for (uint8_t b : out) EXPECT_EQ(b, 0);  // fresh pages are zeroed

  std::vector<uint8_t> in(256);
  for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(disk.WritePage(p, in.data()).ok());
  ASSERT_TRUE(disk.ReadPage(p, out.data()).ok());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 256), 0);
}

TEST(SimDiskTest, StatsCountTransfers) {
  SimDisk disk(128);
  PageId p = *disk.Allocate();
  std::vector<uint8_t> buf(128, 1);
  ASSERT_TRUE(disk.WritePage(p, buf.data()).ok());
  ASSERT_TRUE(disk.WritePage(p, buf.data()).ok());
  ASSERT_TRUE(disk.ReadPage(p, buf.data()).ok());
  EXPECT_EQ(disk.stats().page_writes, 2u);
  EXPECT_EQ(disk.stats().page_reads, 1u);
  EXPECT_EQ(disk.stats().pages_allocated, 1u);
  EXPECT_EQ(disk.stats().TotalTransfers(), 3u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().TotalTransfers(), 0u);
}

TEST(SimDiskTest, FreeAndReuse) {
  SimDisk disk(64);
  PageId a = *disk.Allocate();
  PageId b = *disk.Allocate();
  EXPECT_EQ(disk.live_pages(), 2u);
  ASSERT_TRUE(disk.Free(a).ok());
  EXPECT_EQ(disk.live_pages(), 1u);
  PageId c = *disk.Allocate();  // reuses a's slot
  EXPECT_EQ(c, a);
  // Reused pages come back zeroed.
  std::vector<uint8_t> buf(64, 0xFF);
  ASSERT_TRUE(disk.ReadPage(c, buf.data()).ok());
  for (uint8_t v : buf) EXPECT_EQ(v, 0);
  (void)b;
}

TEST(SimDiskTest, InvalidAccessRejected) {
  SimDisk disk(64);
  std::vector<uint8_t> buf(64);
  EXPECT_FALSE(disk.ReadPage(99, buf.data()).ok());
  EXPECT_FALSE(disk.WritePage(99, buf.data()).ok());
  EXPECT_FALSE(disk.Free(99).ok());
  PageId p = *disk.Allocate();
  ASSERT_TRUE(disk.Free(p).ok());
  EXPECT_FALSE(disk.Free(p).ok());           // double free
  EXPECT_FALSE(disk.ReadPage(p, buf.data()).ok());  // use after free
}

TEST(IoStatsTest, Difference) {
  IoStats a;
  a.page_reads = 10;
  a.page_writes = 4;
  IoStats b;
  b.page_reads = 3;
  b.page_writes = 1;
  IoStats d = a - b;
  EXPECT_EQ(d.page_reads, 7u);
  EXPECT_EQ(d.page_writes, 3u);
  EXPECT_NE(d.ToString().find("reads=7"), std::string::npos);
}

}  // namespace
}  // namespace ndq
