#include "storage/buffer_pool.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/fault_injector.h"

namespace ndq {
namespace {

TEST(BufferPoolTest, PinMissThenHit) {
  SimDisk disk(64);
  PageId p = *disk.Allocate();
  BufferPool pool(&disk, 4);
  {
    PageHandle h = pool.Pin(p).TakeValue();
    EXPECT_EQ(pool.stats().misses, 1u);
  }
  {
    PageHandle h = pool.Pin(p).TakeValue();
    EXPECT_EQ(pool.stats().hits, 1u);
    EXPECT_EQ(pool.stats().misses, 1u);
  }
  // Hits cost no disk reads beyond the first miss.
  EXPECT_EQ(disk.stats().page_reads, 1u);
}

TEST(BufferPoolTest, DirtyWritebackOnEviction) {
  SimDisk disk(64);
  PageId p = *disk.Allocate();
  BufferPool pool(&disk, 1);
  {
    PageHandle h = pool.Pin(p).TakeValue();
    h.data()[0] = 0x5A;
    h.MarkDirty();
  }
  // Pinning another page evicts p and writes it back.
  PageId q = *disk.Allocate();
  { PageHandle h = pool.Pin(q).TakeValue(); }
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.stats().dirty_writebacks, 1u);
  uint8_t buf[64];
  ASSERT_TRUE(disk.ReadPage(p, buf).ok());
  EXPECT_EQ(buf[0], 0x5A);
}

TEST(BufferPoolTest, CleanEvictionSkipsWriteback) {
  SimDisk disk(64);
  PageId p = *disk.Allocate();
  PageId q = *disk.Allocate();
  BufferPool pool(&disk, 1);
  { PageHandle h = pool.Pin(p).TakeValue(); }
  { PageHandle h = pool.Pin(q).TakeValue(); }
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.stats().dirty_writebacks, 0u);
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  SimDisk disk(64);
  PageId p = *disk.Allocate();
  PageId q = *disk.Allocate();
  BufferPool pool(&disk, 1);
  PageHandle h = pool.Pin(p).TakeValue();
  Result<PageHandle> r = pool.Pin(q);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  h.Release();
  EXPECT_TRUE(pool.Pin(q).ok());
}

TEST(BufferPoolTest, NewAllocatesZeroedDirtyPage) {
  SimDisk disk(64);
  BufferPool pool(&disk, 2);
  PageId id;
  {
    PageHandle h = pool.New().TakeValue();
    id = h.id();
    for (size_t i = 0; i < 64; ++i) EXPECT_EQ(h.data()[i], 0);
    h.data()[3] = 7;
    h.MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  uint8_t buf[64];
  ASSERT_TRUE(disk.ReadPage(id, buf).ok());
  EXPECT_EQ(buf[3], 7);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  SimDisk disk(64);
  PageId a = *disk.Allocate();
  PageId b = *disk.Allocate();
  PageId c = *disk.Allocate();
  BufferPool pool(&disk, 2);
  { PageHandle h = pool.Pin(a).TakeValue(); }
  { PageHandle h = pool.Pin(b).TakeValue(); }
  { PageHandle h = pool.Pin(a).TakeValue(); }  // a is now most recent
  { PageHandle h = pool.Pin(c).TakeValue(); }  // evicts b
  disk.ResetStats();
  { PageHandle h = pool.Pin(a).TakeValue(); }  // still resident
  EXPECT_EQ(disk.stats().page_reads, 0u);
  { PageHandle h = pool.Pin(b).TakeValue(); }  // was evicted
  EXPECT_EQ(disk.stats().page_reads, 1u);
}

TEST(BufferPoolTest, FreePageDropsFrameAndDiskPage) {
  SimDisk disk(64);
  BufferPool pool(&disk, 2);
  PageId id;
  {
    PageHandle h = pool.New().TakeValue();
    id = h.id();
  }
  ASSERT_TRUE(pool.FreePage(id).ok());
  EXPECT_EQ(disk.live_pages(), 0u);
  // Freeing a pinned page is rejected.
  PageHandle h = pool.New().TakeValue();
  EXPECT_FALSE(pool.FreePage(h.id()).ok());
}

// In-flight dedup: many threads missing on the SAME cold page must
// produce exactly one disk read — the rest wait for the fetch and count
// as hits, exactly as the old serialized pool accounted them. This is
// also the TSan target for the loading-frame protocol.
TEST(BufferPoolTest, ConcurrentMissesOnOnePageFetchOnce) {
  SimDisk disk(64);
  disk.set_transfer_latency_micros(300);  // widen the dedup window
  PageId p = *disk.Allocate();
  BufferPool pool(&disk, 8);

  constexpr int kThreads = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      Result<PageHandle> h = pool.Pin(p);
      if (h.ok()) ok.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(disk.stats().page_reads, 1u) << "page was double-fetched";
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, static_cast<uint64_t>(kThreads) - 1);
}

// Misses on DISTINCT pages overlap their transfers (the read happens
// outside the pool mutex); accounting stays exact.
TEST(BufferPoolTest, ConcurrentMissesOnDistinctPagesAllFetch) {
  SimDisk disk(64);
  disk.set_transfer_latency_micros(100);
  constexpr int kPages = 8;
  std::vector<PageId> ids;
  for (int i = 0; i < kPages; ++i) ids.push_back(*disk.Allocate());
  BufferPool pool(&disk, kPages);

  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kPages; ++i) {
    threads.emplace_back([&, i] {
      Result<PageHandle> h = pool.Pin(ids[static_cast<size_t>(i)]);
      if (h.ok()) ok.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok.load(), kPages);
  EXPECT_EQ(disk.stats().page_reads, static_cast<uint64_t>(kPages));
  EXPECT_EQ(pool.stats().misses, static_cast<uint64_t>(kPages));
  EXPECT_EQ(pool.stats().hits, 0u);
}

// A failed fetch must not poison the frame map: the loading frame is
// removed and the next Pin retries the read from scratch.
TEST(BufferPoolTest, FailedFetchLeavesNoFrameBehind) {
  SimDisk disk(64);
  PageId p = *disk.Allocate();
  BufferPool pool(&disk, 4);

  FaultInjector fi({FaultInjector::FailNth(1, FaultOpBit(FaultOp::kRead))});
  disk.set_fault_injector(&fi);
  EXPECT_FALSE(pool.Pin(p).ok());
  disk.set_fault_injector(nullptr);
  EXPECT_EQ(pool.resident(), 0u);

  PageHandle h = pool.Pin(p).TakeValue();
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(pool.stats().misses, 2u);  // the retry is a fresh miss
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(BufferPoolTest, MoveTransfersPin) {
  SimDisk disk(64);
  PageId p = *disk.Allocate();
  BufferPool pool(&disk, 1);
  PageHandle a = pool.Pin(p).TakeValue();
  PageHandle b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  b.Release();
  // Pin count drained exactly once: page can be evicted now.
  PageId q = *disk.Allocate();
  EXPECT_TRUE(pool.Pin(q).ok());
}

}  // namespace
}  // namespace ndq
