#include <random>

#include <gtest/gtest.h>

#include "storage/run.h"

namespace ndq {
namespace {

ndq::Run MakeRun(SimDisk* disk, const std::vector<std::string>& records) {
  RunWriter w(disk);
  for (const std::string& r : records) EXPECT_TRUE(w.Add(r).ok());
  return w.Finish().ValueOrDie();
}

std::vector<std::string> ReadAll(SimDisk* disk, const ndq::Run& run) {
  RunReader r(disk, run);
  std::vector<std::string> out;
  std::string rec;
  while (r.Next(&rec).ValueOrDie()) out.push_back(rec);
  return out;
}

TEST(ReverseRunTest, ReversesOrder) {
  SimDisk disk(128);
  ndq::Run run = MakeRun(&disk, {"a", "b", "c", "d"});
  ndq::Run rev = ReverseRun(&disk, std::move(run)).TakeValue();
  EXPECT_EQ(ReadAll(&disk, rev),
            (std::vector<std::string>{"d", "c", "b", "a"}));
}

TEST(ReverseRunTest, EmptyAndSingle) {
  SimDisk disk(128);
  ndq::Run empty = MakeRun(&disk, {});
  ndq::Run rev = ReverseRun(&disk, std::move(empty)).TakeValue();
  EXPECT_TRUE(rev.empty());
  ndq::Run one = MakeRun(&disk, {"only"});
  ndq::Run rev1 = ReverseRun(&disk, std::move(one)).TakeValue();
  EXPECT_EQ(ReadAll(&disk, rev1), (std::vector<std::string>{"only"}));
}

TEST(ReverseRunTest, ConsumesInputAndLeaksNothing) {
  SimDisk disk(128);
  ndq::Run run = MakeRun(&disk, std::vector<std::string>(200, "payload"));
  ndq::Run rev = ReverseRun(&disk, std::move(run)).TakeValue();
  // Only the output's pages remain live.
  EXPECT_EQ(disk.live_pages(), rev.pages.size());
}

TEST(ReverseRunTest, LargeRandomRoundTrip) {
  std::mt19937 rng(3);
  SimDisk disk(512);
  std::vector<std::string> records;
  for (int i = 0; i < 5000; ++i) {
    records.push_back("rec" + std::to_string(rng() % 100000) +
                      std::string(rng() % 40, 'x'));
  }
  ndq::Run run = MakeRun(&disk, records);
  ndq::Run rev = ReverseRun(&disk, std::move(run)).TakeValue();
  std::vector<std::string> out = ReadAll(&disk, rev);
  std::reverse(out.begin(), out.end());
  EXPECT_EQ(out, records);
  // Double reversal is the identity.
  ndq::Run back = ReverseRun(&disk, std::move(rev)).TakeValue();
  EXPECT_EQ(ReadAll(&disk, back), records);
}

TEST(ReverseRunTest, IoIsLinear) {
  SimDisk disk(4096);
  std::vector<std::string> records(20000, "0123456789abcdef");
  ndq::Run run = MakeRun(&disk, records);
  uint64_t data_pages = run.pages.size();
  // Batches hold ~2 pages of *uncompressed* record bytes, and each one
  // rounds up to at least one page on disk, so the batch pass costs up to
  // one write + one read per batch even when prefix compression makes the
  // batches much smaller than their budget.
  uint64_t raw_bytes = 0;
  for (const std::string& r : records) raw_bytes += r.size() + 1;
  uint64_t batches = raw_bytes / (2 * 4096) + 1;
  disk.ResetStats();
  ndq::Run rev = ReverseRun(&disk, std::move(run)).TakeValue();
  // Read input once, write batches once, read batches once, write output
  // once: ~4 passes plus per-batch rounding.
  EXPECT_LE(disk.stats().TotalTransfers(),
            4 * data_pages + 2 * (batches + data_pages) + 16);
  EXPECT_EQ(rev.num_records, 20000u);
}

}  // namespace
}  // namespace ndq
