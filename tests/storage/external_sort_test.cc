#include "storage/external_sort.h"

#include <random>

#include <gtest/gtest.h>

namespace ndq {
namespace {

// Records here are "key|payload"; the key is everything before '|'.
std::string_view KeyOf(std::string_view rec) {
  return rec.substr(0, rec.find('|'));
}

std::vector<std::string> ReadAll(SimDisk* disk, const Run& run) {
  RunReader r(disk, run);
  std::vector<std::string> out;
  std::string rec;
  while (r.Next(&rec).ValueOrDie()) out.push_back(rec);
  return out;
}

TEST(ExternalSortTest, SortsInMemorySizedInput) {
  SimDisk disk(256);
  ExternalSorter sorter(&disk, KeyOf);
  ASSERT_TRUE(sorter.Add("b|1").ok());
  ASSERT_TRUE(sorter.Add("a|2").ok());
  ASSERT_TRUE(sorter.Add("c|3").ok());
  ndq::Run out = sorter.Finish().ValueOrDie();
  std::vector<std::string> recs = ReadAll(&disk, out);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0], "a|2");
  EXPECT_EQ(recs[1], "b|1");
  EXPECT_EQ(recs[2], "c|3");
  EXPECT_EQ(sorter.merge_passes(), 0u);  // single generated run
}

TEST(ExternalSortTest, EmptyInput) {
  SimDisk disk(256);
  ExternalSorter sorter(&disk, KeyOf);
  ndq::Run out = sorter.Finish().ValueOrDie();
  EXPECT_TRUE(out.empty());
}

class ExternalSortPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExternalSortPropertyTest, RandomRecordsEndUpSorted) {
  std::mt19937 rng(GetParam());
  SimDisk disk(512);
  ExternalSortOptions opts;
  opts.memory_budget = 2000;  // forces many runs
  opts.fan_in = 3;            // forces multiple merge passes
  ExternalSorter sorter(&disk, KeyOf, opts);
  const int n = 2000;
  std::vector<std::string> keys;
  for (int i = 0; i < n; ++i) {
    std::string key = "k" + std::to_string(rng() % 100000);
    keys.push_back(key);
    ASSERT_TRUE(sorter.Add(key + "|" + std::to_string(i)).ok());
  }
  ndq::Run out = sorter.Finish().ValueOrDie();
  EXPECT_GT(sorter.merge_passes(), 1u);
  std::vector<std::string> recs = ReadAll(&disk, out);
  ASSERT_EQ(recs.size(), static_cast<size_t>(n));
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LE(KeyOf(recs[i - 1]), KeyOf(recs[i]));
  }
  // Multiset of keys preserved.
  std::vector<std::string> out_keys;
  for (const std::string& r : recs) out_keys.emplace_back(KeyOf(r));
  std::sort(keys.begin(), keys.end());
  std::sort(out_keys.begin(), out_keys.end());
  EXPECT_EQ(keys, out_keys);
  // Intermediate runs were freed: only the output remains live.
  EXPECT_EQ(disk.live_pages(), out.pages.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExternalSortPropertyTest,
                         ::testing::Values(7, 42, 1999));

TEST(ExternalSortTest, MergeSortedRunsConsumesInputs) {
  SimDisk disk(256);
  auto make_run = [&](std::vector<std::string> recs) {
    RunWriter w(&disk);
    for (const auto& r : recs) EXPECT_TRUE(w.Add(r).ok());
    return w.Finish().ValueOrDie();
  };
  std::vector<ndq::Run> runs;
  runs.push_back(make_run({"a|", "d|", "g|"}));
  runs.push_back(make_run({"b|", "e|"}));
  runs.push_back(make_run({"c|", "f|", "h|"}));
  ndq::Run merged = MergeSortedRuns(&disk, KeyOf, std::move(runs), 2).ValueOrDie();
  std::vector<std::string> recs = ReadAll(&disk, merged);
  ASSERT_EQ(recs.size(), 8u);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i - 1], recs[i]);
  }
  EXPECT_EQ(disk.live_pages(), merged.pages.size());
}

TEST(ExternalSortTest, IoIsNlogN) {
  // Sort I/O grows as (N/B) log(N/B): each merge pass re-reads and
  // re-writes the whole payload once.
  SimDisk disk(4096);
  ExternalSortOptions opts;
  opts.memory_budget = 8192;
  opts.fan_in = 2;
  ExternalSorter sorter(&disk, KeyOf, opts);
  std::mt19937 rng(5);
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        sorter.Add("key" + std::to_string(rng()) + "|payloadpayload").ok());
  }
  uint64_t before = disk.stats().TotalTransfers();
  ndq::Run out = sorter.Finish().ValueOrDie();
  uint64_t io = disk.stats().TotalTransfers() - before;
  uint64_t data_pages = out.pages.size();
  size_t passes = sorter.merge_passes();
  // Total transfers ~ 2 * data_pages * (passes + 1), within slack.
  EXPECT_GE(io, 2 * data_pages * passes);
  EXPECT_LE(io, 2 * data_pages * (passes + 2) + 16);
}

}  // namespace
}  // namespace ndq
