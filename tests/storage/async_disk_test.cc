// Async read engine (storage/async_disk.h) and scan prefetch
// (storage/prefetcher.h): io-depth bounds, completion ordering, cancel
// semantics, and the deferred-accounting invariant — simulated page
// counts identical at any io-depth, with faults landing on completions.
// Runs under TSan in CI (sanitizer job) to pin the locking discipline.

#include "storage/async_disk.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/disk.h"
#include "storage/fault_injector.h"
#include "storage/run.h"

namespace ndq {
namespace {

// A SimDisk that records how many physical reads run concurrently, and
// can hold every read until released — the probe for io-depth bounds.
class ProbeDisk : public SimDisk {
 public:
  explicit ProbeDisk(size_t page_size) : SimDisk(page_size) {}
  ~ProbeDisk() override {
    // Subclass dtor contract: join the I/O workers before the members
    // they touch (gate_, counters) are destroyed.
    Release();
    ShutdownAsync();
  }

  void Hold() { gate_.store(true, std::memory_order_release); }
  void Release() { gate_.store(false, std::memory_order_release); }

  int peak_concurrent_reads() const {
    return peak_.load(std::memory_order_relaxed);
  }

 protected:
  Status DoRead(PageId id, uint8_t* buf) override {
    int now = concurrent_.fetch_add(1, std::memory_order_relaxed) + 1;
    int peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
    while (gate_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    Status s = SimDisk::DoRead(id, buf);
    concurrent_.fetch_sub(1, std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<bool> gate_{false};
  std::atomic<int> concurrent_{0};
  std::atomic<int> peak_{0};
};

std::vector<PageId> WritePages(Disk* disk, int n) {
  std::vector<PageId> pages;
  std::vector<uint8_t> buf(disk->page_size());
  for (int i = 0; i < n; ++i) {
    PageId id = disk->Allocate().TakeValue();
    std::memset(buf.data(), static_cast<int>(i & 0xff), buf.size());
    EXPECT_TRUE(disk->WritePage(id, buf.data()).ok());
    pages.push_back(id);
  }
  return pages;
}

TEST(AsyncDiskTest, WaitDeliversEveryPayloadRegardlessOfOrder) {
  SimDisk disk(256);
  std::vector<PageId> pages = WritePages(&disk, 32);
  disk.SetIoDepth(4);
  ASSERT_NE(disk.async(), nullptr);

  std::vector<AsyncDisk::RequestHandle> reqs;
  for (PageId p : pages) reqs.push_back(disk.async()->Submit(p));
  // Consume back to front: completion order (front-first, roughly) is the
  // opposite of consumption order, so Wait must hold payloads correctly.
  std::vector<uint8_t> buf(disk.page_size());
  for (int i = static_cast<int>(reqs.size()) - 1; i >= 0; --i) {
    ASSERT_TRUE(disk.async()->Wait(reqs[i], buf.data()).ok());
    EXPECT_EQ(buf[0], static_cast<uint8_t>(i & 0xff)) << "page index " << i;
  }
  EXPECT_EQ(disk.async()->stats().reads_completed.load(), 32u);
}

TEST(AsyncDiskTest, InFlightPhysicalReadsNeverExceedIoDepth) {
  ProbeDisk disk(256);
  std::vector<PageId> pages = WritePages(&disk, 48);
  disk.SetIoDepth(3);
  disk.Hold();  // pile the queue up behind slow reads

  std::vector<AsyncDisk::RequestHandle> reqs;
  for (PageId p : pages) reqs.push_back(disk.async()->Submit(p));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  disk.Release();
  std::vector<uint8_t> buf(disk.page_size());
  for (const auto& r : reqs) {
    ASSERT_TRUE(disk.async()->Wait(r, buf.data()).ok());
  }
  EXPECT_LE(disk.peak_concurrent_reads(), 3);
  EXPECT_GE(disk.peak_concurrent_reads(), 2) << "reads never overlapped";
}

TEST(AsyncDiskTest, CancelSkipsUnstartedRequests) {
  ProbeDisk disk(256);
  std::vector<PageId> pages = WritePages(&disk, 8);
  disk.SetIoDepth(1);
  disk.Hold();

  auto first = disk.async()->Submit(pages[0]);
  auto queued = disk.async()->Submit(pages[1]);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // The single worker is stuck in pages[0]; pages[1] is still queued, so
  // canceling it spends no physical work.
  EXPECT_FALSE(disk.async()->Cancel(queued));
  disk.Release();
  std::vector<uint8_t> buf(disk.page_size());
  EXPECT_TRUE(disk.async()->Wait(first, buf.data()).ok());
  // Canceling a finished request reports its work as spent.
  EXPECT_TRUE(disk.async()->Cancel(first));
  EXPECT_EQ(disk.async()->stats().canceled_unstarted.load(), 1u);
}

// The tentpole invariant: a prefetched scan counts exactly the page reads
// a synchronous scan would, and the results are byte-identical.
TEST(AsyncDiskTest, PrefetchedScanKeepsPageAccountingIdentical) {
  SimDisk disk(256);
  RunWriter writer(&disk);
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(writer.Add("record-" + std::to_string(i)).ok());
  }
  ndq::Run run = writer.Finish().TakeValue();
  ASSERT_GT(run.pages.size(), 8u);

  auto scan = [&] {
    std::vector<std::string> got;
    RunReader reader(&disk, run);
    std::string rec;
    while (true) {
      Result<bool> more = reader.Next(&rec);
      EXPECT_TRUE(more.ok());
      if (!more.ok() || !*more) break;
      got.push_back(rec);
    }
    return got;
  };

  disk.ResetStats();
  std::vector<std::string> sync_result = scan();
  const uint64_t sync_reads = disk.stats().page_reads;
  EXPECT_EQ(sync_result.size(), 1500u);
  EXPECT_EQ(disk.stats().prefetch_hits.load(), 0u);

  for (size_t depth : {1u, 4u, 16u}) {
    SCOPED_TRACE("io_depth=" + std::to_string(depth));
    disk.SetIoDepth(depth);
    disk.ResetStats();
    EXPECT_EQ(scan(), sync_result);
    EXPECT_EQ(disk.stats().page_reads.load(), sync_reads);
    EXPECT_EQ(disk.stats().prefetch_wasted.load(), 0u);
    // Every page the full scan consumed beyond the first must have been
    // in flight already (the window stays ahead on an in-memory disk,
    // but ready-without-wait is timing-dependent; hits just must not
    // exceed the reads).
    EXPECT_LE(disk.stats().prefetch_hits.load(), sync_reads);
  }
  disk.SetIoDepth(0);
  EXPECT_EQ(disk.async(), nullptr);
}

TEST(AsyncDiskTest, AbandonedScanCountsWastedNotRead) {
  SimDisk disk(256);
  RunWriter writer(&disk);
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(writer.Add("record-" + std::to_string(i)).ok());
  }
  ndq::Run run = writer.Finish().TakeValue();
  ASSERT_GT(run.pages.size(), 8u);

  disk.SetIoDepth(4);
  disk.ResetStats();
  {
    RunReader reader(&disk, run);
    std::string rec;
    Result<bool> more = reader.Next(&rec);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    // Abandon the reader: the prefetch window dies with it.
  }
  // Only the consumed page is charged as a transfer; everything the
  // window had started shows up as waste instead.
  EXPECT_EQ(disk.stats().page_reads.load(), 1u);
  EXPECT_LE(disk.stats().prefetch_wasted.load(), 4u);
}

// Faults land on async COMPLETIONS, in consumption order: the k-th read
// fault hits the k-th consumed page exactly as it would synchronously.
TEST(AsyncDiskTest, FaultOnKthAsyncCompletionMatchesSyncStream) {
  SimDisk disk(256);
  RunWriter writer(&disk);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(writer.Add("record-" + std::to_string(i)).ok());
  }
  ndq::Run run = writer.Finish().TakeValue();
  ASSERT_GT(run.pages.size(), 4u);

  auto scan_until_error = [&](int* consumed) {
    *consumed = 0;
    RunReader reader(&disk, run);
    std::string rec;
    while (true) {
      Result<bool> more = reader.Next(&rec);
      if (!more.ok()) return more.status();
      if (!*more) return Status::OK();
      ++*consumed;
    }
  };

  for (uint64_t k = 1; k <= 3; ++k) {
    SCOPED_TRACE("fail read #" + std::to_string(k));
    int sync_consumed = 0;
    disk.SetIoDepth(0);
    FaultInjector sync_injector(
        {FaultInjector::FailNth(k, FaultOpBit(FaultOp::kRead))});
    disk.set_fault_injector(&sync_injector);
    Status sync_status = scan_until_error(&sync_consumed);
    disk.set_fault_injector(nullptr);
    ASSERT_FALSE(sync_status.ok());

    int async_consumed = 0;
    disk.SetIoDepth(4);
    FaultInjector async_injector(
        {FaultInjector::FailNth(k, FaultOpBit(FaultOp::kRead))});
    disk.set_fault_injector(&async_injector);
    Status async_status = scan_until_error(&async_consumed);
    disk.set_fault_injector(nullptr);
    disk.SetIoDepth(0);

    EXPECT_EQ(async_status.code(), sync_status.code());
    EXPECT_EQ(async_consumed, sync_consumed)
        << "fault landed on a different record than the sync stream";
    EXPECT_EQ(async_injector.faults_fired(), sync_injector.faults_fired());
  }
}

// Adaptive backoff: on a device serving reads faster than the async
// round trip, the prefetch window stops submitting — so nothing is
// wasted and accounting still matches sync — and it resumes once real
// device latency reappears.
TEST(AsyncDiskTest, PrefetchBacksOffOnFastDeviceAndRecovers) {
  SimDisk disk(256);
  RunWriter writer(&disk);
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(writer.Add("record-" + std::to_string(i)).ok());
  }
  ndq::Run run = writer.Finish().TakeValue();
  ASSERT_GT(run.pages.size(), 8u);

  // Fresh device: optimistic until the duration estimate warms up.
  EXPECT_TRUE(disk.PrefetchWorthwhile());

  // Train the estimate with fast (zero-latency, in-memory) reads. A few
  // thousand samples drown any scheduler hiccup in the EWMA.
  std::vector<uint8_t> buf(disk.page_size());
  for (int i = 0; i < 2000 && disk.PrefetchWorthwhile(); ++i) {
    ASSERT_TRUE(
        disk.ReadPage(run.pages[i % run.pages.size()], buf.data()).ok());
  }
  EXPECT_FALSE(disk.PrefetchWorthwhile());

  // Backed off: an abandoned prefetching scan has issued no read-ahead,
  // so nothing is wasted, and a full scan still counts every page.
  disk.SetIoDepth(8);
  disk.ResetStats();
  {
    RunReader reader(&disk, run);
    std::string rec;
    ASSERT_TRUE(reader.Next(&rec).ValueOrDie());
  }
  EXPECT_EQ(disk.stats().page_reads.load(), 1u);
  EXPECT_EQ(disk.stats().prefetch_wasted.load(), 0u);
  disk.ResetStats();
  {
    RunReader reader(&disk, run);
    std::string rec;
    while (reader.Next(&rec).ValueOrDie()) {
    }
  }
  EXPECT_EQ(disk.stats().page_reads.load(), run.pages.size());

  // Real device latency re-trains the estimate above the threshold and
  // read-ahead resumes.
  disk.set_transfer_latency_micros(200);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        disk.ReadPage(run.pages[i % run.pages.size()], buf.data()).ok());
  }
  EXPECT_TRUE(disk.PrefetchWorthwhile());
  disk.set_transfer_latency_micros(0);
  disk.SetIoDepth(0);
}

}  // namespace
}  // namespace ndq
