// FaultInjector unit tests: rule triggers (nth / every-kth / page /
// sticky / seeded probability), the spec parser, and the SimDisk hook —
// faults must fire BEFORE any device side effect and be counted in a
// dedicated IoStats counter, leaving the transfer counters comparable to
// the paper's bounds.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/disk.h"
#include "storage/fault_injector.h"

namespace ndq {
namespace {

TEST(FaultInjectorTest, FailNthFiresExactlyOnce) {
  FaultInjector fi({FaultInjector::FailNth(3)});
  EXPECT_TRUE(fi.Check(FaultOp::kRead, 0).ok());
  EXPECT_TRUE(fi.Check(FaultOp::kRead, 1).ok());
  Status s = fi.Check(FaultOp::kRead, 2);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  // One-shot: later operations proceed.
  EXPECT_TRUE(fi.Check(FaultOp::kRead, 3).ok());
  EXPECT_TRUE(fi.Check(FaultOp::kWrite, 4).ok());
  EXPECT_EQ(fi.faults_fired(), 1u);
  EXPECT_EQ(fi.ops_seen(), 5u);
}

TEST(FaultInjectorTest, StickyRuleKeepsFailing) {
  FaultInjector fi(
      {FaultInjector::FailNth(2, kFaultAllOps, /*sticky=*/true)});
  EXPECT_TRUE(fi.Check(FaultOp::kWrite, 0).ok());
  EXPECT_FALSE(fi.Check(FaultOp::kWrite, 1).ok());
  EXPECT_FALSE(fi.Check(FaultOp::kRead, 2).ok());
  EXPECT_FALSE(fi.Check(FaultOp::kAllocate, 3).ok());
  EXPECT_EQ(fi.faults_fired(), 3u);
}

TEST(FaultInjectorTest, OpMaskRestrictsEligibility) {
  // The rule counts only writes; interleaved reads are invisible to it.
  FaultInjector fi(
      {FaultInjector::FailNth(2, FaultOpBit(FaultOp::kWrite))});
  EXPECT_TRUE(fi.Check(FaultOp::kWrite, 0).ok());
  EXPECT_TRUE(fi.Check(FaultOp::kRead, 1).ok());
  EXPECT_TRUE(fi.Check(FaultOp::kRead, 2).ok());
  EXPECT_FALSE(fi.Check(FaultOp::kWrite, 3).ok());
}

TEST(FaultInjectorTest, EveryKthFiresPeriodically) {
  FaultInjector fi({FaultInjector::FailEveryKth(3)});
  int failures = 0;
  for (int i = 0; i < 9; ++i) {
    if (!fi.Check(FaultOp::kRead, static_cast<uint32_t>(i)).ok()) {
      ++failures;
      EXPECT_EQ(i % 3, 2) << "op " << i;
    }
  }
  EXPECT_EQ(failures, 3);
}

TEST(FaultInjectorTest, PageFilterTargetsOnePage) {
  FaultInjector fi({FaultInjector::FailPage(7)});
  EXPECT_TRUE(fi.Check(FaultOp::kRead, 6).ok());
  EXPECT_FALSE(fi.Check(FaultOp::kRead, 7).ok());
  EXPECT_FALSE(fi.Check(FaultOp::kWrite, 7).ok());
  EXPECT_TRUE(fi.Check(FaultOp::kRead, 8).ok());
}

TEST(FaultInjectorTest, SeededProbabilityIsDeterministic) {
  auto sample = [](uint64_t seed) {
    FaultInjector::Rule r;
    r.probability = 0.3;
    FaultInjector fi({r}, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!fi.Check(FaultOp::kRead, 0).ok());
    }
    return fired;
  };
  EXPECT_EQ(sample(42), sample(42));
  EXPECT_NE(sample(42), sample(43));
}

TEST(FaultInjectorTest, ResetCountersRestartsTriggers) {
  FaultInjector fi({FaultInjector::FailNth(2)});
  EXPECT_TRUE(fi.Check(FaultOp::kRead, 0).ok());
  EXPECT_FALSE(fi.Check(FaultOp::kRead, 1).ok());
  fi.ResetCounters();
  EXPECT_EQ(fi.faults_fired(), 0u);
  EXPECT_TRUE(fi.Check(FaultOp::kRead, 0).ok());
  EXPECT_FALSE(fi.Check(FaultOp::kRead, 1).ok());
}

TEST(FaultInjectorTest, ParseAcceptsTheDocumentedGrammar) {
  EXPECT_TRUE(FaultInjector::Parse("read:n=5").ok());
  EXPECT_TRUE(FaultInjector::Parse("write:every=3:sticky").ok());
  EXPECT_TRUE(FaultInjector::Parse("any:p=0.01:seed=42").ok());
  EXPECT_TRUE(FaultInjector::Parse("read:page=12:n=1;alloc:n=2").ok());
  EXPECT_TRUE(FaultInjector::Parse("read|write:n=1").ok());

  EXPECT_FALSE(FaultInjector::Parse("").ok());
  EXPECT_FALSE(FaultInjector::Parse("bogus:n=1").ok());
  EXPECT_FALSE(FaultInjector::Parse("read:n=").ok());
  EXPECT_FALSE(FaultInjector::Parse("read:p=nope").ok());
  EXPECT_FALSE(FaultInjector::Parse("read:frobnicate=1").ok());
}

TEST(FaultInjectorTest, ParsedPolicyBehavesLikeTheBuiltOne) {
  Result<FaultInjector> parsed = FaultInjector::Parse("read:n=2");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  FaultInjector fi = parsed.TakeValue();
  EXPECT_TRUE(fi.Check(FaultOp::kWrite, 0).ok());  // writes not eligible
  EXPECT_TRUE(fi.Check(FaultOp::kRead, 0).ok());
  EXPECT_FALSE(fi.Check(FaultOp::kRead, 1).ok());
}

TEST(FaultInjectorTest, SimDiskFailsBeforeSideEffects) {
  SimDisk disk(256);
  Result<PageId> p = disk.Allocate();
  ASSERT_TRUE(p.ok());
  std::vector<uint8_t> payload(256, 'x');
  ASSERT_TRUE(disk.WritePage(*p, payload.data()).ok());

  FaultInjector fi({FaultInjector::FailNth(1, FaultOpBit(FaultOp::kWrite),
                                           /*sticky=*/true)});
  disk.set_fault_injector(&fi);
  IoStats before = disk.stats();
  std::vector<uint8_t> update(256, 'y');
  Status s = disk.WritePage(*p, update.data());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  // The fault fired before the device did anything: the page still holds
  // the old bytes and no write was counted — only the fault counter moved.
  IoStats after = disk.stats();
  EXPECT_EQ(uint64_t{after.page_writes}, uint64_t{before.page_writes});
  EXPECT_EQ(uint64_t{after.faults_injected},
            uint64_t{before.faults_injected} + 1);
  std::vector<uint8_t> read_back(256, 0);
  disk.set_fault_injector(nullptr);
  ASSERT_TRUE(disk.ReadPage(*p, read_back.data()).ok());
  EXPECT_EQ(read_back, payload);
  ASSERT_TRUE(disk.Free(*p).ok());
}

TEST(FaultInjectorTest, DetachRestoresNormalService) {
  SimDisk disk(256);
  FaultInjector fi({FaultInjector::FailEveryKth(1)});  // fail everything
  disk.set_fault_injector(&fi);
  EXPECT_FALSE(disk.Allocate().ok());
  disk.set_fault_injector(nullptr);
  Result<PageId> p = disk.Allocate();
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(disk.Free(*p).ok());
}

TEST(FaultInjectorTest, AllocateFaultLeavesNoLivePage) {
  SimDisk disk(256);
  FaultInjector fi(
      {FaultInjector::FailNth(1, FaultOpBit(FaultOp::kAllocate))});
  disk.set_fault_injector(&fi);
  size_t live = disk.live_pages();
  EXPECT_FALSE(disk.Allocate().ok());
  EXPECT_EQ(disk.live_pages(), live);
  disk.set_fault_injector(nullptr);
}

}  // namespace
}  // namespace ndq
