#include "storage/serde.h"

#include <gtest/gtest.h>

#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;
using testing::PaperInstance;

TEST(SerdeTest, VarintRoundTrip) {
  std::string buf;
  ByteWriter w(&buf);
  const uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, (1ull << 62)};
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(buf);
  for (uint64_t v : values) {
    EXPECT_EQ(r.GetVarint().ValueOrDie(), v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, SignedRoundTrip) {
  std::string buf;
  ByteWriter w(&buf);
  const int64_t values[] = {0, -1, 1, -64, 63, -1000000, 1000000,
                            INT64_MIN, INT64_MAX};
  for (int64_t v : values) w.PutSigned(v);
  ByteReader r(buf);
  for (int64_t v : values) {
    EXPECT_EQ(r.GetSigned().ValueOrDie(), v);
  }
}

TEST(SerdeTest, StringRoundTrip) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string(1000, 'x'));
  ByteReader r(buf);
  EXPECT_EQ(r.GetString().ValueOrDie(), "hello");
  EXPECT_EQ(r.GetString().ValueOrDie(), "");
  EXPECT_EQ(r.GetString().ValueOrDie().size(), 1000u);
}

TEST(SerdeTest, TruncationDetected) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutString("hello world");
  ByteReader r(buf.substr(0, 4));
  EXPECT_FALSE(r.GetString().ok());
  ByteReader r2("");
  EXPECT_FALSE(r2.GetVarint().ok());
  EXPECT_FALSE(r2.GetU8().ok());
}

TEST(SerdeTest, ValueRoundTrip) {
  for (const Value& v :
       {Value::Int(42), Value::Int(-7), Value::String("abc"),
        Value::String(""), Value::DnRef("dc=att, dc=com")}) {
    std::string buf;
    SerializeValue(v, &buf);
    ByteReader r(buf);
    Result<Value> back = DeserializeValue(&r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(SerdeTest, EntryRoundTripWholeFixture) {
  DirectoryInstance inst = PaperInstance();
  for (const auto& [key, entry] : inst) {
    std::string buf;
    SerializeEntry(entry, &buf);
    // The sort key is peekable without full deserialization.
    EXPECT_EQ(PeekEntryKey(buf).ValueOrDie(), key);
    Result<Entry> back = DeserializeEntry(buf);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, entry) << entry.dn().ToString();
  }
}

TEST(SerdeTest, CorruptEntryRejected) {
  Entry e(D("uid=x, dc=com"));
  e.AddInt("p", 1);
  std::string buf;
  SerializeEntry(e, &buf);
  EXPECT_FALSE(DeserializeEntry(buf.substr(0, buf.size() - 1)).ok());
  std::string bad = buf;
  bad[0] = '\x7f';  // nonsense key length
  EXPECT_FALSE(DeserializeEntry(bad).ok());
}

}  // namespace
}  // namespace ndq
