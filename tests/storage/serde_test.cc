#include "storage/serde.h"

#include <gtest/gtest.h>

#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;
using testing::PaperInstance;

TEST(SerdeTest, VarintRoundTrip) {
  std::string buf;
  ByteWriter w(&buf);
  const uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, (1ull << 62)};
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(buf);
  for (uint64_t v : values) {
    EXPECT_EQ(r.GetVarint().ValueOrDie(), v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, SignedRoundTrip) {
  std::string buf;
  ByteWriter w(&buf);
  const int64_t values[] = {0, -1, 1, -64, 63, -1000000, 1000000,
                            INT64_MIN, INT64_MAX};
  for (int64_t v : values) w.PutSigned(v);
  ByteReader r(buf);
  for (int64_t v : values) {
    EXPECT_EQ(r.GetSigned().ValueOrDie(), v);
  }
}

TEST(SerdeTest, StringRoundTrip) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string(1000, 'x'));
  ByteReader r(buf);
  EXPECT_EQ(r.GetString().ValueOrDie(), "hello");
  EXPECT_EQ(r.GetString().ValueOrDie(), "");
  EXPECT_EQ(r.GetString().ValueOrDie().size(), 1000u);
}

TEST(SerdeTest, TruncationDetected) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutString("hello world");
  std::string truncated = buf.substr(0, 4);
  ByteReader r(truncated);
  EXPECT_FALSE(r.GetString().ok());
  ByteReader r2("");
  EXPECT_FALSE(r2.GetVarint().ok());
  EXPECT_FALSE(r2.GetU8().ok());
}

TEST(SerdeTest, ValueRoundTrip) {
  for (const Value& v :
       {Value::Int(42), Value::Int(-7), Value::String("abc"),
        Value::String(""), Value::DnRef("dc=att, dc=com")}) {
    std::string buf;
    SerializeValue(v, &buf);
    ByteReader r(buf);
    Result<Value> back = DeserializeValue(&r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(SerdeTest, EntryRoundTripWholeFixture) {
  DirectoryInstance inst = PaperInstance();
  for (const auto& [key, entry] : inst) {
    std::string buf;
    SerializeEntry(entry, &buf);
    // The sort key is peekable without full deserialization.
    EXPECT_EQ(PeekEntryKey(buf).ValueOrDie(), key);
    Result<Entry> back = DeserializeEntry(buf);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, entry) << entry.dn().ToString();
  }
}

TEST(SerdeTest, CorruptEntryRejected) {
  Entry e(D("uid=x, dc=com"));
  e.AddInt("p", 1);
  std::string buf;
  SerializeEntry(e, &buf);
  EXPECT_FALSE(DeserializeEntry(buf.substr(0, buf.size() - 1)).ok());
  std::string bad = buf;
  bad[0] = '\x7f';  // nonsense key length
  EXPECT_FALSE(DeserializeEntry(bad).ok());
}

TEST(SerdeTest, OrderedInt64RoundTripAndOrder) {
  const int64_t samples[] = {INT64_MIN, INT64_MIN + 1, -1000000, -256, -2,
                             -1,        0,             1,        2,    255,
                             1000000,   INT64_MAX - 1, INT64_MAX};
  std::string prev;
  bool first = true;
  for (int64_t v : samples) {
    std::string enc;
    AppendOrderedInt64(v, &enc);
    EXPECT_EQ(enc.size(), 8u);
    EXPECT_EQ(DecodeOrderedInt64(enc), v);
    if (!first) EXPECT_LT(prev, enc) << v;  // memcmp order == numeric order
    prev = enc;
    first = false;
  }
}

TEST(SerdeTest, OrderedValueKeyMatchesValueCompare) {
  // memcmp order on encodings must equal Value::operator< across domains
  // AND across the int/string/dn kind boundary.
  std::vector<Value> vals = {
      Value::Int(INT64_MIN), Value::Int(-5),      Value::Int(0),
      Value::Int(7),         Value::Int(INT64_MAX),
      Value::String(""),     Value::String("a"),  Value::String("ab"),
      Value::String("b"),    Value::String("\xff"),
      Value::DnRef(""),      Value::DnRef("dc=att"),
      Value::DnRef("dc=com"),
  };
  for (const Value& a : vals) {
    for (const Value& b : vals) {
      std::string ea, eb;
      AppendOrderedValueKey(a, &ea);
      AppendOrderedValueKey(b, &eb);
      EXPECT_EQ(ea < eb, a < b) << a.ToString() << " vs " << b.ToString();
      EXPECT_EQ(ea == eb, !(a < b) && !(b < a));
    }
  }
}

}  // namespace
}  // namespace ndq
