#include "storage/spill_stack.h"

#include <random>

#include <gtest/gtest.h>

#include "storage/serde.h"

namespace ndq {
namespace {

SpillableStack<int64_t> MakeIntStack(SimDisk* disk, size_t window) {
  return SpillableStack<int64_t>(
      disk, window,
      [](const int64_t& v, std::string* out) {
        ByteWriter w(out);
        w.PutSigned(v);
      },
      [](std::string_view rec) -> Result<int64_t> {
        ByteReader r(rec);
        return r.GetSigned();
      });
}

TEST(SpillStackTest, LifoWithoutSpill) {
  SimDisk disk(128);
  auto stack = MakeIntStack(&disk, 16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(stack.Push(i).ok());
  EXPECT_EQ(stack.Size(), 10u);
  for (int i = 9; i >= 0; --i) {
    EXPECT_EQ(stack.Top(), i);
    EXPECT_EQ(stack.Pop().ValueOrDie(), i);
  }
  EXPECT_TRUE(stack.Empty());
  EXPECT_EQ(stack.spill_count(), 0u);
  EXPECT_EQ(disk.stats().TotalTransfers(), 0u);
}

TEST(SpillStackTest, LifoAcrossSpills) {
  SimDisk disk(128);
  auto stack = MakeIntStack(&disk, 4);  // tiny window forces spills
  const int n = 1000;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(stack.Push(i).ok());
  EXPECT_GT(stack.spill_count(), 0u);
  EXPECT_EQ(stack.Size(), static_cast<size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    ASSERT_EQ(stack.Pop().ValueOrDie(), i) << i;
  }
  EXPECT_TRUE(stack.Empty());
}

TEST(SpillStackTest, PopEmptyIsError) {
  SimDisk disk(128);
  auto stack = MakeIntStack(&disk, 4);
  EXPECT_FALSE(stack.Pop().ok());
}

TEST(SpillStackTest, TopIsMutable) {
  SimDisk disk(128);
  auto stack = MakeIntStack(&disk, 4);
  ASSERT_TRUE(stack.Push(5).ok());
  stack.Top() = 42;
  EXPECT_EQ(stack.Pop().ValueOrDie(), 42);
}

TEST(SpillStackTest, TopValidAfterReload) {
  SimDisk disk(128);
  auto stack = MakeIntStack(&disk, 2);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(stack.Push(i).ok());
  // Drain below the window; Top() must stay correct through reloads.
  for (int i = 9; i >= 1; --i) {
    ASSERT_EQ(stack.Pop().ValueOrDie(), i);
    ASSERT_FALSE(stack.Empty());
    EXPECT_EQ(stack.Top(), i - 1);
  }
}

TEST(SpillStackTest, RandomInterleavingMatchesStdStack) {
  std::mt19937 rng(11);
  SimDisk disk(256);
  auto stack = MakeIntStack(&disk, 8);
  std::vector<int64_t> model;
  for (int step = 0; step < 20000; ++step) {
    bool push = model.empty() || (rng() % 100 < 55);
    if (push) {
      int64_t v = static_cast<int64_t>(rng());
      ASSERT_TRUE(stack.Push(v).ok());
      model.push_back(v);
    } else {
      ASSERT_EQ(stack.Pop().ValueOrDie(), model.back());
      model.pop_back();
    }
    ASSERT_EQ(stack.Size(), model.size());
    if (!model.empty()) {
      ASSERT_EQ(stack.Top(), model.back());
    }
  }
}

TEST(SpillStackTest, SpilledPagesFreedOnDestruction) {
  SimDisk disk(128);
  {
    auto stack = MakeIntStack(&disk, 2);
    for (int i = 0; i < 500; ++i) ASSERT_TRUE(stack.Push(i).ok());
    EXPECT_GT(disk.live_pages(), 0u);
  }
  EXPECT_EQ(disk.live_pages(), 0u);
}

TEST(SpillStackTest, DeepChainIoIsAmortizedLinear) {
  // Pushing N items then popping them all should cost O(N/B) page I/Os —
  // the Theorem 5.1 stack argument. Amortization requires the in-memory
  // window to span at least a couple of pages' worth of records (the spill
  // batch is the unit of transfer); the evaluation engine sizes it so.
  SimDisk disk(4096);
  const size_t window = 2048;
  auto stack = MakeIntStack(&disk, window);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(stack.Push(i).ok());
  while (!stack.Empty()) ASSERT_TRUE(stack.Pop().ok());
  // ~9 bytes/record max -> ~450 pages of traffic each way; allow 4x slack.
  uint64_t io = disk.stats().TotalTransfers();
  uint64_t data_pages = (9ull * n) / disk.page_size() + 1;
  EXPECT_LE(io, 4 * data_pages);
}

}  // namespace
}  // namespace ndq
