// Thread-safety of the storage layer: concurrent SimDisk page traffic
// with exact IoStats accounting, per-thread IoScope attribution, parallel
// BufferPool pins, and the ThreadPool's nested fork/join. These are the
// primary ThreadSanitizer targets.

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"

namespace ndq {
namespace {

TEST(StorageConcurrencyTest, DiskCountersStayExactUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kPagesPerThread = 64;
  SimDisk disk(128);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&disk, t] {
      std::vector<uint8_t> buf(128);
      for (int i = 0; i < kPagesPerThread; ++i) {
        PageId p = *disk.Allocate();
        std::memset(buf.data(), t + 1, buf.size());
        ASSERT_TRUE(disk.WritePage(p, buf.data()).ok());
        std::vector<uint8_t> back(128);
        ASSERT_TRUE(disk.ReadPage(p, back.data()).ok());
        // No tearing: the page holds exactly what this thread wrote.
        EXPECT_EQ(std::memcmp(buf.data(), back.data(), buf.size()), 0);
        ASSERT_TRUE(disk.Free(p).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Relaxed atomics lose nothing: every operation is counted exactly.
  constexpr uint64_t kOps = uint64_t{kThreads} * kPagesPerThread;
  EXPECT_EQ(disk.stats().pages_allocated, kOps);
  EXPECT_EQ(disk.stats().page_writes, kOps);
  EXPECT_EQ(disk.stats().page_reads, kOps);
  EXPECT_EQ(disk.stats().pages_freed, kOps);
  EXPECT_EQ(disk.live_pages(), 0u);
}

TEST(StorageConcurrencyTest, IoScopeAttributesPerThread) {
  SimDisk disk(128);
  constexpr int kThreads = 4;
  IoStats per_thread[kThreads];

  // Each thread does a known amount of I/O inside its own scope; scope
  // stacks are thread-local, so a sibling's transfers never leak in.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&disk, &per_thread, t] {
      IoScope scope(&disk, &per_thread[t]);
      std::vector<uint8_t> buf(128, static_cast<uint8_t>(t));
      for (int i = 0; i <= t; ++i) {
        PageId p = *disk.Allocate();
        ASSERT_TRUE(disk.WritePage(p, buf.data()).ok());
        ASSERT_TRUE(disk.ReadPage(p, buf.data()).ok());
        ASSERT_TRUE(disk.Free(p).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int t = 0; t < kThreads; ++t) {
    const uint64_t n = static_cast<uint64_t>(t) + 1;
    EXPECT_EQ(per_thread[t].page_writes, n) << "thread " << t;
    EXPECT_EQ(per_thread[t].page_reads, n) << "thread " << t;
    EXPECT_EQ(per_thread[t].pages_allocated, n) << "thread " << t;
  }
}

TEST(StorageConcurrencyTest, NestedIoScopesSplitSelfFromChild) {
  SimDisk disk(128);
  IoStats parent, child;
  std::vector<uint8_t> buf(128, 7);
  {
    IoScope outer(&disk, &parent);
    PageId p = *disk.Allocate();
    ASSERT_TRUE(disk.WritePage(p, buf.data()).ok());
    {
      IoScope inner(&disk, &child);
      ASSERT_TRUE(disk.ReadPage(p, buf.data()).ok());
      ASSERT_TRUE(disk.ReadPage(p, buf.data()).ok());
    }
    ASSERT_TRUE(disk.Free(p).ok());
  }
  // The inner scope claimed its reads; the parent kept only its own ops.
  EXPECT_EQ(child.page_reads, 2u);
  EXPECT_EQ(child.page_writes, 0u);
  EXPECT_EQ(parent.page_reads, 0u);
  EXPECT_EQ(parent.page_writes, 1u);
  EXPECT_EQ(parent.pages_allocated, 1u);
  EXPECT_EQ(parent.pages_freed, 1u);
}

TEST(StorageConcurrencyTest, BufferPoolConcurrentPins) {
  SimDisk disk(128);
  constexpr int kPages = 16;
  std::vector<PageId> pages;
  std::vector<uint8_t> buf(128);
  for (int i = 0; i < kPages; ++i) {
    PageId p = *disk.Allocate();
    std::memset(buf.data(), i + 1, buf.size());
    ASSERT_TRUE(disk.WritePage(p, buf.data()).ok());
    pages.push_back(p);
  }

  BufferPool pool(&disk, /*capacity=*/8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 200; ++round) {
        int i = (t + round) % kPages;
        Result<PageHandle> h = pool.Pin(pages[static_cast<size_t>(i)]);
        ASSERT_TRUE(h.ok()) << h.status().ToString();
        // Every byte of the frame reflects the page's fill value.
        EXPECT_EQ(h->data()[0], static_cast<uint8_t>(i + 1));
        EXPECT_EQ(h->data()[127], static_cast<uint8_t>(i + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const BufferPoolStats& stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4u * 200u);
  EXPECT_TRUE(pool.FlushAll().ok());
}

TEST(ThreadPoolTest, NestedForkJoinCompletesEverything) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4u);
  std::atomic<int> leaf_count{0};

  // Two levels of fork/join: the outer Wait() must help run inner tasks
  // rather than deadlock waiting for workers that are blocked on it.
  {
    ThreadPool::TaskGroup outer(&pool);
    for (int i = 0; i < 8; ++i) {
      outer.Run([&pool, &leaf_count] {
        ThreadPool::TaskGroup inner(&pool);
        for (int j = 0; j < 8; ++j) {
          inner.Run([&leaf_count] {
            leaf_count.fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    }
  }
  EXPECT_EQ(leaf_count.load(), 64);
}

TEST(ThreadPoolTest, WorkerIdsAreStableAndInRange) {
  ThreadPool pool(3);
  EXPECT_EQ(ThreadPool::current_worker_id(), 0u) << "caller is worker 0";
  std::mutex mu;
  std::vector<uint32_t> seen;
  {
    ThreadPool::TaskGroup group(&pool);
    for (int i = 0; i < 32; ++i) {
      group.Run([&] {
        uint32_t id = ThreadPool::current_worker_id();
        std::lock_guard<std::mutex> lock(mu);
        seen.push_back(id);
      });
    }
  }
  ASSERT_EQ(seen.size(), 32u);
  for (uint32_t id : seen) EXPECT_LT(id, 3u);
}

TEST(ThreadPoolTest, SinglethreadedPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1u);
  int ran = 0;
  {
    ThreadPool::TaskGroup group(&pool);
    group.Run([&ran] { ++ran; });
    group.Run([&ran] { ++ran; });
  }
  EXPECT_EQ(ran, 2);
}

}  // namespace
}  // namespace ndq
