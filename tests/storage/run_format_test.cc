// Page-format tests: prefix-compressed framing round-trips, format
// preservation, restart-point seeks, and corruption hardening (a damaged
// frame must surface Status::Corruption, never read out of bounds).

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/head64.h"
#include "storage/run.h"
#include "storage/serde.h"

namespace ndq {
namespace {

// Deterministic pseudo-random bytes (no global RNG state between tests).
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }

 private:
  uint64_t state_;
};

std::string KeyedRecord(std::string_view key, std::string_view rest) {
  std::string out;
  ByteWriter w(&out);
  w.PutString(key);
  out.append(rest.data(), rest.size());
  return out;
}

std::vector<std::string> AdversarialRecords() {
  // Empty records, shared prefixes, embedded separator/control bytes,
  // high bytes, records longer than a small page.
  std::vector<std::string> recs = {
      "",
      std::string(1, '\0'),
      std::string("a\x1f b\x1e c"),
      std::string("\xff\xfe\xfd"),
      "shared-prefix-alpha",
      "shared-prefix-alpha-longer",
      "shared-prefix-beta",
      std::string(300, 'q'),
      std::string(300, 'q') + "tail",
  };
  Lcg rng(42);
  for (int i = 0; i < 50; ++i) {
    std::string r;
    size_t len = rng.Next() % 64;
    for (size_t j = 0; j < len; ++j) {
      r.push_back(static_cast<char>(rng.Next() % 256));
    }
    recs.push_back(std::move(r));
  }
  return recs;
}

void RoundTrip(PageFormat format, const std::vector<std::string>& recs) {
  SimDisk disk(128);
  RunWriter w(&disk, format);
  for (const std::string& r : recs) ASSERT_TRUE(w.Add(r).ok());
  ndq::Run run = w.Finish().ValueOrDie();
  EXPECT_EQ(run.format, format);
  EXPECT_EQ(run.num_records, recs.size());
  // pages == ceil(payload/page) holds in every format.
  uint64_t expected_pages =
      (run.payload_bytes + disk.page_size() - 1) / disk.page_size();
  EXPECT_EQ(run.pages.size(), expected_pages);

  RunReader r(&disk, run);
  std::string rec;
  for (const std::string& want : recs) {
    ASSERT_TRUE(r.Next(&rec).ValueOrDie());
    EXPECT_EQ(rec, want);
  }
  EXPECT_FALSE(r.Next(&rec).ValueOrDie());
}

TEST(RunFormatTest, RawRoundTripsAdversarialRecords) {
  RoundTrip(PageFormat::kRaw, AdversarialRecords());
}

TEST(RunFormatTest, PrefixRoundTripsAdversarialRecords) {
  RoundTrip(PageFormat::kPrefix, AdversarialRecords());
}

TEST(RunFormatTest, KeyPrefixRoundTripsKeyedRecords) {
  std::vector<std::string> recs;
  for (int i = 0; i < 200; ++i) {
    std::string key = "ou=dept" + std::to_string(i / 10) +
                      "\x1fuid=user" + std::to_string(i);
    recs.push_back(KeyedRecord(key, "attrs-for-" + std::to_string(i)));
  }
  RoundTrip(PageFormat::kKeyPrefix, recs);
}

TEST(RunFormatTest, KeyPrefixCompressesSharedKeyPrefixes) {
  // Sibling keys of DIFFERENT lengths: the varint length prefix at byte 0
  // defeats generic prefix sharing, but the key-aware format still shares
  // the long common DN prefix.
  std::vector<std::string> recs;
  std::string base(40, 'p');
  for (int i = 0; i < 500; ++i) {
    std::string key = base + (i % 2 ? "uid=" : "uid=longer-") +
                      std::to_string(i);
    recs.push_back(KeyedRecord(key, "payload"));
  }
  auto payload_for = [&](PageFormat f) {
    SimDisk disk(4096);
    RunWriter w(&disk, f);
    for (const auto& r : recs) EXPECT_TRUE(w.Add(r).ok());
    return w.Finish().ValueOrDie().payload_bytes;
  };
  uint64_t raw = payload_for(PageFormat::kRaw);
  uint64_t compressed = payload_for(PageFormat::kKeyPrefix);
  // The 40-byte shared prefix should vanish from nearly every record.
  EXPECT_LT(compressed, raw * 7 / 10);
}

TEST(RunFormatTest, KeyedWriterRejectsRecordWithoutKeyPrefix) {
  SimDisk disk(128);
  RunWriter w(&disk, PageFormat::kKeyPrefix);
  // varint length 200 with only 2 following bytes: GetString fails.
  std::string bogus;
  bogus.push_back(static_cast<char>(200));
  bogus.push_back(static_cast<char>(1));
  bogus.push_back('x');
  EXPECT_FALSE(w.Add(bogus).ok());
}

TEST(RunFormatTest, GlobalModeSelectsFormat) {
  SetPageCompression(false);
  EXPECT_EQ(ResolvePageFormat(RecordShape::kOpaque), PageFormat::kRaw);
  EXPECT_EQ(ResolvePageFormat(RecordShape::kKeyed), PageFormat::kRaw);
  SetPageCompression(true);
  EXPECT_EQ(ResolvePageFormat(RecordShape::kOpaque), PageFormat::kPrefix);
  EXPECT_EQ(ResolvePageFormat(RecordShape::kKeyed), PageFormat::kKeyPrefix);
}

TEST(RunFormatTest, ReverseRunPreservesFormat) {
  SetPageCompression(true);
  SimDisk disk(128);
  RunWriter w(&disk, RecordShape::kKeyed);
  std::vector<std::string> recs;
  for (int i = 0; i < 100; ++i) {
    recs.push_back(KeyedRecord("key-" + std::to_string(1000 + i),
                               "value-" + std::to_string(i)));
    ASSERT_TRUE(w.Add(recs.back()).ok());
  }
  ndq::Run run = w.Finish().ValueOrDie();
  EXPECT_EQ(run.format, PageFormat::kKeyPrefix);
  ndq::Run reversed = ReverseRun(&disk, std::move(run)).ValueOrDie();
  EXPECT_EQ(reversed.format, PageFormat::kKeyPrefix);
  RunReader r(&disk, reversed);
  std::string rec;
  for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
    ASSERT_TRUE(r.Next(&rec).ValueOrDie());
    EXPECT_EQ(rec, *it);
  }
  EXPECT_FALSE(r.Next(&rec).ValueOrDie());
  ASSERT_TRUE(FreeRun(&disk, &reversed).ok());
  EXPECT_EQ(disk.live_pages(), 0u);
}

TEST(RunFormatTest, SeekToPageStartIsAlwaysARestart) {
  // Seek to the first record starting in each page (the positions the
  // entry store's sparse index uses) and decode from there with no
  // history.
  SimDisk disk(256);
  RunWriter w(&disk, PageFormat::kKeyPrefix);
  w.set_page_restarts(true);
  struct Start {
    size_t page;
    uint32_t offset;
    uint64_t ordinal;
  };
  std::vector<Start> starts;
  std::vector<std::string> recs;
  size_t last_page = static_cast<size_t>(-1);
  for (int i = 0; i < 300; ++i) {
    recs.push_back(KeyedRecord("common-prefix-key-" + std::to_string(i),
                               "rest-" + std::to_string(i)));
    ASSERT_TRUE(w.Add(recs.back()).ok());
    if (w.last_record_page() != last_page) {
      last_page = w.last_record_page();
      starts.push_back(Start{w.last_record_page(), w.last_record_offset(),
                             static_cast<uint64_t>(i)});
    }
  }
  ndq::Run run = w.Finish().ValueOrDie();
  ASSERT_GT(starts.size(), 3u);
  for (const Start& s : starts) {
    RunReader r(&disk, run);
    ASSERT_TRUE(r.SeekTo(s.page, s.offset, s.ordinal).ok());
    std::string rec;
    ASSERT_TRUE(r.Next(&rec).ValueOrDie());
    EXPECT_EQ(rec, recs[s.ordinal]);
  }
}

TEST(RunFormatTest, SeekPastPageEndIsCorruption) {
  SimDisk disk(128);
  RunWriter w(&disk, PageFormat::kRaw);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(w.Add("record").ok());
  ndq::Run run = w.Finish().ValueOrDie();
  RunReader r(&disk, run);
  Status s = r.SeekTo(0, disk.page_size(), 0);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(RunFormatTest, SeekIntoNonRestartFrameIsCorruptionNotOob) {
  // A compressed frame mid-page back-references the previous record; a
  // seek that lands on one must fail cleanly, not read stale memory.
  SimDisk disk(4096);
  RunWriter w(&disk, PageFormat::kPrefix);
  std::string prefix(64, 's');
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(w.Add(prefix + std::to_string(i)).ok());
  }
  ndq::Run run = w.Finish().ValueOrDie();
  // Walk to the second record's offset by decoding the first frame by
  // hand: restart frame = varint(0) varint(len) bytes.
  RunReader probe(&disk, run);
  std::string first;
  ASSERT_TRUE(probe.Next(&first).ValueOrDie());
  std::string framed;
  ByteWriter fw(&framed);
  fw.PutVarint(0);
  fw.PutVarint(first.size());
  framed += first;
  RunReader r(&disk, run);
  ASSERT_TRUE(r.SeekTo(0, framed.size(), 1).ok());
  std::string rec;
  Result<bool> got = r.Next(&rec);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

// Builds a single-page run whose page holds exactly `bytes`.
Run HandBuiltRun(SimDisk* disk, PageFormat format, std::string bytes,
                 uint64_t num_records) {
  bytes.resize(disk->page_size(), '\0');
  PageId id = disk->Allocate().ValueOrDie();
  EXPECT_TRUE(
      disk->WritePage(id, reinterpret_cast<const uint8_t*>(bytes.data()))
          .ok());
  Run run;
  run.pages.push_back(id);
  run.num_records = num_records;
  run.payload_bytes = disk->page_size();
  run.format = format;
  return run;
}

TEST(RunFormatTest, PrefixBackReferenceAtRestartIsCorruption) {
  SimDisk disk(128);
  // First frame claims shared=5 with no previous record.
  std::string bytes;
  ByteWriter w(&bytes);
  w.PutVarint(5);
  w.PutVarint(3);
  bytes += "abc";
  ndq::Run run = HandBuiltRun(&disk, PageFormat::kPrefix, bytes, 1);
  RunReader r(&disk, run);
  std::string rec;
  Result<bool> got = r.Next(&rec);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(RunFormatTest, OversizedLengthPrefixIsCorruptionBeforeAllocation) {
  SimDisk disk(128);
  std::string bytes;
  ByteWriter w(&bytes);
  w.PutVarint(0);
  w.PutVarint(uint64_t{1} << 40);  // suffix "length" of a terabyte
  ndq::Run run = HandBuiltRun(&disk, PageFormat::kPrefix, bytes, 1);
  RunReader r(&disk, run);
  std::string rec;
  Result<bool> got = r.Next(&rec);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(RunFormatTest, OversizedRawLengthIsCorruption) {
  SimDisk disk(128);
  std::string bytes;
  ByteWriter w(&bytes);
  w.PutVarint(uint64_t{1} << 40);
  ndq::Run run = HandBuiltRun(&disk, PageFormat::kRaw, bytes, 1);
  RunReader r(&disk, run);
  std::string rec;
  Result<bool> got = r.Next(&rec);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(RunFormatTest, UnterminatedVarintIsCorruption) {
  SimDisk disk(128);
  // A page full of continuation bytes: the varint never terminates and
  // must fail (too-long), not scan past the run.
  std::string bytes(128, static_cast<char>(0x80));
  ndq::Run run = HandBuiltRun(&disk, PageFormat::kRaw, bytes, 1);
  RunReader r(&disk, run);
  std::string rec;
  Result<bool> got = r.Next(&rec);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(RunFormatTest, KeyPrefixBackReferencePastPrevKeyIsCorruption) {
  SimDisk disk(128);
  std::string bytes;
  ByteWriter w(&bytes);
  w.PutVarint(9);  // shared_key with empty prev key
  w.PutVarint(0);
  w.PutVarint(0);
  w.PutVarint(0);
  ndq::Run run = HandBuiltRun(&disk, PageFormat::kKeyPrefix, bytes, 1);
  RunReader r(&disk, run);
  std::string rec;
  Result<bool> got = r.Next(&rec);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(RunFormatTest, TruncatedRunIsCorruption) {
  SimDisk disk(128);
  // Claim of exactly one page (passes CheckFrameLength: 128 <= capacity
  // 128) but the 2-byte varint leaves only 126 bytes — the run ends
  // mid-record.
  std::string bytes;
  ByteWriter w(&bytes);
  w.PutVarint(128);
  ndq::Run run = HandBuiltRun(&disk, PageFormat::kRaw, bytes, 1);
  RunReader r(&disk, run);
  std::string rec;
  Result<bool> got = r.Next(&rec);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------
// Head-of-key comparator
// ---------------------------------------------------------------------

TEST(Head64Test, OrderMatchesStringCompare) {
  std::vector<std::string> keys = {
      "", "a", "ab", "abc", "abcd", "abcdefg", "abcdefgh", "abcdefghi",
      "abcdefgh\x01", "abcdefgh\xff", std::string("\x00\x01", 2),
      std::string(1, '\xff'), "zzzzzzzzz", "zzzzzzzz",
  };
  Lcg rng(7);
  for (int i = 0; i < 100; ++i) {
    std::string k;
    size_t len = rng.Next() % 12;
    for (size_t j = 0; j < len; ++j) {
      k.push_back(static_cast<char>(rng.Next() % 256));
    }
    keys.push_back(std::move(k));
  }
  for (const std::string& a : keys) {
    for (const std::string& b : keys) {
      int want = a.compare(b);
      want = want < 0 ? -1 : (want > 0 ? 1 : 0);
      EXPECT_EQ(CompareKeysHead64(a, b), want) << "a=" << a << " b=" << b;
      if (ExtractHead64(a) < ExtractHead64(b)) {
        EXPECT_LT(a, b);
      }
      EXPECT_EQ(KeyLessHead64(a, b), a < b);
    }
  }
}

}  // namespace
}  // namespace ndq
