// The Engine API over a distributed backend (ISSUE 10 satellite 1): one
// EngineOptions field swaps the execution substrate from a local store to
// a replicated shard fleet, and Sessions behave identically — same
// results, same batch sharing, same graceful failure modes.

#include "engine/engine.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/cost.h"
#include "gen/dif_gen.h"
#include "query/parser.h"

namespace ndq {
namespace {

DirectoryInstance SmallDif() {
  gen::DifOptions opt;
  opt.num_orgs = 2;
  opt.subdomains_per_org = 2;
  return gen::GenerateDif(opt);
}

TopologyConfig ReplicatedTopology() {
  TopologyConfig cfg =
      TopologyConfig::Parse(
          "replicas 2\n"
          "shard root dc=com\n"
          "shard org0 dc=org0, dc=com\n"
          "shard org1 dc=org1, dc=com\n")
          .TakeValue();
  return cfg;
}

EngineOptions DistOptions() {
  EngineOptions opt;
  opt.backend = EngineBackend::kDistributed;
  opt.topology = ReplicatedTopology();
  return opt;
}

const char* kQueries[] = {
    "(dc=com ? sub ? objectClass=TOPSSubscriber)",
    "(dc=org0, dc=com ? sub ? objectClass=QHP)",
    "(c (dc=com ? sub ? objectClass=TOPSSubscriber)"
    "   (dc=com ? sub ? objectClass=QHP) count($2)>=3)",
    "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
    "    (& (dc=com ? sub ? sourcePort=25)"
    "       (dc=com ? sub ? objectClass=trafficProfile)) SLATPRef)",
};

// Same DirectoryInstance behind both backends: Session::Run must agree
// byte-for-byte, with only the substrate (and its counters) differing.
TEST(EngineDistTest, BackendsAgreeThroughSessions) {
  DirectoryInstance global = SmallDif();
  Engine local(global);
  Engine dist(global, DistOptions());
  ASSERT_TRUE(dist.init_status().ok()) << dist.init_status().ToString();
  EXPECT_EQ(local.fleet(), nullptr);
  ASSERT_NE(dist.fleet(), nullptr);

  Session ls = local.OpenSession();
  Session ds = dist.OpenSession();
  for (const char* text : kQueries) {
    SCOPED_TRACE(text);
    QueryOutcome lo = ls.Run(text);
    QueryOutcome dout = ds.Run(text);
    ASSERT_TRUE(lo.ok()) << lo.status.ToString();
    ASSERT_TRUE(dout.ok()) << dout.status.ToString();
    EXPECT_EQ(dout.entries, lo.entries);
    EXPECT_TRUE(dout.warnings.empty());
  }
  // The fleet actually served the queries.
  EXPECT_GT(uint64_t{dist.fleet()->net_stats().messages}, 0u);
}

TEST(EngineDistTest, BatchSharingWorksOnTheFleet) {
  DirectoryInstance global = SmallDif();
  Engine dist(global, DistOptions());
  ASSERT_TRUE(dist.init_status().ok());
  Session session = dist.OpenSession();

  // The TOPSSubscriber leaf repeats across the batch: the census must
  // share it, and the batch must still match one-at-a-time evaluation.
  std::vector<std::string> batch = {kQueries[0], kQueries[2], kQueries[0]};
  std::vector<QueryOutcome> singles;
  for (const std::string& q : batch) singles.push_back(session.Run(q));

  BatchResult result = session.RunBatch(batch);
  ASSERT_EQ(result.outcomes.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(batch[i]);
    ASSERT_TRUE(result.outcomes[i].ok())
        << result.outcomes[i].status.ToString();
    EXPECT_EQ(result.outcomes[i].entries, singles[i].entries);
  }
  EXPECT_GE(result.stats.shared_subtrees, 1u);
  EXPECT_GE(result.stats.cache_hits, 1u);
}

TEST(EngineDistTest, FailedBuildIsGraceful) {
  DirectoryInstance global = SmallDif();
  EngineOptions opt;
  opt.backend = EngineBackend::kDistributed;
  // dc=com itself is uncovered: the build must fail...
  opt.topology =
      TopologyConfig::Parse("shard only-org0 dc=org0, dc=com\n").TakeValue();
  Engine dist(global, opt);
  EXPECT_FALSE(dist.init_status().ok());
  EXPECT_EQ(dist.fleet(), nullptr);
  // ...but queries still complete, carrying that status — never a crash.
  Session session = dist.OpenSession();
  QueryOutcome out = session.Run(kQueries[0]);
  EXPECT_FALSE(out.ok());
  EXPECT_TRUE(out.entries.empty());
}

TEST(EngineDistTest, MutationsAndIndexesRejected) {
  DirectoryInstance global = SmallDif();
  Engine dist(global, DistOptions());
  ASSERT_TRUE(dist.init_status().ok());
  Session session = dist.OpenSession();

  UpdateBatch batch;
  batch.Remove((*global.begin()).second.dn());
  UpdateResult res = session.Apply(batch);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(res.applied, 0u);

  EXPECT_FALSE(dist.BuildIndexes(IndexSpec{}).ok());
}

// EXPLAIN ANALYZE against a fleet: the trace carries the shipping and
// failover counters, and the rendered text exposes them.
TEST(EngineDistTest, ExplainAnalyzeShowsFailovers) {
  DirectoryInstance global = SmallDif();
  Engine dist(global, DistOptions());
  ASSERT_TRUE(dist.init_status().ok());
  RetryPolicy fast;
  fast.max_attempts = 2;
  fast.backoff_micros = 0;
  dist.fleet()->set_retry_policy(fast);
  for (const auto& shard : dist.fleet()->shards()) {
    shard->replica(0)->set_down(true);
  }
  Session session = dist.OpenSession();
  QueryOutcome out = session.Run(kQueries[0]);
  ASSERT_TRUE(out.ok()) << out.status.ToString();
  EXPECT_TRUE(out.warnings.empty());  // the sibling replicas absorbed it
  EXPECT_GT(out.trace.failovers, 0u);
  std::string rendered = ExplainAnalyze(dist.store(), *out.plan, out.trace);
  EXPECT_NE(rendered.find("failovers"), std::string::npos);
  EXPECT_NE(rendered.find("shipped"), std::string::npos);
}

// Engine knobs reach the fleet: parallel dispatch over the shards keeps
// results identical, and SetFaults/SetIoDepth at least survive the trip.
TEST(EngineDistTest, ParallelismPropagatesToFleet) {
  DirectoryInstance global = SmallDif();
  Engine dist(global, DistOptions());
  ASSERT_TRUE(dist.init_status().ok());
  Session session = dist.OpenSession();
  QueryOutcome sequential = session.Run(kQueries[2]);
  ASSERT_TRUE(sequential.ok());
  dist.SetParallelism(3);
  EXPECT_EQ(dist.fleet()->parallelism(), 3u);
  QueryOutcome parallel = session.Run(kQueries[2]);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel.entries, sequential.entries);
}

}  // namespace
}  // namespace ndq
