// Session::RunBatch: cross-query operand sharing must be invisible in the
// results (byte-identical to one-at-a-time evaluation) and visible in the
// accounting (each shared subtree materialized exactly once, every other
// occurrence a cache hit).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/status_matchers.h"
#include "engine/engine.h"
#include "exec/theorem_check.h"
#include "query/parser.h"
#include "query/reference.h"
#include "store/entry_store.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

const char* kBatchTexts[] = {
    "(dc=att, dc=com ? sub ? surName=jagadish)",
    "(& (dc=com ? sub ? objectClass=dcObject)"
    "   (dc=att, dc=com ? sub ? objectClass=*))",
    // Repeats of the first two: cross-query duplicates for the census.
    "(dc=att, dc=com ? sub ? surName=jagadish)",
    "(& (dc=com ? sub ? objectClass=dcObject)"
    "   (dc=att, dc=com ? sub ? objectClass=*))",
    // Shares only a sub-plan (the dcObject leaf) with the batch.
    "(| (dc=com ? sub ? objectClass=dcObject)"
    "   (dc=com ? sub ? objectClass=QHP))",
    "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)"
    "   (dc=att, dc=com ? sub ? surName=jagadish))",
};

class EngineBatchTest : public ::testing::Test {
 protected:
  EngineBatchTest()
      : inst_(testing::PaperInstance()),
        disk_(1024),
        store_(EntryStore::BulkLoad(&disk_, inst_).TakeValue()) {}

  Engine MakeEngine(EngineOptions options = {}) {
    return Engine(&disk_, &store_, options);
  }

  // One-at-a-time ground truth on a FRESH engine (its own cold cache), so
  // nothing the batch engine cached can leak into the expectation.
  std::vector<std::vector<Entry>> Sequential(
      const std::vector<std::string>& texts) {
    Engine engine = MakeEngine();
    Session session = engine.OpenSession();
    std::vector<std::vector<Entry>> results;
    for (const std::string& text : texts) {
      QueryOutcome out = session.Run(text);
      EXPECT_TRUE(out.ok()) << text << ": " << out.status.ToString();
      results.push_back(std::move(out.entries));
    }
    return results;
  }

  DirectoryInstance inst_;
  SimDisk disk_;
  EntryStore store_;
};

TEST_F(EngineBatchTest, BatchIsByteIdenticalToSequential) {
  std::vector<std::string> texts(std::begin(kBatchTexts),
                                 std::end(kBatchTexts));
  std::vector<std::vector<Entry>> want = Sequential(texts);

  Engine engine = MakeEngine();
  Session session = engine.OpenSession();
  BatchResult br = session.RunBatch(texts);
  ASSERT_EQ(br.outcomes.size(), texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    SCOPED_TRACE(texts[i]);
    NDQ_ASSERT_OK(br.outcomes[i].status);
    EXPECT_EQ(br.outcomes[i].entries, want[i]);
    testing::ExpectWithinTheoremBounds(br.outcomes[i].trace);
  }
  // The duplicates guarantee a non-trivial census and some sharing.
  EXPECT_GE(br.stats.shared_subtrees, 2u);
  EXPECT_GE(br.stats.shared_occurrences, 2 * br.stats.shared_subtrees);
  EXPECT_GT(br.stats.cache_hits, 0u);
  EXPECT_EQ(br.stats.rejected, 0u);
}

TEST_F(EngineBatchTest, SharedOperandAccountingIsExact) {
  // Two identical (& A B) queries with canonicalization off, so the plans
  // hit the census verbatim: every node (A, B, and the root) occurs
  // twice, the root is the single maximal shared subtree.
  EngineOptions opts;
  opts.rewrite = false;
  Engine engine = MakeEngine(opts);
  Session session = engine.OpenSession();
  const std::string text =
      "(& (dc=com ? sub ? objectClass=dcObject)"
      "   (dc=att, dc=com ? sub ? objectClass=*))";
  BatchResult br = session.RunBatch(std::vector<std::string>{text, text});

  EXPECT_EQ(br.stats.shared_subtrees, 3u);    // A, B, (& A B)
  EXPECT_EQ(br.stats.shared_occurrences, 6u);
  // Precompute materializes each distinct subtree exactly once (three
  // cold misses); both queries are then answered by one root hit each.
  EXPECT_EQ(br.stats.cache_misses, 3u);
  EXPECT_EQ(br.stats.cache_hits, 2u);

  ASSERT_EQ(br.outcomes.size(), 2u);
  for (const QueryOutcome& out : br.outcomes) {
    NDQ_ASSERT_OK(out.status);
    // Served from the cache at the root: the trace records the hit and a
    // skeleton of the subtree it replaced, and still verifies.
    EXPECT_EQ(out.trace.cache_hits, 1u);
    testing::ExpectWithinTheoremBounds(out.trace);
  }
  EXPECT_EQ(br.outcomes[0].entries, br.outcomes[1].entries);
}

TEST_F(EngineBatchTest, CacheOffStillCorrectJustUnshared) {
  EngineOptions opts;
  opts.cache_capacity_pages = 0;  // disables cross-query sharing
  Engine engine = MakeEngine(opts);
  Session session = engine.OpenSession();
  std::vector<std::string> texts(std::begin(kBatchTexts),
                                 std::end(kBatchTexts));
  std::vector<std::vector<Entry>> want = Sequential(texts);
  BatchResult br = session.RunBatch(texts);
  ASSERT_EQ(br.outcomes.size(), texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    NDQ_ASSERT_OK(br.outcomes[i].status);
    EXPECT_EQ(br.outcomes[i].entries, want[i]);
  }
  // The census still ran (it is pure plan analysis) but no cache traffic
  // happened.
  EXPECT_GE(br.stats.shared_subtrees, 2u);
  EXPECT_EQ(br.stats.cache_hits, 0u);
  EXPECT_EQ(br.stats.cache_misses, 0u);
}

TEST_F(EngineBatchTest, ParseErrorIsolatedToItsSlot) {
  Engine engine = MakeEngine();
  Session session = engine.OpenSession();
  BatchResult br = session.RunBatch(std::vector<std::string>{
      "(dc=com ? sub ? objectClass=*)", "(dc=com ? sub ?",
      "(dc=att, dc=com ? sub ? surName=jagadish)"});
  ASSERT_EQ(br.outcomes.size(), 3u);
  NDQ_EXPECT_OK(br.outcomes[0].status);
  EXPECT_FALSE(br.outcomes[1].ok());
  EXPECT_EQ(br.outcomes[1].plan, nullptr);
  NDQ_EXPECT_OK(br.outcomes[2].status);
  EXPECT_EQ(br.outcomes[0].entries.size(), inst_.size());
  EXPECT_EQ(br.stats.rejected, 0u);  // a parse error is not an admission
}

TEST_F(EngineBatchTest, AdmissionRejectionsAreCountedPerBatch) {
  Engine engine = MakeEngine();
  SessionOptions opts;
  opts.queue_depth = 0;  // reject every submission
  Session session = engine.OpenSession(opts);
  std::vector<std::string> texts(std::begin(kBatchTexts),
                                 std::begin(kBatchTexts) + 3);
  BatchResult br = session.RunBatch(texts);
  ASSERT_EQ(br.outcomes.size(), 3u);
  for (const QueryOutcome& out : br.outcomes) {
    NDQ_EXPECT_STATUS(out.status, StatusCode::kResourceExhausted);
    ASSERT_EQ(out.warnings.size(), 1u);
    EXPECT_EQ(out.warnings[0].source, "admission");
  }
  EXPECT_EQ(br.stats.rejected, 3u);
}

// Concurrent chains must keep their traces apart: run the whole batch at
// parallelism 4 with four chains in flight and check that every outcome's
// trace describes ITS plan (root operator, output cardinality) and stays
// within the theorem bounds. Run under TSan in CI.
TEST_F(EngineBatchTest, TracesStayIsolatedUnderConcurrency) {
  EngineOptions opts;
  opts.exec.parallelism = 4;
  opts.max_inflight = 4;
  opts.queue_depth = 64;
  Engine engine = MakeEngine(opts);
  Session session = engine.OpenSession();

  std::vector<std::string> texts;
  for (int round = 0; round < 4; ++round) {
    texts.insert(texts.end(), std::begin(kBatchTexts),
                 std::end(kBatchTexts));
  }
  std::vector<std::vector<Entry>> want = Sequential(texts);

  std::vector<QueryTicket> tickets;
  tickets.reserve(texts.size());
  for (const std::string& text : texts) {
    tickets.push_back(session.Submit(text));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    SCOPED_TRACE(texts[i]);
    const QueryOutcome& out = tickets[i].Wait();
    NDQ_ASSERT_OK(out.status);
    EXPECT_EQ(out.entries, want[i]);
    ASSERT_NE(out.plan, nullptr);
    EXPECT_EQ(out.trace.op, out.plan->op());
    EXPECT_EQ(out.trace.output_records, out.entries.size());
    testing::ExpectWithinTheoremBounds(out.trace);
    testing::ExpectIoAccountingConsistent(out.trace);
  }
  session.Drain();
  EXPECT_EQ(session.stats().completed, texts.size());
}

}  // namespace
}  // namespace ndq
