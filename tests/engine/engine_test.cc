// ndq::Engine session API: query outcomes, persistent settings, graceful
// admission control, and session bookkeeping.
//
// The engine is a wiring layer — evaluation correctness is covered by the
// evaluator/fuzz suites — so these tests pin down the CONTRACT of the
// front door: every submission yields an outcome (never an abort), parse
// errors and admission rejections are distinguishable, Set* settings
// survive across queries, and per-session admission knobs override the
// engine defaults.

#include "engine/engine.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/status_matchers.h"
#include "exec/theorem_check.h"
#include "query/parser.h"
#include "query/reference.h"
#include "store/entry_store.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

constexpr const char* kWholeTree = "(dc=com ? sub ? objectClass=*)";
constexpr const char* kBoolean =
    "(& (dc=com ? sub ? objectClass=dcObject)"
    "   (dc=att, dc=com ? sub ? objectClass=*))";
constexpr const char* kHierarchy =
    "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)"
    "   (dc=att, dc=com ? sub ? surName=jagadish))";

std::vector<Entry> ReferenceEntries(const DirectoryInstance& inst,
                                    const std::string& text) {
  QueryPtr q = ParseQuery(text).TakeValue();
  std::vector<Entry> want;
  for (const Entry* e : EvaluateReference(*q, inst).TakeValue()) {
    want.push_back(*e);
  }
  return want;
}

// Borrowing-mode engine over a bulk-loaded copy of the paper instance.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : inst_(testing::PaperInstance()),
        disk_(1024),
        store_(EntryStore::BulkLoad(&disk_, inst_).TakeValue()) {}

  Engine MakeEngine(EngineOptions options = {}) {
    return Engine(&disk_, &store_, options);
  }

  DirectoryInstance inst_;
  SimDisk disk_;
  EntryStore store_;
};

TEST_F(EngineTest, RunMatchesReferenceAndFillsOutcome) {
  Engine engine = MakeEngine();
  Session session = engine.OpenSession();
  for (const char* text : {kWholeTree, kBoolean, kHierarchy}) {
    SCOPED_TRACE(text);
    QueryOutcome out = session.Run(text);
    NDQ_ASSERT_OK(out.status);
    EXPECT_EQ(out.entries, ReferenceEntries(inst_, text));
    ASSERT_NE(out.plan, nullptr);
    EXPECT_GT(out.estimated_pages, 0);
    testing::ExpectWithinTheoremBounds(out.trace);
    testing::ExpectIoAccountingConsistent(out.trace);
  }
}

TEST_F(EngineTest, QueryConvenienceReturnsEntries) {
  Engine engine = MakeEngine();
  Session session = engine.OpenSession();
  NDQ_ASSERT_OK_AND_ASSIGN(std::vector<Entry> entries,
                           session.Query(kWholeTree));
  EXPECT_EQ(entries.size(), inst_.size());
}

TEST_F(EngineTest, ParseErrorIsNotAnAdmissionRejection) {
  Engine engine = MakeEngine();
  Session session = engine.OpenSession();
  QueryOutcome out = session.Run("(dc=com ? sub ?");  // unbalanced
  EXPECT_FALSE(out.ok());
  // A parse failure never produced a plan; an admission rejection always
  // carries one (ndqsh tells the two apart exactly this way).
  EXPECT_EQ(out.plan, nullptr);
  EXPECT_TRUE(out.warnings.empty());
  SessionStats stats = session.stats();
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(EngineTest, SettingsPersistAcrossQueries) {
  Engine engine = MakeEngine();
  Session session = engine.OpenSession();

  engine.SetParallelism(3);
  EXPECT_EQ(engine.parallelism(), 3u);
  NDQ_ASSERT_OK(session.Run(kBoolean).status);
  // Still 3 after the query: engine state, not a per-call argument.
  EXPECT_EQ(engine.parallelism(), 3u);

  // A fault policy that can never fire (the Nth read is far away).
  NDQ_ASSERT_OK(engine.SetFaults("read:n=1000000"));
  ASSERT_NE(engine.fault_injector(), nullptr);
  NDQ_ASSERT_OK(session.Run(kBoolean).status);
  EXPECT_GT(engine.fault_injector()->ops_seen(), 0u);

  NDQ_ASSERT_OK(engine.SetFaults("off"));
  EXPECT_EQ(engine.fault_injector(), nullptr);

  engine.SetParallelism(1);
  EXPECT_EQ(engine.parallelism(), 1u);
  NDQ_ASSERT_OK(session.Run(kBoolean).status);
}

TEST_F(EngineTest, SetFaultsRejectsBadSpecAndKeepsOldPolicy) {
  Engine engine = MakeEngine();
  NDQ_ASSERT_OK(engine.SetFaults("read:n=1000000"));
  NDQ_EXPECT_STATUS(engine.SetFaults("explode:sometimes"),
                    StatusCode::kInvalidArgument);
  // The previous (parseable) policy survives a failed SetFaults.
  EXPECT_NE(engine.fault_injector(), nullptr);
  EXPECT_EQ(engine.options().fault_spec, "read:n=1000000");
}

TEST_F(EngineTest, InjectedFaultSurfacesAsQueryError) {
  Engine engine = MakeEngine();
  Session session = engine.OpenSession();
  NDQ_ASSERT_OK(engine.SetFaults("read:every=1:sticky"));
  QueryOutcome out = session.Run(kWholeTree);
  EXPECT_FALSE(out.ok());
  EXPECT_GT(engine.fault_injector()->faults_fired(), 0u);
  // Clearing the policy restores service — the engine absorbed the
  // failure without wedging any internal state.
  NDQ_ASSERT_OK(engine.SetFaults("off"));
  NDQ_ASSERT_OK(session.Run(kWholeTree).status);
}

TEST_F(EngineTest, PageBudgetRejectsGracefully) {
  Engine engine = MakeEngine();
  Session session = engine.OpenSession();
  engine.SetPageBudget(1);  // nothing real fits in one page
  QueryOutcome out = session.Run(kWholeTree);
  NDQ_EXPECT_STATUS(out.status, StatusCode::kResourceExhausted);
  ASSERT_EQ(out.warnings.size(), 1u);
  EXPECT_EQ(out.warnings[0].source, "admission");
  EXPECT_NE(out.plan, nullptr);  // rejected, but after planning
  EXPECT_GT(out.estimated_pages, 1.0);
  EXPECT_TRUE(out.entries.empty());
  EXPECT_EQ(session.stats().rejected, 1u);

  engine.SetPageBudget(0);  // back to unlimited
  NDQ_ASSERT_OK(session.Run(kWholeTree).status);
  SessionStats stats = session.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(EngineTest, SessionBudgetOverridesEngineDefault) {
  Engine engine = MakeEngine();  // engine budget: unlimited
  SessionOptions tight;
  tight.per_query_page_budget = 1;
  Session session = engine.OpenSession(tight);
  NDQ_EXPECT_STATUS(session.Run(kWholeTree).status,
                    StatusCode::kResourceExhausted);
  // An unconstrained sibling session is unaffected.
  Session open = engine.OpenSession();
  NDQ_ASSERT_OK(open.Run(kWholeTree).status);
}

TEST_F(EngineTest, ZeroQueueDepthRejectsEverySubmission) {
  Engine engine = MakeEngine();
  SessionOptions opts;
  opts.queue_depth = 0;
  Session session = engine.OpenSession(opts);
  QueryOutcome out = session.Run(kWholeTree);
  NDQ_EXPECT_STATUS(out.status, StatusCode::kResourceExhausted);
  ASSERT_EQ(out.warnings.size(), 1u);
  EXPECT_EQ(out.warnings[0].source, "admission");
  EXPECT_EQ(session.stats().rejected, 1u);
  EXPECT_EQ(session.stats().submitted, 0u);
}

TEST_F(EngineTest, SessionStatsCountSubmittedAndCompleted) {
  Engine engine = MakeEngine();
  Session session = engine.OpenSession();
  for (int i = 0; i < 3; ++i) {
    NDQ_ASSERT_OK(session.Run(kBoolean).status);
  }
  session.Drain();
  SessionStats stats = session.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(EngineTest, TicketsCanOverlapAndWaitOutOfOrder) {
  EngineOptions opts;
  opts.exec.parallelism = 2;
  Engine engine = MakeEngine(opts);
  Session session = engine.OpenSession();
  QueryTicket t1 = session.Submit(kWholeTree);
  QueryTicket t2 = session.Submit(kBoolean);
  QueryTicket t3 = session.Submit(kHierarchy);
  // Wait in reverse submission order; each outcome is the right one.
  EXPECT_EQ(t3.Wait().entries, ReferenceEntries(inst_, kHierarchy));
  EXPECT_EQ(t2.Wait().entries, ReferenceEntries(inst_, kBoolean));
  EXPECT_EQ(t1.Wait().entries, ReferenceEntries(inst_, kWholeTree));
  session.Drain();
  EXPECT_EQ(session.stats().completed, 3u);
}

TEST(EngineSessionTest, DefaultSessionFailsGracefully) {
  Session session;  // never opened on an engine
  QueryOutcome out = session.Run("(dc=com ? sub ? objectClass=*)");
  NDQ_EXPECT_STATUS(out.status, StatusCode::kInvalidArgument);
  BatchResult br = session.RunBatch(std::vector<std::string>{"(a", "(b"});
  ASSERT_EQ(br.outcomes.size(), 2u);
  NDQ_EXPECT_STATUS(br.outcomes[0].status, StatusCode::kInvalidArgument);
  session.Drain();  // no-op, must not crash
  EXPECT_EQ(session.stats().submitted, 0u);
}

TEST(EngineOwningModeTest, MutableStoreFeedsQueries) {
  Engine engine{testing::PaperSchema()};
  ASSERT_NE(engine.mutable_store(), nullptr);
  Session session = engine.OpenSession();

  // Empty store: a whole-tree query is OK and empty.
  NDQ_ASSERT_OK_AND_ASSIGN(std::vector<Entry> empty,
                           session.Query("(dc=com ? sub ? objectClass=*)"));
  EXPECT_TRUE(empty.empty());

  // Load the paper instance shallow-first so every parent exists.
  DirectoryInstance inst = testing::PaperInstance();
  std::vector<const Entry*> by_depth;
  for (const auto& [key, entry] : inst) {
    (void)key;
    by_depth.push_back(&entry);
  }
  std::stable_sort(by_depth.begin(), by_depth.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->dn().depth() < b->dn().depth();
                   });
  for (const Entry* e : by_depth) {
    NDQ_ASSERT_OK(engine.mutable_store()->Add(*e));
  }
  engine.InvalidateCaches();

  NDQ_ASSERT_OK_AND_ASSIGN(std::vector<Entry> all,
                           session.Query("(dc=com ? sub ? objectClass=*)"));
  EXPECT_EQ(all.size(), inst.size());

  // Mutate + invalidate: the next query sees the removal. The deepest
  // entry is necessarily a leaf, so Remove cannot orphan children.
  NDQ_ASSERT_OK(engine.mutable_store()->Remove(by_depth.back()->dn()));
  engine.InvalidateCaches();
  NDQ_ASSERT_OK_AND_ASSIGN(std::vector<Entry> fewer,
                           session.Query("(dc=com ? sub ? objectClass=*)"));
  EXPECT_EQ(fewer.size(), inst.size() - 1);
}

TEST_F(EngineTest, ApplyIsRejectedInBorrowingMode) {
  // A borrowing engine evaluates someone else's store; routing mutations
  // through it would bypass the owner. The whole batch is rejected before
  // any op runs.
  Engine engine = MakeEngine();
  Session session = engine.OpenSession();
  UpdateBatch batch;
  Entry e(testing::D("dc=new, dc=com"));
  e.AddClass("dcObject");
  e.AddString("dc", "new");
  batch.Put(e);
  UpdateResult res = session.Apply(batch);
  NDQ_EXPECT_STATUS(res.status, StatusCode::kInvalidArgument);
  EXPECT_EQ(res.applied, 0u);
  EXPECT_TRUE(res.op_status.empty());
}

TEST(EngineSessionTest, ApplyOnUnopenedSessionFailsGracefully) {
  Session session;  // never opened on an engine
  UpdateBatch batch;
  batch.Remove(Dn());
  UpdateResult res = session.Apply(batch);
  NDQ_EXPECT_STATUS(res.status, StatusCode::kInvalidArgument);
  EXPECT_EQ(res.applied, 0u);
}

TEST(EngineOwningModeTest, ApplyFeedsQueriesWithoutManualInvalidation) {
  Engine engine{testing::PaperSchema()};
  Session session = engine.OpenSession();
  UpdateBatch batch;
  DirectoryInstance inst = testing::PaperInstance();
  for (const auto& [key, entry] : inst) {
    (void)key;
    batch.Put(entry);
  }
  UpdateResult res = session.Apply(batch);
  NDQ_ASSERT_OK(res.status);
  EXPECT_EQ(res.applied, inst.size());
  // No InvalidateCaches() call: Apply handles visibility itself.
  NDQ_ASSERT_OK_AND_ASSIGN(std::vector<Entry> all,
                           session.Query("(dc=com ? sub ? objectClass=*)"));
  EXPECT_EQ(all.size(), inst.size());
}

}  // namespace
}  // namespace ndq
