// ParallelEvaluator must be observationally identical to the sequential
// Evaluator: same records in the same order (or the same error) for every
// query, at every parallelism, with or without an operand cache — only the
// schedule may differ. Cross-validated over the paper instance and
// randomized forests/queries in all language levels, plus trace checks
// (worker stamps, cache traffic, theorem bounds, I/O reconciliation).

#include <cctype>
#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "exec/operand_cache.h"
#include "exec/parallel_evaluator.h"
#include "gen/random_forest.h"
#include "gen/random_query.h"
#include "query/parser.h"
#include "testing/paper_fixture.h"
#include "theorem_check.h"

namespace ndq {
namespace {

// Evaluates `query` sequentially and with a ParallelEvaluator configured
// by (parallelism, with_cache); expects identical ordered results (or the
// same ok/error outcome). With a cache the query runs twice, so the second
// round is served from warm leaves and must still agree.
void ExpectMatchesSequential(const DirectoryInstance& inst,
                             const Query& query, size_t parallelism,
                             bool with_cache) {
  SimDisk seq_disk(1024);
  EntryStore seq_store = EntryStore::BulkLoad(&seq_disk, inst).TakeValue();
  Evaluator sequential(&seq_disk, &seq_store);
  Result<std::vector<Entry>> want = sequential.EvaluateToEntries(query);

  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  ExecOptions options;
  options.parallelism = parallelism;
  OperandCache cache(&disk, /*capacity_pages=*/4096);
  ParallelEvaluator parallel(&disk, &store, options,
                             with_cache ? &cache : nullptr);

  const int rounds = with_cache ? 2 : 1;
  for (int round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    OpTrace trace;
    Result<std::vector<Entry>> got =
        parallel.EvaluateToEntries(query, &trace);
    ASSERT_EQ(want.ok(), got.ok())
        << query.ToString() << ": sequential="
        << (want.ok() ? "ok" : want.status().ToString()) << " parallel="
        << (got.ok() ? "ok" : got.status().ToString());
    if (!want.ok()) return;
    ASSERT_EQ(want->size(), got->size()) << query.ToString();
    for (size_t i = 0; i < want->size(); ++i) {
      ASSERT_EQ((*want)[i], (*got)[i])
          << query.ToString() << " at index " << i;
    }
    testing::ExpectWithinTheoremBounds(trace);
    testing::ExpectIoAccountingConsistent(trace);
    testing::ExpectCardinalityWithinEstimate(store, query, trace);
  }
}

void ExpectMatchesSequentialText(const DirectoryInstance& inst,
                                 const std::string& text, size_t parallelism,
                                 bool with_cache) {
  Result<QueryPtr> q = ParseQuery(text);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  SCOPED_TRACE(text);
  ExpectMatchesSequential(inst, **q, parallelism, with_cache);
}

const char* kPaperQueries[] = {
    // Atomic, every scope.
    "(dc=att, dc=com ? sub ? surName=jagadish)",
    "(dc=att, dc=com ? base ? objectClass=*)",
    "(dc=research, dc=att, dc=com ? one ? objectClass=*)",
    // Booleans.
    "(& (dc=com ? sub ? objectClass=dcObject) (dc=att, dc=com ? sub ? "
    "objectClass=*))",
    "(| (dc=com ? base ? objectClass=*) (dc=att, dc=com ? one ? "
    "objectClass=*))",
    "(- (dc=att, dc=com ? sub ? surName=jagadish)"
    "   (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
    // Hierarchy operators (2- and 3-operand).
    "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)"
    "   (dc=att, dc=com ? sub ? surName=jagadish))",
    "(p (dc=com ? sub ? objectClass=QHP)"
    "   (dc=com ? sub ? objectClass=TOPSSubscriber))",
    "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
    "   (dc=att, dc=com ? sub ? ou=networkPolicies))",
    "(d (dc=com ? sub ? objectClass=dcObject)"
    "   (dc=com ? sub ? objectClass=QHP))",
    "(dc (dc=att, dc=com ? sub ? objectClass=dcObject)"
    "    (& (dc=att, dc=com ? sub ? sourcePort=25)"
    "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
    "    (dc=att, dc=com ? sub ? objectClass=dcObject))",
    "(ac (dc=com ? sub ? uid=jag) (dc=com ? sub ? objectClass=dcObject)"
    "    (dc=com ? sub ? objectClass=dcObject))",
    // Aggregation.
    "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
    "   count(SLAPVPRef) > 1)",
    "(c (dc=com ? sub ? objectClass=QHP)"
    "   (dc=com ? sub ? objectClass=callAppearance) max($2.timeOut)<=30)",
    // Embedded references.
    "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
    "    (& (dc=att, dc=com ? sub ? sourcePort=25)"
    "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
    "    SLATPRef)",
    "(dv (dc=com ? sub ? objectClass=trafficProfile)"
    "    (dc=com ? sub ? objectClass=SLAPolicyRules) SLATPRef "
    "count($2)>=1)",
    // LDAP baseline.
    "(ldap dc=com ? sub ? (&(objectClass=QHP)(!(priority>1))))",
};

TEST(ParallelEvaluatorTest, PaperQueriesAtEveryParallelism) {
  DirectoryInstance inst = testing::PaperInstance();
  for (size_t parallelism : {size_t{1}, size_t{2}, size_t{4}}) {
    for (const char* text : kPaperQueries) {
      SCOPED_TRACE("parallelism " + std::to_string(parallelism));
      ExpectMatchesSequentialText(inst, text, parallelism,
                                  /*with_cache=*/false);
    }
  }
}

TEST(ParallelEvaluatorTest, PaperQueriesWithOperandCache) {
  DirectoryInstance inst = testing::PaperInstance();
  for (const char* text : kPaperQueries) {
    ExpectMatchesSequentialText(inst, text, /*parallelism=*/4,
                                /*with_cache=*/true);
  }
}

TEST(ParallelEvaluatorTest, RepeatedLeafHitsTheCache) {
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  // Parallelism 1 keeps the leaf order deterministic: with concurrent
  // operands both copies of the leaf could race to a miss, which is
  // correct but makes the hit/miss split unpredictable.
  ExecOptions options;
  options.parallelism = 1;
  OperandCache cache(&disk, /*capacity_pages=*/4096);
  ParallelEvaluator parallel(&disk, &store, options, &cache);

  // The same leaf appears on both sides of the intersection: one miss
  // fills the cache, the second occurrence (and every leaf of a repeat
  // evaluation) hits.
  Result<QueryPtr> q = ParseQuery(
      "(& (dc=att, dc=com ? sub ? objectClass=QHP)"
      "   (dc=att, dc=com ? sub ? objectClass=QHP))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  OpTrace trace;
  Result<std::vector<Entry>> first =
      parallel.EvaluateToEntries(**q, &trace);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(trace.children.size(), 2u);
  uint64_t hits = trace.children[0].cache_hits + trace.children[1].cache_hits;
  uint64_t misses =
      trace.children[0].cache_misses + trace.children[1].cache_misses;
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);

  OpTrace warm;
  Result<std::vector<Entry>> second =
      parallel.EvaluateToEntries(**q, &warm);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(warm.children[0].cache_hits + warm.children[1].cache_hits, 2u);
  EXPECT_EQ(warm.children[0].cache_misses + warm.children[1].cache_misses,
            0u);
  EXPECT_EQ(*first, *second);

  OperandCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.resident_entries, 1u);
}

TEST(ParallelEvaluatorTest, WorkerStampsShowConcurrency) {
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  ExecOptions options;
  options.parallelism = 4;
  ParallelEvaluator parallel(&disk, &store, options);
  ASSERT_EQ(parallel.parallelism(), 4u);

  Result<QueryPtr> q = ParseQuery(
      "(& (| (dc=com ? sub ? objectClass=QHP)"
      "      (dc=com ? sub ? objectClass=dcObject))"
      "   (- (dc=att, dc=com ? sub ? objectClass=*)"
      "      (dc=com ? sub ? objectClass=TOPSSubscriber)))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  OpTrace trace;
  ASSERT_TRUE(parallel.Evaluate(**q, &trace).ok());
  // Every node carries a worker id in [0, parallelism); the root runs on
  // the caller (worker 0). Occupancy over the whole tree is at least 1
  // and never exceeds the pool.
  EXPECT_EQ(trace.worker, 0u);
  size_t workers = trace.SubtreeWorkers();
  EXPECT_GE(workers, 1u);
  EXPECT_LE(workers, 4u);

  EvalStats stats = parallel.stats();
  EXPECT_EQ(stats.operators_evaluated, 7u);
  EXPECT_EQ(stats.atomic_queries, 4u);
}

TEST(ParallelEvaluatorTest, CacheOnForeignDiskIsRejected) {
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk(1024);
  SimDisk other(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  OperandCache cache(&other, /*capacity_pages=*/64);
  ParallelEvaluator parallel(&disk, &store, ExecOptions{}, &cache);
  Result<QueryPtr> q = ParseQuery("(dc=com ? sub ? objectClass=*)");
  ASSERT_TRUE(q.ok());
  Result<EntryList> r = parallel.Evaluate(**q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelEvaluatorTest, NoPageLeaksAcrossEvaluations) {
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  ExecOptions options;
  options.parallelism = 4;
  OperandCache cache(&disk, /*capacity_pages=*/4096);
  {
    ParallelEvaluator parallel(&disk, &store, options, &cache);
    size_t baseline = disk.live_pages();
    for (const char* text : kPaperQueries) {
      Result<QueryPtr> q = ParseQuery(text);
      ASSERT_TRUE(q.ok());
      Result<EntryList> r = parallel.Evaluate(**q);
      ASSERT_TRUE(r.ok()) << text << ": " << r.status().ToString();
      EntryList list = r.TakeValue();
      ASSERT_TRUE(FreeRun(&disk, &list).ok());
    }
    // Only cache-resident copies may remain beyond the store itself.
    EXPECT_EQ(disk.live_pages(), baseline + cache.stats().resident_pages);
    cache.Clear();
    EXPECT_EQ(disk.live_pages(), baseline);
  }
}

// Wraps a store and fails scans whose start key contains a marker, so a
// specific atomic leaf can be broken while its siblings keep working.
class FailingSource : public EntrySource {
 public:
  FailingSource(const EntrySource* base,
                std::vector<std::pair<std::string, Status>> failures)
      : base_(base), failures_(std::move(failures)) {}

  Status ScanRange(std::string_view start_key, std::string_view end_key,
                   const std::function<Status(std::string_view)>& fn)
      const override {
    std::string key(start_key);
    for (char& c : key) c = static_cast<char>(std::tolower(c));
    for (const auto& [marker, status] : failures_) {
      if (key.find(marker) != std::string::npos) return status;
    }
    return base_->ScanRange(start_key, end_key, fn);
  }
  uint64_t num_entries() const override { return base_->num_entries(); }
  const IoStats* io_stats() const override { return base_->io_stats(); }
  uint64_t EstimateRangeRecords(std::string_view start_key,
                                std::string_view end_key) const override {
    return base_->EstimateRangeRecords(start_key, end_key);
  }
  uint64_t EstimateRangePages(std::string_view start_key,
                              std::string_view end_key) const override {
    return base_->EstimateRangePages(start_key, end_key);
  }

 private:
  const EntrySource* base_;
  std::vector<std::pair<std::string, Status>> failures_;
};

TEST(ParallelEvaluatorTest, FirstErrorSurfacesDeterministically) {
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  // Both operands fail, with distinct messages; the research subtree's
  // scan key is strictly deeper, so the markers cannot cross-match.
  FailingSource failing(
      &store, {{"research", Status::Unavailable("injected: left operand")},
               {"com", Status::Unavailable("injected: right operand")}});
  ExecOptions options;
  options.parallelism = 4;
  ParallelEvaluator parallel(&disk, &failing, options);

  Result<QueryPtr> q = ParseQuery(
      "(& (dc=research, dc=att, dc=com ? sub ? objectClass=*)"
      "   (dc=com ? sub ? objectClass=dcObject))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  // Whatever order the forked subtrees finish in, the error of the
  // FIRST failing operand (query order) must surface, every time.
  for (int round = 0; round < 25; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    Result<std::vector<Entry>> got = parallel.EvaluateToEntries(**q);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ(got.status().message(), "injected: left operand");
  }
  EXPECT_EQ(disk.live_pages(),
            static_cast<size_t>(uint64_t{disk.stats().pages_allocated} -
                                uint64_t{disk.stats().pages_freed}));
}

class ParallelPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelPropertyTest, RandomQueriesAgreeWithSequential) {
  const auto [seed, lang_int] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed));
  gen::RandomForestOptions fopt;
  fopt.seed = static_cast<uint32_t>(seed);
  fopt.num_entries = 150;
  DirectoryInstance inst = gen::RandomForest(fopt);

  gen::RandomQueryOptions qopt;
  qopt.max_language = static_cast<Language>(lang_int);
  qopt.max_depth = 3;

  for (int i = 0; i < 20; ++i) {
    QueryPtr q = gen::RandomQuery(&rng, inst, qopt);
    SCOPED_TRACE(q->ToString());
    ExpectMatchesSequential(inst, *q, /*parallelism=*/4,
                            /*with_cache=*/i % 2 == 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLanguages, ParallelPropertyTest,
    ::testing::Combine(::testing::Values(7, 21), ::testing::Values(2, 4)));

}  // namespace
}  // namespace ndq
