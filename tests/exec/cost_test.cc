#include "exec/cost.h"

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "gen/dif_gen.h"
#include "query/parser.h"
#include "query/rewrite.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;

struct CostFixture {
  SimDisk disk{1024};
  DirectoryInstance inst;
  EntryStore store;

  CostFixture() : inst(Schema(), false) {
    gen::DifOptions opt;
    opt.num_orgs = 4;
    inst = gen::GenerateDif(opt);
    store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  }

  CostEstimate Est(const std::string& text) {
    QueryPtr q = ParseQuery(text).TakeValue();
    return EstimateCost(store, *q);
  }

  uint64_t Measure(const std::string& text) {
    QueryPtr q = ParseQuery(text).TakeValue();
    SimDisk scratch(1024);
    Evaluator evaluator(&scratch, &store);
    disk.ResetStats();
    EXPECT_TRUE(evaluator.EvaluateToEntries(*q).ok());
    return disk.stats().TotalTransfers() +
           scratch.stats().TotalTransfers();
  }
};

TEST(CostTest, LeafEstimatesTrackScope) {
  CostFixture f;
  CostEstimate whole = f.Est("(dc=com ? sub ? objectClass=*)");
  CostEstimate domain =
      f.Est("(dc=sub0, dc=org0, dc=com ? sub ? objectClass=*)");
  CostEstimate base = f.Est("(dc=sub0, dc=org0, dc=com ? base ? dc=*)");
  EXPECT_GT(whole.leaf_pages, domain.leaf_pages);
  EXPECT_GT(domain.leaf_pages, base.leaf_pages);
  EXPECT_GE(base.leaf_pages, 1.0);
  // Whole-forest leaf estimate equals the store's page count.
  EXPECT_DOUBLE_EQ(whole.leaf_pages,
                   static_cast<double>(f.store.num_pages()));
}

TEST(CostTest, LeafRecordEstimateIsUpperBoundOnResults) {
  CostFixture f;
  for (const char* text :
       {"(dc=com ? sub ? objectClass=QHP)",
        "(dc=org0, dc=com ? sub ? objectClass=trafficProfile)",
        "(dc=sub0, dc=org0, dc=com ? one ? objectClass=*)"}) {
    QueryPtr q = ParseQuery(text).TakeValue();
    CostEstimate est = EstimateCost(f.store, *q);
    SimDisk scratch(1024);
    Evaluator evaluator(&scratch, &f.store);
    std::vector<Entry> r = evaluator.EvaluateToEntries(*q).TakeValue();
    EXPECT_GE(est.output_records + 0.5, static_cast<double>(r.size()))
        << text;
  }
}

TEST(CostTest, OperatorCostsOrderPlansCorrectly) {
  // The model must rank a domain-scoped plan cheaper than the same plan
  // over the whole forest, and an L3 plan above its L1 core.
  CostFixture f;
  CostEstimate narrow = f.Est(
      "(c (dc=sub0, dc=org0, dc=com ? sub ? objectClass=TOPSSubscriber)"
      "   (dc=sub0, dc=org0, dc=com ? sub ? objectClass=QHP))");
  CostEstimate wide = f.Est(
      "(c (dc=com ? sub ? objectClass=TOPSSubscriber)"
      "   (dc=com ? sub ? objectClass=QHP))");
  EXPECT_LT(narrow.TotalPages(), wide.TotalPages());

  CostEstimate l1 = f.Est(
      "(a (dc=com ? sub ? objectClass=QHP) (dc=com ? sub ? dc=*))");
  CostEstimate l3 = f.Est(
      "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
      "    (dc=com ? sub ? objectClass=trafficProfile) SLATPRef)");
  EXPECT_GT(l3.operator_pages, 0.0);
  EXPECT_GT(l1.operator_pages, 0.0);
}

TEST(CostTest, EstimatesWithinSanityBandOfMeasurement) {
  // Not a precision model — but for representative plans the estimate
  // should land within an order of magnitude of the measured I/O.
  CostFixture f;
  for (const char* text : {
           "(dc=com ? sub ? objectClass=QHP)",
           "(c (dc=com ? sub ? objectClass=TOPSSubscriber)"
           "   (dc=com ? sub ? objectClass=QHP) count($2)>=3)",
           "(dc (dc=com ? sub ? objectClass=dcObject)"
           "    (& (dc=com ? sub ? sourcePort=25)"
           "       (dc=com ? sub ? objectClass=trafficProfile))"
           "    (dc=com ? sub ? objectClass=dcObject))",
       }) {
    SCOPED_TRACE(text);
    double est = f.Est(text).TotalPages();
    double measured = static_cast<double>(f.Measure(text));
    EXPECT_LE(measured, 20.0 * est);
    EXPECT_LE(est, 20.0 * measured);
  }
}

TEST(CostTest, RewriteReducesEstimatedCost) {
  // The optimizer's scan merge must be visible to the cost model.
  CostFixture f;
  QueryPtr q = ParseQuery(
                   "(& (dc=com ? sub ? objectClass=QHP)"
                   "   (dc=com ? sub ? priority<=1))")
                   .TakeValue();
  QueryPtr r = RewriteQuery(q);
  EXPECT_LT(EstimateCost(f.store, *r).TotalPages(),
            EstimateCost(f.store, *q).TotalPages());
}

TEST(CostTest, ExplainRendersTree) {
  CostFixture f;
  QueryPtr q = ParseQuery(
                   "(c (dc=com ? sub ? objectClass=TOPSSubscriber)"
                   "   (dc=com ? sub ? objectClass=QHP) count($2)>1)")
                   .TakeValue();
  std::string plan = ExplainPlan(f.store, *q);
  EXPECT_NE(plan.find("op c"), std::string::npos);
  EXPECT_NE(plan.find("count($2)>1"), std::string::npos);
  EXPECT_NE(plan.find("atomic base='dc=com'"), std::string::npos);
  EXPECT_NE(plan.find("leaf"), std::string::npos);
  // Two leaves, indented beneath the operator.
  EXPECT_NE(plan.find("\n  atomic"), std::string::npos);
}

}  // namespace
}  // namespace ndq
