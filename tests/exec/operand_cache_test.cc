// OperandCache unit tests: private-copy semantics, hit/miss/eviction
// accounting, LRU order, oversize rejection, Clear, and a concurrent
// hammer that doubles as the ThreadSanitizer target for the cache's
// pin/doom lifecycle.

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/operand_cache.h"
#include "exec/parallel_evaluator.h"
#include "exec/thread_pool.h"
#include "storage/fault_injector.h"
#include "storage/run.h"

namespace ndq {
namespace {

// Builds a list of `n` ~24-byte records tagged `tag`, so page counts are
// predictable against a small page size.
EntryList MakeList(SimDisk* disk, int n, const std::string& tag) {
  RunWriter writer(disk);
  for (int i = 0; i < n; ++i) {
    std::string record = tag + "-record-" + std::to_string(i);
    record.resize(24, '.');
    EXPECT_TRUE(writer.Add(record).ok());
  }
  Result<Run> run = writer.Finish();
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return run.TakeValue();
}

std::vector<std::string> ReadAll(SimDisk* disk, const EntryList& list) {
  std::vector<std::string> records;
  RunReader reader(disk, list);
  std::string record;
  while (true) {
    Result<bool> more = reader.Next(&record);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    records.push_back(record);
  }
  return records;
}

TEST(OperandCacheTest, HitReturnsPrivateIdenticalCopy) {
  SimDisk disk(256);
  OperandCache cache(&disk, /*capacity_pages=*/64);

  EntryList original = MakeList(&disk, 50, "a");
  std::vector<std::string> want = ReadAll(&disk, original);
  ASSERT_TRUE(cache.Insert("a", original).ok());
  // The cache owns a private copy: freeing the original must not disturb
  // later hits.
  ASSERT_TRUE(FreeRun(&disk, &original).ok());

  EntryList copy;
  Result<bool> hit = cache.Lookup("a", &copy);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ASSERT_TRUE(*hit);
  EXPECT_EQ(ReadAll(&disk, copy), want);
  ASSERT_TRUE(FreeRun(&disk, &copy).ok());

  // And the copy handed out is itself private: a second hit still works.
  EntryList copy2;
  hit = cache.Lookup("a", &copy2);
  ASSERT_TRUE(hit.ok() && *hit);
  EXPECT_EQ(ReadAll(&disk, copy2), want);
  ASSERT_TRUE(FreeRun(&disk, &copy2).ok());

  OperandCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.resident_entries, 1u);
}

TEST(OperandCacheTest, MissLeavesOutputUntouched) {
  SimDisk disk(256);
  OperandCache cache(&disk, /*capacity_pages=*/64);
  EntryList out;
  Result<bool> hit = cache.Lookup("absent", &out);
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(*hit);
  EXPECT_TRUE(out.pages.empty());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(OperandCacheTest, LruEvictionFollowsRecency) {
  SimDisk disk(256);
  EntryList a = MakeList(&disk, 40, "a");
  EntryList b = MakeList(&disk, 40, "b");
  EntryList c = MakeList(&disk, 40, "c");
  ASSERT_GT(a.pages.size(), 1u);
  // Room for two lists but not three.
  OperandCache cache(&disk, a.pages.size() + b.pages.size());

  ASSERT_TRUE(cache.Insert("a", a).ok());
  ASSERT_TRUE(cache.Insert("b", b).ok());
  // Touch "a" so "b" becomes least recently used.
  EntryList out;
  Result<bool> hit = cache.Lookup("a", &out);
  ASSERT_TRUE(hit.ok() && *hit);
  ASSERT_TRUE(FreeRun(&disk, &out).ok());

  ASSERT_TRUE(cache.Insert("c", c).ok());
  EXPECT_EQ(cache.stats().evictions, 1u);

  hit = cache.Lookup("b", &out);
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(*hit) << "the least recently used entry should be gone";
  hit = cache.Lookup("a", &out);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
  ASSERT_TRUE(FreeRun(&disk, &out).ok());
  hit = cache.Lookup("c", &out);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
  ASSERT_TRUE(FreeRun(&disk, &out).ok());

  ASSERT_TRUE(FreeRun(&disk, &a).ok());
  ASSERT_TRUE(FreeRun(&disk, &b).ok());
  ASSERT_TRUE(FreeRun(&disk, &c).ok());
}

TEST(OperandCacheTest, OversizeListsAreRejected) {
  SimDisk disk(256);
  EntryList big = MakeList(&disk, 100, "big");
  OperandCache cache(&disk, /*capacity_pages=*/1);
  ASSERT_GT(big.pages.size(), 1u);

  ASSERT_TRUE(cache.Insert("big", big).ok());
  OperandCacheStats stats = cache.stats();
  EXPECT_EQ(stats.oversize_rejects, 1u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.resident_entries, 0u);

  EntryList out;
  Result<bool> hit = cache.Lookup("big", &out);
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(*hit);
  ASSERT_TRUE(FreeRun(&disk, &big).ok());
}

TEST(OperandCacheTest, DuplicateInsertIsANoOp) {
  SimDisk disk(256);
  EntryList a = MakeList(&disk, 30, "a");
  OperandCache cache(&disk, /*capacity_pages=*/64);
  ASSERT_TRUE(cache.Insert("a", a).ok());
  uint64_t resident = cache.stats().resident_pages;
  ASSERT_TRUE(cache.Insert("a", a).ok());
  OperandCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.resident_pages, resident);
  ASSERT_TRUE(FreeRun(&disk, &a).ok());
}

TEST(OperandCacheTest, ClearReleasesEveryPage) {
  SimDisk disk(256);
  size_t baseline = disk.live_pages();
  EntryList a = MakeList(&disk, 40, "a");
  EntryList b = MakeList(&disk, 40, "b");
  {
    OperandCache cache(&disk, /*capacity_pages=*/256);
    ASSERT_TRUE(cache.Insert("a", a).ok());
    ASSERT_TRUE(cache.Insert("b", b).ok());
    EXPECT_GT(disk.live_pages(),
              baseline + a.pages.size() + b.pages.size());
    cache.Clear();
    OperandCacheStats stats = cache.stats();
    EXPECT_EQ(stats.resident_entries, 0u);
    EXPECT_EQ(stats.resident_pages, 0u);
    EXPECT_EQ(disk.live_pages(),
              baseline + a.pages.size() + b.pages.size());
    // Reusable after Clear.
    ASSERT_TRUE(cache.Insert("a", a).ok());
  }
  // Destructor clears too.
  ASSERT_TRUE(FreeRun(&disk, &a).ok());
  ASSERT_TRUE(FreeRun(&disk, &b).ok());
  EXPECT_EQ(disk.live_pages(), baseline);
}

TEST(OperandCacheTest, ConcurrentHitsInsertsAndClears) {
  SimDisk disk(256);
  OperandCache cache(&disk, /*capacity_pages=*/32);

  std::vector<EntryList> lists;
  std::vector<std::vector<std::string>> contents;
  for (int i = 0; i < 6; ++i) {
    lists.push_back(MakeList(&disk, 40, "k" + std::to_string(i)));
    contents.push_back(ReadAll(&disk, lists.back()));
  }

  // Hammer the cache from several threads: lookups and inserts on
  // overlapping keys race with periodic Clear()s. Every hit must still
  // hand back an exact copy (pinned entries survive eviction).
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 60; ++round) {
        int i = (t + round) % static_cast<int>(lists.size());
        std::string key = "k" + std::to_string(i);
        EntryList out;
        Result<bool> hit = cache.Lookup(key, &out);
        ASSERT_TRUE(hit.ok()) << hit.status().ToString();
        if (*hit) {
          EXPECT_EQ(ReadAll(&disk, out), contents[static_cast<size_t>(i)]);
          ASSERT_TRUE(FreeRun(&disk, &out).ok());
        } else {
          ASSERT_TRUE(cache.Insert(key, lists[static_cast<size_t>(i)]).ok());
        }
        if (t == 0 && round % 20 == 19) cache.Clear();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  OperandCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4u * 60u);

  cache.Clear();
  size_t list_pages = 0;
  for (EntryList& l : lists) {
    list_pages += l.pages.size();
    ASSERT_TRUE(FreeRun(&disk, &l).ok());
  }
  EXPECT_GT(list_pages, 0u);
  EXPECT_EQ(disk.live_pages(), 0u);
}

TEST(OperandCacheTest, CopyOutFaultReclassifiesHitAsMiss) {
  SimDisk disk(256);
  OperandCache cache(&disk, /*capacity_pages=*/64);
  EntryList original = MakeList(&disk, 50, "a");
  ASSERT_TRUE(cache.Insert("a", original).ok());
  ASSERT_TRUE(FreeRun(&disk, &original).ok());

  // The first read of the copy-out fails; the cache must absorb it: the
  // lookup reports a miss (never a truncated list), the poisoned entry is
  // evicted, and nothing leaks.
  EntryList out = MakeList(&disk, 1, "sentinel");
  EntryList untouched = out;
  FaultInjector fi(
      {FaultInjector::FailNth(1, FaultOpBit(FaultOp::kRead))});
  disk.set_fault_injector(&fi);
  Result<bool> hit = cache.Lookup("a", &out);
  disk.set_fault_injector(nullptr);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_FALSE(*hit);
  EXPECT_EQ(out.pages, untouched.pages);  // output untouched on miss
  ASSERT_TRUE(FreeRun(&disk, &out).ok());

  OperandCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);  // reclassified
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.copy_failures, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident_entries, 0u);
  EXPECT_EQ(disk.live_pages(), 0u);

  // The key really is gone: the next lookup is an honest miss.
  Result<bool> again = cache.Lookup("a", &out);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
}

TEST(OperandCacheTest, CopyInFaultIsAbsorbedAndInsertsNothing) {
  SimDisk disk(256);
  OperandCache cache(&disk, /*capacity_pages=*/64);
  EntryList original = MakeList(&disk, 50, "a");
  size_t baseline = disk.live_pages();

  // The private copy's first allocation fails: Insert must swallow the
  // failure (caching is best-effort), insert nothing, and leak nothing.
  FaultInjector fi(
      {FaultInjector::FailNth(1, FaultOpBit(FaultOp::kAllocate))});
  disk.set_fault_injector(&fi);
  ASSERT_TRUE(cache.Insert("a", original).ok());
  disk.set_fault_injector(nullptr);

  OperandCacheStats stats = cache.stats();
  EXPECT_EQ(stats.copy_failures, 1u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.resident_entries, 0u);
  EXPECT_EQ(disk.live_pages(), baseline);

  EntryList out;
  Result<bool> hit = cache.Lookup("a", &out);
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(*hit);
  ASSERT_TRUE(FreeRun(&disk, &original).ok());
  EXPECT_EQ(disk.live_pages(), 0u);
}

TEST(OperandCacheTest, ConcurrentCopyOutFaultsNeverDoubleFree) {
  SimDisk disk(256);
  OperandCache cache(&disk, /*capacity_pages=*/64);
  EntryList original = MakeList(&disk, 50, "a");
  ASSERT_TRUE(cache.Insert("a", original).ok());
  ASSERT_TRUE(FreeRun(&disk, &original).ok());

  // Every copy-out fails while several threads hold pins on the same
  // entry: the first failure dooms + evicts it, the laggards must not
  // free it a second time (the eviction path empties the run so the
  // doomed-path free is a no-op). ASan/TSan are the real judges here;
  // the page ledger is the in-tree check.
  FaultInjector fi(
      {FaultInjector::FailEveryKth(1, FaultOpBit(FaultOp::kRead))});
  disk.set_fault_injector(&fi);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      EntryList out;
      Result<bool> hit = cache.Lookup("a", &out);
      ASSERT_TRUE(hit.ok()) << hit.status().ToString();
      EXPECT_FALSE(*hit);
    });
  }
  for (std::thread& t : threads) t.join();
  disk.set_fault_injector(nullptr);

  OperandCacheStats stats = cache.stats();
  EXPECT_GE(stats.copy_failures, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.resident_entries, 0u);
  EXPECT_EQ(disk.live_pages(), 0u);
}

// Regression (fuzzer corpus `cache-collision`): the display label renders
// int equality and string equality on "5" identically ("x=5"), True and
// Presence(objectClass) identically ("objectClass=*"), and an
// atomic-vs-LDAP leaf pair from a rewrite identically — the typed key
// must separate all of them, while still sharing genuinely equal leaves.
// The guard promised by OperandCacheStats::copy_failures: with async
// prefetch attached, a read fault still surfaces on the COPYING thread
// (at Disk::FinishAsyncRead, consumption time), so the absorbed failure
// is counted exactly as in the synchronous case.
TEST(OperandCacheTest, OperandCacheAsyncCopyFailure) {
  SimDisk disk(256);
  disk.SetIoDepth(2);
  OperandCache cache(&disk, /*capacity_pages=*/64);
  EntryList original = MakeList(&disk, 50, "a");
  ASSERT_TRUE(cache.Insert("a", original).ok());
  ASSERT_TRUE(FreeRun(&disk, &original).ok());

  FaultInjector fi(
      {FaultInjector::FailNth(1, FaultOpBit(FaultOp::kRead))});
  disk.set_fault_injector(&fi);
  EntryList out;
  Result<bool> hit = cache.Lookup("a", &out);
  disk.set_fault_injector(nullptr);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_FALSE(*hit);  // absorbed as a miss, same as synchronously
  EXPECT_EQ(fi.faults_fired(), 1u);

  OperandCacheStats stats = cache.stats();
  EXPECT_EQ(stats.copy_failures, 1u)
      << "async completion fault bypassed copy_failures accounting";
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident_entries, 0u);
  EXPECT_EQ(disk.live_pages(), 0u);
  disk.SetIoDepth(0);
}

TEST(OperandCacheKeyTest, DistinguishesAmbiguouslyLabeledLeaves) {
  Dn base = Dn::Parse("dc=com").TakeValue();
  QueryPtr int_eq = Query::Atomic(base, Scope::kSub,
                                  AtomicFilter::Equals("x", Value::Int(5)));
  QueryPtr str_eq = Query::Atomic(
      base, Scope::kSub, AtomicFilter::Equals("x", Value::String("5")));
  QueryPtr int_cmp = Query::Atomic(
      base, Scope::kSub,
      AtomicFilter::IntCompare("x", CompareOp::kEq, 5));
  EXPECT_NE(OperandCacheKey(*int_eq), OperandCacheKey(*str_eq));
  EXPECT_NE(OperandCacheKey(*int_cmp), OperandCacheKey(*str_eq));

  QueryPtr all = Query::Atomic(base, Scope::kSub, AtomicFilter::True());
  QueryPtr oc_presence = Query::Atomic(
      base, Scope::kSub, AtomicFilter::Presence("objectClass"));
  EXPECT_NE(OperandCacheKey(*all), OperandCacheKey(*oc_presence));

  // Scope and base are evaluation-relevant and must be in the key.
  QueryPtr one = Query::Atomic(base, Scope::kOne, AtomicFilter::True());
  EXPECT_NE(OperandCacheKey(*all), OperandCacheKey(*one));
  Dn other = Dn::Parse("dc=org").TakeValue();
  QueryPtr elsewhere =
      Query::Atomic(other, Scope::kSub, AtomicFilter::True());
  EXPECT_NE(OperandCacheKey(*all), OperandCacheKey(*elsewhere));

  // A rewritten plan may replace an atomic leaf by an LDAP leaf; the two
  // kinds never alias, whatever their filters.
  QueryPtr ldap = Query::Ldap(base, Scope::kSub,
                              LdapFilter::Atomic(AtomicFilter::True()));
  EXPECT_NE(OperandCacheKey(*all), OperandCacheKey(*ldap));

  // Structurally equal leaves DO share — that is the point of the cache.
  QueryPtr again = Query::Atomic(base, Scope::kSub,
                                 AtomicFilter::Equals("x", Value::Int(5)));
  EXPECT_EQ(OperandCacheKey(*int_eq), OperandCacheKey(*again));
}

TEST(OperandCacheTest, TypedKeysPreventStaleServingAcrossFilterTypes) {
  // Two leaves whose labels collide but whose answers differ: with the
  // old label keys, whichever ran first would be served for both.
  DirectoryInstance inst{Schema(), false};
  Entry root(Dn::Parse("dc=com").TakeValue());
  Entry str_entry(Dn::Parse("cn=s, dc=com").TakeValue());
  str_entry.AddString("x", "5");
  Entry int_entry(Dn::Parse("cn=i, dc=com").TakeValue());
  int_entry.AddInt("x", 5);
  ASSERT_TRUE(inst.Add(root).ok());
  ASSERT_TRUE(inst.Add(str_entry).ok());
  ASSERT_TRUE(inst.Add(int_entry).ok());

  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  OperandCache cache(&disk, /*capacity_pages=*/64);
  ParallelEvaluator eval(&disk, &store, ExecOptions{}, &cache);

  Dn base = Dn::Parse("dc=com").TakeValue();
  QueryPtr str_q = Query::Atomic(
      base, Scope::kSub, AtomicFilter::Equals("x", Value::String("5")));
  QueryPtr int_q = Query::Atomic(
      base, Scope::kSub,
      AtomicFilter::IntCompare("x", CompareOp::kEq, 5));

  Result<std::vector<Entry>> got_str = eval.EvaluateToEntries(*str_q);
  ASSERT_TRUE(got_str.ok()) << got_str.status().ToString();
  ASSERT_EQ(got_str->size(), 1u);
  EXPECT_EQ((*got_str)[0], str_entry);

  // Same label, different filter type: must MISS and recompute.
  Result<std::vector<Entry>> got_int = eval.EvaluateToEntries(*int_q);
  ASSERT_TRUE(got_int.ok()) << got_int.status().ToString();
  ASSERT_EQ(got_int->size(), 1u);
  EXPECT_EQ((*got_int)[0], int_entry);

  OperandCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 2u);
}

}  // namespace
}  // namespace ndq
