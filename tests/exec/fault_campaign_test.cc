// The tentpole fault campaign (ISSUE 3, part 4): sweep "fail I/O op #k"
// for EVERY k over a reference query mix spanning L0–L3 (atomic scopes,
// booleans, hierarchy operators, aggregation, embedded references, LDAP
// baseline) on the paper instance, and assert for each k that the
// evaluator either absorbs the fault (identical results) or fails with a
// clean Unavailable — never crashing, never leaking a page, and always
// recovering byte-identically on retry. Runs against the sequential
// Evaluator, the ParallelEvaluator with an OperandCache, and a separate
// free-fault sweep (where stranded pages are the expected outcome and
// only clean Status + clean recovery are required).

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "exec/operand_cache.h"
#include "exec/parallel_evaluator.h"
#include "query/parser.h"
#include "testing/fault_campaign.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

// Reference mix, one query per language level / operator family. Kept
// small so the exhaustive per-op sweep stays fast: the sweep re-evaluates
// the whole mix once (sometimes twice) per eligible device operation.
const char* kCampaignQueries[] = {
    // L0: atomic, each scope.
    "(dc=att, dc=com ? sub ? surName=jagadish)",
    "(dc=research, dc=att, dc=com ? one ? objectClass=*)",
    // L1: booleans.
    "(& (dc=com ? sub ? objectClass=dcObject) (dc=att, dc=com ? sub ? "
    "objectClass=*))",
    "(- (dc=att, dc=com ? sub ? surName=jagadish)"
    "   (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
    // L2: hierarchy.
    "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)"
    "   (dc=att, dc=com ? sub ? surName=jagadish))",
    "(dc (dc=att, dc=com ? sub ? objectClass=dcObject)"
    "    (& (dc=att, dc=com ? sub ? sourcePort=25)"
    "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
    "    (dc=att, dc=com ? sub ? objectClass=dcObject))",
    // L3: aggregation + embedded references.
    "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
    "   count(SLAPVPRef) > 1)",
    "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
    "    (& (dc=att, dc=com ? sub ? sourcePort=25)"
    "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
    "    SLATPRef)",
    // LDAP baseline.
    "(ldap dc=com ? sub ? (&(objectClass=QHP)(!(priority>1))))",
};

std::vector<QueryPtr> ParseMix() {
  std::vector<QueryPtr> mix;
  for (const char* text : kCampaignQueries) {
    Result<QueryPtr> q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
    if (q.ok()) mix.push_back(q.TakeValue());
  }
  return mix;
}

// Evaluates the whole mix, concatenating results; the first error aborts
// the run (exactly what a client driving these queries would see).
template <typename Eval>
Result<std::vector<Entry>> EvaluateMix(Eval& evaluator,
                                       const std::vector<QueryPtr>& mix) {
  std::vector<Entry> all;
  for (const QueryPtr& q : mix) {
    Result<std::vector<Entry>> one = evaluator.EvaluateToEntries(*q);
    if (!one.ok()) return one.status();
    all.insert(all.end(), one->begin(), one->end());
  }
  return all;
}

TEST(FaultCampaignTest, SequentialEvaluatorSurvivesEveryFault) {
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  Evaluator evaluator(&disk, &store);
  std::vector<QueryPtr> mix = ParseMix();
  ASSERT_FALSE(mix.empty());

  testing::FaultCampaignReport report;
  testing::RunFaultCampaign(
      &disk, [&] { return EvaluateMix(evaluator, mix); },
      /*after_run=*/nullptr, testing::FaultCampaignOptions(), &report);
  // The sweep must actually have exercised faults: every k but the final
  // exhaustion probe fires one.
  EXPECT_GT(report.ks_tested, 1u);
  EXPECT_EQ(report.clean_failures + report.absorbed_successes,
            report.ks_tested - 1);
  EXPECT_GT(report.clean_failures, 0u);
}

TEST(FaultCampaignTest, ParallelEvaluatorWithCacheSurvivesEveryFault) {
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  ExecOptions options;
  options.parallelism = 3;
  OperandCache cache(&disk, /*capacity_pages=*/4096);
  ParallelEvaluator evaluator(&disk, &store, options, &cache);
  std::vector<QueryPtr> mix = ParseMix();
  ASSERT_FALSE(mix.empty());

  testing::FaultCampaignReport report;
  testing::RunFaultCampaign(
      &disk, [&] { return EvaluateMix(evaluator, mix); },
      // Cached operand runs are live pages; drop them so the leak
      // baseline compares equal across runs.
      /*after_run=*/[&] { cache.Clear(); },
      testing::FaultCampaignOptions(), &report);
  EXPECT_GT(report.ks_tested, 1u);
  EXPECT_GT(report.clean_failures + report.absorbed_successes, 0u);
}

// The async variant of the sweep: with an io-depth attached, every read
// the workload consumes arrives through the prefetch queue, so the k-th
// read fault fires at the k-th ASYNC COMPLETION (consumption time). The
// deferred-accounting contract (Disk::FinishAsyncRead) makes that op
// stream identical to the synchronous sweep's, so the same exhaustive
// guarantees must hold: absorb or fail cleanly, never leak, always
// recover byte-identically.
TEST(FaultCampaignTest, AsyncCompletionsSurviveEveryFault) {
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  Evaluator evaluator(&disk, &store);
  std::vector<QueryPtr> mix = ParseMix();
  ASSERT_FALSE(mix.empty());

  // Reference sweep, synchronous reads.
  testing::FaultCampaignReport sync_report;
  testing::RunFaultCampaign(
      &disk, [&] { return EvaluateMix(evaluator, mix); },
      /*after_run=*/nullptr, testing::FaultCampaignOptions(), &sync_report);
  EXPECT_GT(sync_report.ks_tested, 1u);

  disk.SetIoDepth(4);
  testing::FaultCampaignReport report;
  testing::RunFaultCampaign(
      &disk, [&] { return EvaluateMix(evaluator, mix); },
      /*after_run=*/nullptr, testing::FaultCampaignOptions(), &report);
  EXPECT_EQ(report.clean_failures + report.absorbed_successes,
            report.ks_tested - 1);
  EXPECT_GT(report.clean_failures, 0u);
  // Deferred accounting makes the async op stream identical to the sync
  // one, so both sweeps self-terminate after the same number of probes
  // with the same absorb/fail split.
  EXPECT_EQ(report.ks_tested, sync_report.ks_tested);
  EXPECT_EQ(report.clean_failures, sync_report.clean_failures);
  EXPECT_EQ(report.absorbed_successes, sync_report.absorbed_successes);
  disk.SetIoDepth(0);
}

TEST(FaultCampaignTest, FreeFaultsFailCleanlyAndRecover) {
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  Evaluator evaluator(&disk, &store);
  std::vector<QueryPtr> mix = ParseMix();
  ASSERT_FALSE(mix.empty());

  // A failed Free strands the page by definition, so the leak check is
  // off; what must hold is a clean Status (or absorbed success) and a
  // byte-identical retry — the store itself is never corrupted.
  testing::FaultCampaignOptions options;
  options.ops = FaultOpBit(FaultOp::kFree);
  options.check_leaks = false;
  testing::FaultCampaignReport report;
  testing::RunFaultCampaign(
      &disk, [&] { return EvaluateMix(evaluator, mix); },
      /*after_run=*/nullptr, options, &report);
  EXPECT_GT(report.ks_tested, 1u);
}

}  // namespace
}  // namespace ndq
