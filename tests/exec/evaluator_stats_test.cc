#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "query/parser.h"
#include "query/reference.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

TEST(EvaluatorStatsTest, CountsOperatorsAtomicsAndL) {
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk;
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  Evaluator evaluator(&disk, &store);
  // |Q| = 6 nodes, 4 atomic leaves (Example 5.3 shape).
  QueryPtr q = ParseQuery(
                   "(dc (dc=att, dc=com ? sub ? objectClass=dcObject)"
                   "    (& (dc=att, dc=com ? sub ? sourcePort=25)"
                   "       (dc=att, dc=com ? sub ? "
                   "objectClass=trafficProfile))"
                   "    (dc=att, dc=com ? sub ? objectClass=dcObject))")
                   .TakeValue();
  ASSERT_TRUE(evaluator.EvaluateToEntries(*q).ok());
  const EvalStats& stats = evaluator.stats();
  EXPECT_EQ(stats.operators_evaluated, q->NodeCount());
  EXPECT_EQ(stats.atomic_queries, 4u);
  // |L| of Theorem 8.3 = cumulative atomic outputs: verify against the
  // oracle leaf by leaf.
  uint64_t expected_l = 0;
  for (const Query* leaf : q->Leaves()) {
    expected_l += EvaluateReference(*leaf, inst).TakeValue().size();
  }
  EXPECT_EQ(stats.atomic_output_records, expected_l);

  // Stats accumulate across queries and reset on demand.
  ASSERT_TRUE(evaluator.EvaluateToEntries(*q).ok());
  EXPECT_EQ(evaluator.stats().atomic_queries, 8u);
  evaluator.ResetStats();
  EXPECT_EQ(evaluator.stats().operators_evaluated, 0u);
}

}  // namespace
}  // namespace ndq
