// GTest helpers over exec/trace.h's theorem checker: assert that a traced
// execution stayed within the paper's per-operator I/O bounds and that the
// measured cardinalities respect the cost model's upper bounds. Shared by
// explain_analyze_test.cc and usable from bench/ smoke checks.

#ifndef NDQ_TESTS_EXEC_THEOREM_CHECK_H_
#define NDQ_TESTS_EXEC_THEOREM_CHECK_H_

#include <gtest/gtest.h>

#include "exec/cost.h"
#include "exec/trace.h"

namespace ndq {
namespace testing {

/// Fails (non-fatally, once per violation) if any operator in `trace`
/// exceeded its theorem bound.
inline void ExpectWithinTheoremBounds(const OpTrace& trace) {
  for (const std::string& v : VerifyTheoremBounds(trace)) {
    ADD_FAILURE() << "theorem bound violated: " << v;
  }
}

/// Walks `query` and `trace` in lockstep (children in q1/q2/q3 order, the
/// order the evaluator records them) and checks that every node's measured
/// output cardinality is at most the cost model's upper bound for the same
/// subtree.
inline void ExpectCardinalityWithinEstimate(const EntrySource& store,
                                            const Query& query,
                                            const OpTrace& trace) {
  CostEstimate est = EstimateCost(store, query);
  EXPECT_LE(static_cast<double>(trace.output_records),
            est.output_records + 0.5)
      << "node: " << trace.label;
  const Query* operands[] = {query.q1().get(), query.q2().get(),
                             query.q3().get()};
  size_t child = 0;
  for (const Query* q : operands) {
    if (q == nullptr) continue;
    ASSERT_LT(child, trace.children.size())
        << "trace missing operand " << child << " of " << trace.label;
    ExpectCardinalityWithinEstimate(store, *q, trace.children[child]);
    ++child;
  }
}

/// Checks the tree's I/O accounting is internally consistent: every
/// child's cumulative delta nests inside its parent's, and the sum of
/// node-exclusive deltas telescopes back to the root total.
inline uint64_t SumSelfTransfers(const OpTrace& trace) {
  uint64_t total = trace.SelfTransfers();
  for (const OpTrace& c : trace.children) total += SumSelfTransfers(c);
  return total;
}

inline void ExpectIoAccountingConsistent(const OpTrace& trace) {
  uint64_t children = 0;
  for (const OpTrace& c : trace.children) {
    children += c.io.TotalTransfers();
    ExpectIoAccountingConsistent(c);
  }
  EXPECT_LE(children, trace.io.TotalTransfers())
      << "children transfers exceed parent's cumulative delta at "
      << trace.label;
  EXPECT_EQ(SumSelfTransfers(trace), trace.io.TotalTransfers())
      << "self deltas do not telescope to the subtree total at "
      << trace.label;
}

}  // namespace testing
}  // namespace ndq

#endif  // NDQ_TESTS_EXEC_THEOREM_CHECK_H_
