// End-to-end integration: the evaluation engine over the MUTABLE store
// (memtable + segments + tombstones) agrees with the reference evaluator
// over an equivalent in-memory instance, across update/flush/compaction
// states — queries see exactly the live data, in order.

#include <random>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "gen/random_forest.h"
#include "gen/random_query.h"
#include "query/reference.h"
#include "store/directory_store.h"

namespace ndq {
namespace {

class LsmOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(LsmOracleTest, QueriesOverMutatedStoreMatchOracle) {
  std::mt19937 rng(GetParam());
  gen::RandomForestOptions fopt;
  fopt.seed = static_cast<uint32_t>(GetParam());
  fopt.num_entries = 200;
  DirectoryInstance full = gen::RandomForest(fopt);

  // Build the store from the full instance, then delete a random set of
  // leaves and mutate some attribute values; mirror everything in a model
  // instance.
  SimDisk disk(512);
  DirectoryStoreOptions opt;
  opt.memtable_limit = 32;  // force segment churn
  opt.max_segments = 3;
  opt.validate = false;
  DirectoryStore store(&disk, Schema(), opt);
  DirectoryInstance model(Schema(), false);
  for (const auto& [key, entry] : full) {
    (void)key;
    ASSERT_TRUE(store.Add(entry).ok());
    ASSERT_TRUE(model.Add(entry).ok());
  }

  // Random mutations.
  std::vector<std::string> keys;
  for (const auto& [key, entry] : full) {
    (void)entry;
    keys.push_back(key);
  }
  int deleted = 0, updated = 0;
  for (int i = 0; i < 120; ++i) {
    const std::string& key = keys[rng() % keys.size()];
    const Entry* cur = model.FindByKey(key);
    if (cur == nullptr) continue;
    if (rng() % 2 == 0) {
      // Try to delete (only leaves succeed; both sides agree on that).
      Dn dn = cur->dn();
      Status s1 = store.Remove(dn);
      Status s2 = model.Remove(dn);
      ASSERT_EQ(s1.ok(), s2.ok()) << dn.ToString();
      if (s1.ok()) ++deleted;
    } else {
      Entry e = *cur;
      e.RemoveAttribute("x");
      e.AddInt("x", static_cast<int64_t>(rng() % 20));
      ASSERT_TRUE(store.Put(e).ok());
      ASSERT_TRUE(model.Put(e).ok());
      ++updated;
    }
    if (i == 60) {
      ASSERT_TRUE(store.Flush().ok());
    }
    if (i == 90) {
      ASSERT_TRUE(store.Compact().ok());
    }
  }
  ASSERT_GT(deleted, 0);
  ASSERT_GT(updated, 0);
  ASSERT_EQ(store.num_entries(), model.size());

  // Now fire random queries at the mutated store.
  SimDisk scratch(512);
  Evaluator evaluator(&scratch, &store);
  gen::RandomQueryOptions qopt;
  qopt.max_language = Language::kL3;
  for (int i = 0; i < 30; ++i) {
    QueryPtr q = gen::RandomQuery(&rng, model, qopt);
    SCOPED_TRACE(q->ToString());
    Result<std::vector<Entry>> exec_r = evaluator.EvaluateToEntries(*q);
    Result<std::vector<const Entry*>> ref_r = EvaluateReference(*q, model);
    ASSERT_EQ(exec_r.ok(), ref_r.ok());
    if (!exec_r.ok()) continue;
    ASSERT_EQ(exec_r->size(), ref_r->size());
    for (size_t j = 0; j < exec_r->size(); ++j) {
      EXPECT_EQ((*exec_r)[j], *(*ref_r)[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmOracleTest, ::testing::Values(3, 8, 13));

}  // namespace
}  // namespace ndq
