// Three-way cross-check of aggregate (L2) selection semantics: for every
// hierarchy / embedded-reference operator and a sweep of aggregate
// selection filters, the quadratic naive baseline, the stack/merge
// algorithms, and the in-memory reference semantics must produce the same
// entries in the same (reverse-DN) order. This is the full-language oracle
// the differential fuzzer (ndqfuzz) leans on; the aggregate accumulator
// wire format gets its round-trip check here too.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/embedded_ref.h"
#include "exec/hierarchy.h"
#include "exec/naive.h"
#include "gen/random_forest.h"
#include "query/reference.h"
#include "storage/serde.h"

namespace ndq {
namespace {

QueryPtr ClassLeaf(int klass) {
  return Query::Atomic(
      Dn(), Scope::kSub,
      AtomicFilter::Equals("objectClass",
                           Value::String("class" + std::to_string(klass))));
}

AggSelFilter Agg(const std::string& text) {
  Result<AggSelFilter> r = ParseAggSelFilter(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.TakeValue();
}

// Reads `list` back and checks it matches the reference result exactly.
void ExpectSameEntries(SimDisk* disk, const EntryList& list,
                       const std::vector<const Entry*>& want,
                       const std::string& what) {
  Result<std::vector<Entry>> got = ReadEntryList(disk, list);
  ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();
  ASSERT_EQ(got->size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ((*got)[i], *want[i]) << what << " at index " << i;
  }
}

class NaiveAggregateTest : public ::testing::TestWithParam<int> {};

TEST_P(NaiveAggregateTest, HierarchyThreeWayAgreement) {
  gen::RandomForestOptions opt;
  opt.seed = static_cast<uint32_t>(GetParam());
  opt.num_entries = 120;
  DirectoryInstance inst = gen::RandomForest(opt);

  QueryPtr q1 = ClassLeaf(0), q2 = ClassLeaf(1), q3 = ClassLeaf(2);
  SimDisk disk(1024);
  std::vector<const Entry*> m1 =
      EvaluateReference(*q1, inst).TakeValue();
  std::vector<const Entry*> m2 =
      EvaluateReference(*q2, inst).TakeValue();
  std::vector<const Entry*> m3 =
      EvaluateReference(*q3, inst).TakeValue();
  EntryList l1 = MakeEntryList(&disk, m1).TakeValue();
  EntryList l2 = MakeEntryList(&disk, m2).TakeValue();
  EntryList l3 = MakeEntryList(&disk, m3).TakeValue();

  const QueryOp ops[] = {QueryOp::kParents,       QueryOp::kChildren,
                         QueryOp::kAncestors,     QueryOp::kDescendants,
                         QueryOp::kCoAncestors,   QueryOp::kCoDescendants};
  const char* aggs[] = {
      "count($2)>0",   // existential as the aggregate special case
      "count($2)=0",   // keeps entries with EMPTY witness sets
      "count($2)>1",
      "sum($2.x)>=10",
      "average($2.x)<=9",
      "min(x)<=max($2.x)",           // self-attr vs witness-attr
      "count($2)=max(count($2))",    // entry-set aggregate (two-phase)
      "min(x)=min(min(x))",
      "count($1)!=0",
      "sum($2.x)!=sum(x)",
  };
  for (QueryOp op : ops) {
    const bool constrained =
        op == QueryOp::kCoAncestors || op == QueryOp::kCoDescendants;
    for (const char* agg_text : aggs) {
      SCOPED_TRACE(std::string(QueryOpToString(op)) + " " + agg_text);
      std::optional<AggSelFilter> agg = Agg(agg_text);
      QueryPtr full =
          constrained
              ? Query::HierarchyConstrained(op, q1, q2, q3, agg)
              : Query::Hierarchy(op, q1, q2, agg);
      std::vector<const Entry*> want =
          EvaluateReference(*full, inst).TakeValue();

      Result<EntryList> exec = EvalHierarchy(
          &disk, op, l1, l2, constrained ? &l3 : nullptr, agg);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      ExpectSameEntries(&disk, *exec, want, "stack");
      ASSERT_TRUE(FreeRun(&disk, &*exec).ok());

      Result<EntryList> naive = NaiveHierarchy(
          &disk, op, l1, l2, constrained ? &l3 : nullptr, agg);
      ASSERT_TRUE(naive.ok()) << naive.status().ToString();
      ExpectSameEntries(&disk, *naive, want, "naive");
      ASSERT_TRUE(FreeRun(&disk, &*naive).ok());
    }
  }
}

TEST_P(NaiveAggregateTest, EmbeddedRefThreeWayAgreement) {
  gen::RandomForestOptions opt;
  opt.seed = static_cast<uint32_t>(GetParam()) + 100;
  opt.num_entries = 100;
  DirectoryInstance inst = gen::RandomForest(opt);

  QueryPtr q1 = ClassLeaf(0), q2 = ClassLeaf(1);
  SimDisk disk(1024);
  std::vector<const Entry*> m1 =
      EvaluateReference(*q1, inst).TakeValue();
  std::vector<const Entry*> m2 =
      EvaluateReference(*q2, inst).TakeValue();
  EntryList l1 = MakeEntryList(&disk, m1).TakeValue();
  EntryList l2 = MakeEntryList(&disk, m2).TakeValue();

  const char* aggs[] = {
      "count($2)>0", "count($2)=0", "count($2)>=2", "sum($2.x)>3",
      "count($2)=max(count($2))", "min($2.x)=min(min($2.x))",
      "count($$)>5",
  };
  for (QueryOp op : {QueryOp::kValueDn, QueryOp::kDnValue}) {
    for (const char* agg_text : aggs) {
      SCOPED_TRACE(std::string(QueryOpToString(op)) + " " + agg_text);
      std::optional<AggSelFilter> agg = Agg(agg_text);
      QueryPtr full = Query::EmbeddedRef(op, q1, q2, "ref", agg);
      std::vector<const Entry*> want =
          EvaluateReference(*full, inst).TakeValue();

      Result<EntryList> exec = EvalEmbeddedRef(&disk, op, l1, l2, "ref", agg);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      ExpectSameEntries(&disk, *exec, want, "merge");
      ASSERT_TRUE(FreeRun(&disk, &*exec).ok());

      Result<EntryList> naive =
          NaiveEmbeddedRef(&disk, op, l1, l2, "ref", agg);
      ASSERT_TRUE(naive.ok()) << naive.status().ToString();
      ExpectSameEntries(&disk, *naive, want, "naive");
      ASSERT_TRUE(FreeRun(&disk, &*naive).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveAggregateTest,
                         ::testing::Values(1, 2, 3));

// The aggregate-with-count($2)>0 path and the pure existential path are
// the same function (Sec. 6.2); keep them pinned together on the naive
// side too.
TEST(NaiveAggregateTest, ExistentialEqualsCountPositive) {
  gen::RandomForestOptions opt;
  opt.seed = 9;
  opt.num_entries = 80;
  DirectoryInstance inst = gen::RandomForest(opt);
  QueryPtr q1 = ClassLeaf(0), q2 = ClassLeaf(1);
  SimDisk disk(1024);
  EntryList l1 =
      MakeEntryList(&disk, EvaluateReference(*q1, inst).TakeValue())
          .TakeValue();
  EntryList l2 =
      MakeEntryList(&disk, EvaluateReference(*q2, inst).TakeValue())
          .TakeValue();
  for (QueryOp op : {QueryOp::kAncestors, QueryOp::kChildren}) {
    EntryList plain =
        NaiveHierarchy(&disk, op, l1, l2, nullptr).TakeValue();
    EntryList agg =
        NaiveHierarchy(&disk, op, l1, l2, nullptr, Agg("count($2)>0"))
            .TakeValue();
    std::vector<Entry> a = ReadEntryList(&disk, plain).TakeValue();
    std::vector<Entry> b = ReadEntryList(&disk, agg).TakeValue();
    EXPECT_EQ(a, b);
    ASSERT_TRUE(FreeRun(&disk, &plain).ok());
    ASSERT_TRUE(FreeRun(&disk, &agg).ok());
  }
}

// Regression: the serialized accumulator must carry the full 128-bit sum
// (spillable stacks and distributed merges ship accumulators between
// phases; truncating the sum would silently re-introduce the overflow).
TEST(AccWireFormatTest, RoundTripsExtremeSums) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  AggAccumulator acc(AggFn::kSum);
  acc.AddValue(Value::Int(kMax));
  acc.AddValue(Value::Int(kMax));
  acc.AddValue(Value::String("not an int"));
  ASSERT_FALSE(acc.Finish().has_value());  // sum exceeds int64

  std::string wire;
  SerializeAcc(acc, &wire);
  ByteReader reader(wire);
  Result<AggAccumulator> back = DeserializeAcc(&reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(back->sum, acc.sum);
  EXPECT_EQ(back->count, acc.count);
  EXPECT_EQ(back->int_count, acc.int_count);
  EXPECT_EQ(back->any_int, acc.any_int);
  EXPECT_EQ(back->overflow, acc.overflow);
  EXPECT_EQ(back->Finish(), acc.Finish());

  // Adding the most negative value brings the true sum back in range:
  // only a full-width wire format preserves that.
  back->AddValue(Value::Int(std::numeric_limits<int64_t>::min()));
  EXPECT_EQ(back->Finish().value(), kMax - 1);

  // Negative sums round-trip too (the high half is the sign extension).
  AggAccumulator neg(AggFn::kSum);
  neg.AddInt(std::numeric_limits<int64_t>::min());
  neg.AddInt(-1);
  std::string neg_wire;
  SerializeAcc(neg, &neg_wire);
  ByteReader neg_reader(neg_wire);
  Result<AggAccumulator> neg_back = DeserializeAcc(&neg_reader);
  ASSERT_TRUE(neg_back.ok());
  EXPECT_EQ(neg_back->sum, neg.sum);
  EXPECT_FALSE(neg_back->Finish().has_value());
}

}  // namespace
}  // namespace ndq
