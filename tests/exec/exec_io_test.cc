// I/O-complexity checks at the operator level: the number of page
// transfers per operator must scale linearly with input pages (Theorems
// 5.1, 6.1, 6.2), with the naive baselines quadratic; the embedded
// reference operators sort (Theorem 7.1).

#include <gtest/gtest.h>

#include "exec/boolean.h"
#include "exec/evaluator.h"
#include "exec/hierarchy.h"
#include "exec/embedded_ref.h"
#include "exec/naive.h"
#include "gen/random_forest.h"

namespace ndq {
namespace {

struct Lists {
  SimDisk disk{4096};
  DirectoryInstance inst{Schema(), false};
  EntryList l1, l2;

  explicit Lists(size_t n, uint32_t seed = 7) {
    gen::RandomForestOptions opt;
    opt.seed = seed;
    opt.num_entries = n;
    inst = gen::RandomForest(opt);
    std::vector<const Entry*> c0, c1;
    for (const auto& [key, entry] : inst) {
      (void)key;
      if (entry.HasClass("class0")) c0.push_back(&entry);
      if (entry.HasClass("class1") || entry.HasClass("class0")) {
        c1.push_back(&entry);
      }
    }
    l1 = MakeEntryList(&disk, c0).TakeValue();
    l2 = MakeEntryList(&disk, c1).TakeValue();
  }

  uint64_t InputPages() const { return l1.pages.size() + l2.pages.size(); }
};

// Measures operator I/O for input size n.
template <typename Fn>
uint64_t MeasureIo(Lists* lists, const Fn& fn) {
  uint64_t before = lists->disk.stats().TotalTransfers();
  fn(lists);
  return lists->disk.stats().TotalTransfers() - before;
}

TEST(ExecIoTest, BooleanIsLinear) {
  // I/O at 4x the input size must stay within ~5x of the I/O at 1x
  // (linear growth; allow slack for page rounding).
  auto run = [](Lists* l) {
    EntryList out =
        EvalBoolean(&l->disk, QueryOp::kAnd, l->l1, l->l2).TakeValue();
    ASSERT_TRUE(FreeRun(&l->disk, &out).ok());
  };
  Lists small(2000), big(8000);
  uint64_t io_small = MeasureIo(&small, run);
  uint64_t io_big = MeasureIo(&big, run);
  EXPECT_LE(io_big, 5 * io_small + 16);
  // And the absolute count is a small multiple of the input pages.
  EXPECT_LE(io_big, 4 * big.InputPages() + 16);
}

TEST(ExecIoTest, HierarchyForwardIsLinear) {
  auto run = [](Lists* l) {
    EntryList out = EvalHierarchy(&l->disk, QueryOp::kAncestors, l->l1,
                                  l->l2, nullptr, std::nullopt)
                        .TakeValue();
    ASSERT_TRUE(FreeRun(&l->disk, &out).ok());
  };
  Lists small(2000), big(8000);
  uint64_t io_small = MeasureIo(&small, run);
  uint64_t io_big = MeasureIo(&big, run);
  EXPECT_LE(io_big, 5 * io_small + 16);
}

TEST(ExecIoTest, HierarchyBackwardIsLinear) {
  // The descendant direction costs a constant number of extra scans
  // (merge + two reversals) but stays linear.
  auto run = [](Lists* l) {
    EntryList out = EvalHierarchy(&l->disk, QueryOp::kDescendants, l->l1,
                                  l->l2, nullptr, std::nullopt)
                        .TakeValue();
    ASSERT_TRUE(FreeRun(&l->disk, &out).ok());
  };
  Lists small(2000), big(8000);
  uint64_t io_small = MeasureIo(&small, run);
  uint64_t io_big = MeasureIo(&big, run);
  EXPECT_LE(io_big, 5 * io_small + 16);
  EXPECT_LE(io_big, 16 * big.InputPages() + 16);
}

TEST(ExecIoTest, NaiveHierarchyIsQuadratic) {
  // The witness-test baseline rescans L2 per L1 entry; its I/O must grow
  // far faster than the stack algorithm's.
  auto naive = [](Lists* l) {
    EntryList out =
        NaiveHierarchy(&l->disk, QueryOp::kAncestors, l->l1, l->l2, nullptr)
            .TakeValue();
    ASSERT_TRUE(FreeRun(&l->disk, &out).ok());
  };
  auto stack = [](Lists* l) {
    EntryList out = EvalHierarchy(&l->disk, QueryOp::kAncestors, l->l1,
                                  l->l2, nullptr, std::nullopt)
                        .TakeValue();
    ASSERT_TRUE(FreeRun(&l->disk, &out).ok());
  };
  Lists a(3000, 5), b(3000, 5);
  uint64_t io_naive = MeasureIo(&a, naive);
  uint64_t io_stack = MeasureIo(&b, stack);
  EXPECT_GT(io_naive, 10 * io_stack);

  // Quadratic growth: 3x input -> ~9x naive I/O.
  Lists c(9000, 5);
  uint64_t io_naive_big = MeasureIo(&c, naive);
  EXPECT_GT(io_naive_big, 5 * io_naive);
}

TEST(ExecIoTest, EmbeddedRefMatchesNaiveResultsCheaply) {
  Lists l(1500, 9);
  EntryList sorted =
      EvalEmbeddedRef(&l.disk, QueryOp::kValueDn, l.l1, l.l2, "ref",
                      std::nullopt)
          .TakeValue();
  EntryList naive =
      NaiveEmbeddedRef(&l.disk, QueryOp::kValueDn, l.l1, l.l2, "ref")
          .TakeValue();
  std::vector<Entry> a = ReadEntryList(&l.disk, sorted).TakeValue();
  std::vector<Entry> b = ReadEntryList(&l.disk, naive).TakeValue();
  EXPECT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  // dv direction too.
  EntryList sorted_dv =
      EvalEmbeddedRef(&l.disk, QueryOp::kDnValue, l.l1, l.l2, "ref",
                      std::nullopt)
          .TakeValue();
  EntryList naive_dv =
      NaiveEmbeddedRef(&l.disk, QueryOp::kDnValue, l.l1, l.l2, "ref")
          .TakeValue();
  EXPECT_EQ(ReadEntryList(&l.disk, sorted_dv).TakeValue(),
            ReadEntryList(&l.disk, naive_dv).TakeValue());
}

TEST(ExecIoTest, NaiveHierarchyMatchesStackResults) {
  for (QueryOp op : {QueryOp::kParents, QueryOp::kChildren,
                     QueryOp::kAncestors, QueryOp::kDescendants}) {
    Lists l(800, 13);
    EntryList fast =
        EvalHierarchy(&l.disk, op, l.l1, l.l2, nullptr, std::nullopt)
            .TakeValue();
    EntryList slow = NaiveHierarchy(&l.disk, op, l.l1, l.l2, nullptr)
                         .TakeValue();
    EXPECT_EQ(ReadEntryList(&l.disk, fast).TakeValue(),
              ReadEntryList(&l.disk, slow).TakeValue())
        << QueryOpToString(op);
  }
  // Constrained ops against naive too.
  Lists l(400, 17);
  EntryList l3 = [&] {
    std::vector<const Entry*> c2;
    for (const auto& [key, entry] : l.inst) {
      (void)key;
      if (entry.HasClass("class2")) c2.push_back(&entry);
    }
    return MakeEntryList(&l.disk, c2).TakeValue();
  }();
  for (QueryOp op : {QueryOp::kCoAncestors, QueryOp::kCoDescendants}) {
    EntryList fast =
        EvalHierarchy(&l.disk, op, l.l1, l.l2, &l3, std::nullopt)
            .TakeValue();
    EntryList slow =
        NaiveHierarchy(&l.disk, op, l.l1, l.l2, &l3).TakeValue();
    EXPECT_EQ(ReadEntryList(&l.disk, fast).TakeValue(),
              ReadEntryList(&l.disk, slow).TakeValue())
        << QueryOpToString(op);
  }
}

TEST(ExecIoTest, SimpleAggTwoScans) {
  // Theorem 6.1: <= 2 scans of the input + writing the output. Annotation
  // adds one materialization; total stays a small multiple of input pages.
  Lists l(4000, 21);
  AggSelFilter f = ParseAggSelFilter("count(x)>=1").ValueOrDie();
  uint64_t before = l.disk.stats().TotalTransfers();
  EntryList out = EvalSimpleAgg(&l.disk, l.l1, f).TakeValue();
  uint64_t io = l.disk.stats().TotalTransfers() - before;
  EXPECT_LE(io, 6 * l.l1.pages.size() + 16);
  ASSERT_TRUE(FreeRun(&l.disk, &out).ok());

  // With an entry-set aggregate the extra global scan is still linear.
  AggSelFilter f2 = ParseAggSelFilter("min(x)=min(min(x))").ValueOrDie();
  before = l.disk.stats().TotalTransfers();
  out = EvalSimpleAgg(&l.disk, l.l1, f2).TakeValue();
  io = l.disk.stats().TotalTransfers() - before;
  EXPECT_LE(io, 8 * l.l1.pages.size() + 16);
}

}  // namespace
}  // namespace ndq
