// EXPLAIN ANALYZE end-to-end: the execution trace must (a) stay within the
// cost model's cardinality upper bounds node by node, (b) reconcile its
// per-node I/O deltas with the disks' global IoStats, (c) render a stable,
// machine-parsable report, and (d) stay within the paper's per-operator
// I/O theorems on both the paper fixture and generated directories.

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/distributed.h"
#include "exec/cost.h"
#include "exec/evaluator.h"
#include "exec/trace.h"
#include "gen/dif_gen.h"
#include "query/parser.h"
#include "testing/paper_fixture.h"
#include "theorem_check.h"

namespace ndq {
namespace {

using testing::ExpectCardinalityWithinEstimate;
using testing::ExpectIoAccountingConsistent;
using testing::ExpectWithinTheoremBounds;

// Paper-style queries covering every language level: L1 atomic + boolean,
// L2 hierarchy + simple aggregate, L3 embedded references (Figs. 7-10).
const char* kQueries[] = {
    "(dc=com ? sub ? objectClass=QHP)",
    "(c (dc=com ? sub ? objectClass=organizationalUnit)"
    "   (dc=com ? sub ? objectClass=QHP))",
    "(a (dc=com ? sub ? objectClass=QHP)"
    "   (dc=com ? sub ? objectClass=organizationalUnit))",
    "(g (dc=com ? sub ? objectClass=SLAPolicyRules) count(SLAPVPRef) > 0)",
    "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
    "    (dc=com ? sub ? objectClass=trafficProfile) SLATPRef)",
};

struct TraceFixture {
  SimDisk disk{1024};
  DirectoryInstance inst;
  EntryStore store;

  explicit TraceFixture(int num_orgs = 0) : inst(Schema(), false) {
    if (num_orgs > 0) {
      gen::DifOptions opt;
      opt.num_orgs = num_orgs;
      inst = gen::GenerateDif(opt);
    } else {
      inst = testing::PaperInstance();
    }
    store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  }

  // Evaluates with tracing on a fresh scratch disk; frees the result.
  OpTrace Trace(const std::string& text, QueryPtr* out_query = nullptr) {
    QueryPtr q = ParseQuery(text).TakeValue();
    SimDisk scratch(1024);
    Evaluator evaluator(&scratch, &store);
    OpTrace trace;
    EntryList r = evaluator.Evaluate(*q, &trace).TakeValue();
    EXPECT_TRUE(FreeRun(&scratch, &r).ok());
    if (out_query != nullptr) *out_query = std::move(q);
    return trace;
  }
};

TEST(ExplainAnalyzeTest, ActualCardinalityWithinEstimateBounds) {
  TraceFixture f;
  for (const char* text : kQueries) {
    SCOPED_TRACE(text);
    QueryPtr q;
    OpTrace trace = f.Trace(text, &q);
    ExpectCardinalityWithinEstimate(f.store, *q, trace);
  }
}

TEST(ExplainAnalyzeTest, ActualCardinalityWithinEstimateBoundsGenerated) {
  TraceFixture f(/*num_orgs=*/4);
  for (const char* text : kQueries) {
    SCOPED_TRACE(text);
    QueryPtr q;
    OpTrace trace = f.Trace(text, &q);
    ExpectCardinalityWithinEstimate(f.store, *q, trace);
  }
}

TEST(ExplainAnalyzeTest, RootIoReconcilesWithGlobalIoStats) {
  TraceFixture f(/*num_orgs=*/4);
  for (const char* text : kQueries) {
    SCOPED_TRACE(text);
    QueryPtr q = ParseQuery(text).TakeValue();
    SimDisk scratch(1024);
    Evaluator evaluator(&scratch, &f.store);
    IoStats store_before = f.disk.stats();
    IoStats scratch_before = scratch.stats();
    OpTrace trace;
    EntryList r = evaluator.Evaluate(*q, &trace).TakeValue();
    IoStats sd = f.disk.stats() - store_before;
    IoStats cd = scratch.stats() - scratch_before;
    // The root's cumulative delta is exactly what the two disks saw.
    EXPECT_EQ(trace.io.page_reads, sd.page_reads + cd.page_reads);
    EXPECT_EQ(trace.io.page_writes, sd.page_writes + cd.page_writes);
    EXPECT_EQ(trace.io.pages_allocated,
              sd.pages_allocated + cd.pages_allocated);
    EXPECT_EQ(trace.io.pages_freed, sd.pages_freed + cd.pages_freed);
    // And the tree's self-deltas telescope back to that total.
    ExpectIoAccountingConsistent(trace);
    EXPECT_TRUE(FreeRun(&scratch, &r).ok());
  }
}

TEST(ExplainAnalyzeTest, TraceShapeMirrorsQueryTree) {
  TraceFixture f;
  for (const char* text : kQueries) {
    SCOPED_TRACE(text);
    QueryPtr q;
    OpTrace trace = f.Trace(text, &q);
    EXPECT_EQ(trace.NodeCount(), q->NodeCount());
    EXPECT_EQ(trace.op, q->op());
    EXPECT_EQ(trace.label, QueryNodeLabel(*q));
  }
}

TEST(ExplainAnalyzeTest, OperatorsStayWithinTheoremBounds) {
  // Generated data is large enough that a complexity-class regression
  // (quadratic merge, unamortized spills) would blow the linear bounds.
  TraceFixture f(/*num_orgs=*/6);
  for (const char* text : kQueries) {
    SCOPED_TRACE(text);
    ExpectWithinTheoremBounds(f.Trace(text));
  }
}

TEST(ExplainAnalyzeTest, HierarchyTraceRecordsStackActivity) {
  TraceFixture f(/*num_orgs=*/4);
  OpTrace trace = f.Trace(
      "(d (dc=com ? sub ? objectClass=organizationalUnit)"
      "   (dc=com ? sub ? objectClass=QHP))");
  EXPECT_EQ(trace.op, QueryOp::kDescendants);
  EXPECT_GT(trace.output_records, 0u);
  // The backward pass pushed candidate ancestors through the stack.
  EXPECT_GT(trace.peak_stack_items, 0u);
  ASSERT_EQ(trace.children.size(), 2u);
  EXPECT_GT(trace.children[0].output_records, 0u);
  EXPECT_GT(trace.children[1].output_records, 0u);
}

// Strips every wall_us=... token so two runs of the same query compare
// equal (wall time is the only nondeterministic field).
std::string StripWallTime(const std::string& report) {
  std::string out;
  std::istringstream in(report);
  std::string line;
  while (std::getline(in, line)) {
    size_t pos = line.find(" wall_us=");
    out.append(pos == std::string::npos ? line : line.substr(0, pos));
    out.push_back('\n');
  }
  return out;
}

TEST(ExplainAnalyzeTest, ReportIsStableAndParsable) {
  TraceFixture f;
  const char* text = kQueries[4];  // the L3 vd query
  QueryPtr q;
  OpTrace trace = f.Trace(text, &q);
  std::string report = ExplainAnalyze(f.store, *q, trace);

  // One line per plan node, each of the form "<indent><label>  {k=v ...}".
  std::istringstream in(report);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    SCOPED_TRACE(line);
    size_t open = line.find('{');
    ASSERT_NE(open, std::string::npos);
    ASSERT_EQ(line.back(), '}');
    // The four headline fields, in order, then wall time last.
    size_t ep = line.find("est_pages=", open);
    size_t ap = line.find("act_pages=", open);
    size_t er = line.find("est_recs=", open);
    size_t ar = line.find("act_recs=", open);
    size_t wu = line.find("wall_us=", open);
    EXPECT_NE(ep, std::string::npos);
    EXPECT_NE(ap, std::string::npos);
    EXPECT_NE(er, std::string::npos);
    EXPECT_NE(ar, std::string::npos);
    EXPECT_NE(wu, std::string::npos);
    EXPECT_TRUE(ep < ap && ap < er && er < ar && ar < wu);
    // Every key=value token parses: keys are [a-z_]+, values numeric.
    std::istringstream body(line.substr(open + 1, line.size() - open - 2));
    std::string token;
    while (body >> token) {
      size_t eq = token.find('=');
      ASSERT_NE(eq, std::string::npos) << token;
      for (char c : token.substr(0, eq)) {
        EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) || c == '_')
            << token;
      }
      for (char c : token.substr(eq + 1)) {
        EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)) || c == '.')
            << token;
      }
    }
  }
  EXPECT_EQ(lines, q->NodeCount());

  // Same query, same store: everything but wall time is deterministic.
  OpTrace again = f.Trace(text);
  EXPECT_EQ(StripWallTime(report),
            StripWallTime(ExplainAnalyze(f.store, *q, again)));

  // The raw trace rendering obeys the same key discipline.
  std::string raw = trace.ToString();
  EXPECT_NE(raw.find("in_recs="), std::string::npos);
  EXPECT_NE(raw.find("wall_us="), std::string::npos);
}

TEST(ExplainAnalyzeTest, DistributedTraceRecordsShippingAndFleetIo) {
  DirectoryInstance inst = testing::PaperInstance();
  DistributedDirectory fleet =
      DistributedDirectory::Build(
          inst, {{"dc=com", "root-server"},
                 {"dc=research, dc=att, dc=com", "research-server"}})
          .TakeValue();
  QueryPtr q = ParseQuery(
                   "(c (dc=com ? sub ? objectClass=organizationalUnit)"
                   "   (dc=com ? sub ? objectClass=QHP))")
                   .TakeValue();
  OpTrace trace;
  std::vector<Entry> r = fleet.Evaluate(*q, &trace).TakeValue();
  EXPECT_EQ(trace.NodeCount(), q->NodeCount());
  EXPECT_EQ(trace.output_records, r.size());
  // Both atomic leaves span both servers, so records crossed the wire and
  // the leaf traces say so.
  ASSERT_EQ(trace.children.size(), 2u);
  for (const OpTrace& leaf : trace.children) {
    EXPECT_GT(leaf.shipped_records, 0u) << leaf.label;
    EXPECT_GT(leaf.shipped_bytes, 0u) << leaf.label;
  }
  EXPECT_GE(trace.shipped_records,
            trace.children[0].shipped_records +
                trace.children[1].shipped_records);
  ExpectIoAccountingConsistent(trace);
}

}  // namespace
}  // namespace ndq
