// Cross-validation of the external-memory engine against the definitional
// reference evaluator: every paper example plus randomized queries in all
// language levels over random forests.

#include <random>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "gen/random_forest.h"
#include "gen/random_query.h"
#include "query/parser.h"
#include "query/reference.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

// Evaluates `query` both ways over `inst` and expects identical ordered
// results.
void ExpectAgreement(const DirectoryInstance& inst, const Query& query) {
  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  Evaluator evaluator(&disk, &store);

  Result<std::vector<Entry>> exec_r = evaluator.EvaluateToEntries(query);
  Result<std::vector<const Entry*>> ref_r = EvaluateReference(query, inst);
  ASSERT_EQ(exec_r.ok(), ref_r.ok()) << query.ToString();
  if (!exec_r.ok()) return;

  const std::vector<Entry>& exec_entries = *exec_r;
  const std::vector<const Entry*>& ref_entries = *ref_r;
  ASSERT_EQ(exec_entries.size(), ref_entries.size()) << query.ToString();
  for (size_t i = 0; i < exec_entries.size(); ++i) {
    EXPECT_EQ(exec_entries[i], *ref_entries[i])
        << query.ToString() << " at index " << i;
  }
}

void ExpectAgreementText(const DirectoryInstance& inst,
                         const std::string& text) {
  Result<QueryPtr> q = ParseQuery(text);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ExpectAgreement(inst, **q);
}

TEST(ExecOracleTest, PaperExampleQueries) {
  DirectoryInstance inst = testing::PaperInstance();
  const char* queries[] = {
      // Atomic, every scope.
      "(dc=att, dc=com ? sub ? surName=jagadish)",
      "(dc=att, dc=com ? base ? objectClass=*)",
      "(dc=research, dc=att, dc=com ? one ? objectClass=*)",
      "(null-dn ? sub ? objectClass=QHP)",
      "(dc=void, dc=com ? sub ? objectClass=*)",
      // Example 4.1.
      "(- (dc=att, dc=com ? sub ? surName=jagadish)"
      "   (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
      "(& (dc=com ? sub ? objectClass=dcObject) (dc=att, dc=com ? sub ? "
      "objectClass=*))",
      "(| (dc=com ? base ? objectClass=*) (dc=att, dc=com ? one ? "
      "objectClass=*))",
      // Examples 5.1-5.3.
      "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)"
      "   (dc=att, dc=com ? sub ? surName=jagadish))",
      "(p (dc=com ? sub ? objectClass=QHP)"
      "   (dc=com ? sub ? objectClass=TOPSSubscriber))",
      "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
      "   (dc=att, dc=com ? sub ? ou=networkPolicies))",
      "(d (dc=com ? sub ? objectClass=dcObject)"
      "   (dc=com ? sub ? objectClass=QHP))",
      "(dc (dc=att, dc=com ? sub ? objectClass=dcObject)"
      "    (& (dc=att, dc=com ? sub ? sourcePort=25)"
      "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
      "    (dc=att, dc=com ? sub ? objectClass=dcObject))",
      "(ac (dc=com ? sub ? uid=jag) (dc=com ? sub ? objectClass=dcObject)"
      "    (dc=com ? sub ? objectClass=dcObject))",
      // Examples 6.1, 6.2 and variants.
      "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
      "   count(SLAPVPRef) > 1)",
      "(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)"
      "   (dc=att, dc=com ? sub ? objectClass=QHP) count($2) > 1)",
      "(c (dc=com ? sub ? objectClass=QHP)"
      "   (dc=com ? sub ? objectClass=callAppearance) max($2.timeOut)<=30)",
      "(d (dc=com ? sub ? objectClass=dcObject)"
      "   (dc=com ? sub ? objectClass=organizationalUnit)"
      "   count($2)=max(count($2)))",
      "(g (dc=com ? sub ? objectClass=SLAPolicyRules)"
      "   min(SLARulePriority)=min(min(SLARulePriority)))",
      // Section 7.
      "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
      "    (& (dc=att, dc=com ? sub ? sourcePort=25)"
      "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
      "    SLATPRef)",
      "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)"
      "    (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
      "           (& (dc=att, dc=com ? sub ? sourcePort=25)"
      "              (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
      "           SLATPRef)"
      "       min(SLARulePriority)=min(min(SLARulePriority)))"
      "    SLADSActRef)",
      "(dv (dc=com ? sub ? objectClass=trafficProfile)"
      "    (dc=com ? sub ? objectClass=SLAPolicyRules) SLATPRef "
      "count($2)>=1)",
      "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
      "    (dc=com ? sub ? objectClass=policyValidityPeriod) SLAPVPRef "
      "count($2)=2)",
      // LDAP baseline.
      "(ldap dc=com ? sub ? (&(objectClass=QHP)(!(priority>1))))",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    ExpectAgreementText(inst, text);
  }
}

TEST(ExecOracleTest, EmptyOperands) {
  DirectoryInstance inst = testing::PaperInstance();
  const char* queries[] = {
      "(c (dc=com ? sub ? objectClass=nothing) (dc=com ? sub ? "
      "objectClass=*))",
      "(c (dc=com ? sub ? objectClass=*) (dc=com ? sub ? "
      "objectClass=nothing))",
      "(a (dc=com ? sub ? objectClass=nothing) (dc=com ? sub ? "
      "objectClass=nothing))",
      "(dc (dc=com ? sub ? objectClass=*) (dc=com ? sub ? objectClass=*)"
      "    (dc=com ? sub ? objectClass=nothing))",
      "(vd (dc=com ? sub ? objectClass=nothing) (dc=com ? sub ? "
      "objectClass=*) SLATPRef)",
      "(g (dc=com ? sub ? objectClass=nothing) count(x) > 0)",
      "(- (dc=com ? sub ? objectClass=nothing) (dc=com ? sub ? "
      "objectClass=*))",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    ExpectAgreementText(inst, text);
  }
}

TEST(ExecOracleTest, SelfWitnessExcluded) {
  // An entry matching both operands must not witness itself (ancestry is
  // proper); overlap of L1 and L2 exercises the label-union path.
  DirectoryInstance inst = testing::PaperInstance();
  const char* queries[] = {
      "(a (dc=com ? sub ? objectClass=dcObject) (dc=com ? sub ? "
      "objectClass=dcObject))",
      "(d (dc=com ? sub ? objectClass=dcObject) (dc=com ? sub ? "
      "objectClass=dcObject))",
      "(p (dc=com ? sub ? objectClass=dcObject) (dc=com ? sub ? "
      "objectClass=dcObject))",
      "(c (dc=com ? sub ? objectClass=dcObject) (dc=com ? sub ? "
      "objectClass=dcObject))",
      "(ac (dc=com ? sub ? objectClass=*) (dc=com ? sub ? objectClass=*)"
      "    (dc=com ? sub ? objectClass=*))",
      "(dc (dc=com ? sub ? objectClass=*) (dc=com ? sub ? objectClass=*)"
      "    (dc=com ? sub ? objectClass=*))",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    ExpectAgreementText(inst, text);
  }
}

// Property test: random queries at each language level over random
// forests must agree with the oracle.
struct PropertyParams {
  int seed;
  Language max_language;
};

class ExecPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExecPropertyTest, RandomQueriesAgreeWithOracle) {
  auto [seed, lang_int] = GetParam();
  std::mt19937 rng(seed);
  gen::RandomForestOptions fopt;
  fopt.seed = static_cast<uint32_t>(seed);
  fopt.num_entries = 150;
  DirectoryInstance inst = gen::RandomForest(fopt);

  gen::RandomQueryOptions qopt;
  qopt.max_language = static_cast<Language>(lang_int);
  qopt.max_depth = 3;

  for (int i = 0; i < 40; ++i) {
    QueryPtr q = gen::RandomQuery(&rng, inst, qopt);
    SCOPED_TRACE(q->ToString());
    // The generated query must also round-trip through the parser.
    Result<QueryPtr> reparsed = ParseQuery(q->ToString());
    ASSERT_TRUE(reparsed.ok())
        << q->ToString() << ": " << reparsed.status().ToString();
    ASSERT_EQ((*reparsed)->ToString(), q->ToString());
    ExpectAgreement(inst, *q);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLanguages, ExecPropertyTest,
    ::testing::Combine(::testing::Values(11, 22, 33, 44),
                       ::testing::Values(1, 2, 3, 4)));

TEST(ExecOracleTest, DeepChainForestWithTinyStackWindow) {
  // A pathological root-to-leaf chain with a stack window far smaller than
  // the chain forces spilling; results must be unaffected.
  DirectoryInstance inst(Schema(), /*validate=*/false);
  Dn dn;
  for (int i = 0; i < 300; ++i) {
    dn = dn.IsNull() ? Dn::Make({Rdn::Single("dc", "n0").TakeValue()})
                           .TakeValue()
                     : dn.Child(Rdn::Single("cn", "n" + std::to_string(i))
                                    .TakeValue());
    Entry e(dn);
    e.AddClass(i % 2 == 0 ? "even" : "odd");
    e.AddInt("x", i);
    ASSERT_TRUE(inst.Add(std::move(e)).ok());
  }
  SimDisk disk(512);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  ExecOptions opt;
  opt.stack_window = 4;  // far smaller than the 300-deep chain
  Evaluator evaluator(&disk, &store, opt);

  for (const char* text : {
           "(a ( ? sub ? objectClass=even) ( ? sub ? objectClass=odd))",
           "(d ( ? sub ? objectClass=even) ( ? sub ? objectClass=odd))",
           "(c ( ? sub ? objectClass=even) ( ? sub ? objectClass=odd))",
           "(p ( ? sub ? objectClass=even) ( ? sub ? objectClass=odd))",
           "(a ( ? sub ? objectClass=even) ( ? sub ? objectClass=odd) "
           "count($2)=149)",
           "(d ( ? sub ? objectClass=even) ( ? sub ? objectClass=odd) "
           "sum($2.x)>=22201)",
           "(ac ( ? sub ? objectClass=even) ( ? sub ? x<10) "
           "( ? sub ? x=20))",
           "(dc ( ? sub ? objectClass=even) ( ? sub ? x>290) "
           "( ? sub ? x=295))",
       }) {
    SCOPED_TRACE(text);
    Result<QueryPtr> q = ParseQuery(text);
    ASSERT_TRUE(q.ok());
    Result<std::vector<Entry>> exec_r = evaluator.EvaluateToEntries(**q);
    Result<std::vector<const Entry*>> ref_r = EvaluateReference(**q, inst);
    ASSERT_TRUE(exec_r.ok()) << exec_r.status().ToString();
    ASSERT_TRUE(ref_r.ok());
    ASSERT_EQ(exec_r->size(), ref_r->size());
    for (size_t i = 0; i < exec_r->size(); ++i) {
      EXPECT_EQ((*exec_r)[i], *(*ref_r)[i]);
    }
  }
}

// Page-size sweep: tiny pages force records to span page boundaries in
// every structure (store, runs, spilled stacks); results must not change.
class PageSizeOracleTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PageSizeOracleTest, ResultsIndependentOfPageSize) {
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk(GetParam());
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  ExecOptions opt;
  opt.stack_window = 8;
  Evaluator evaluator(&disk, &store, opt);
  const char* queries[] = {
      "(dc=com ? sub ? objectClass=*)",
      "(dc (dc=att, dc=com ? sub ? objectClass=dcObject)"
      "    (& (dc=att, dc=com ? sub ? sourcePort=25)"
      "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
      "    (dc=att, dc=com ? sub ? objectClass=dcObject))",
      "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)"
      "    (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
      "           (& (dc=att, dc=com ? sub ? sourcePort=25)"
      "              (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
      "           SLATPRef)"
      "       min(SLARulePriority)=min(min(SLARulePriority)))"
      "    SLADSActRef)",
      "(d (dc=com ? sub ? objectClass=dcObject)"
      "   (dc=com ? sub ? objectClass=organizationalUnit)"
      "   count($2)=max(count($2)))",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    QueryPtr q = ParseQuery(text).TakeValue();
    Result<std::vector<Entry>> exec_r = evaluator.EvaluateToEntries(*q);
    ASSERT_TRUE(exec_r.ok()) << exec_r.status().ToString();
    std::vector<const Entry*> ref =
        EvaluateReference(*q, inst).TakeValue();
    ASSERT_EQ(exec_r->size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ((*exec_r)[i], *ref[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, PageSizeOracleTest,
                         ::testing::Values(96, 256, 1024, 8192));

TEST(ExecOracleTest, NoDiskPagesLeak) {
  // Whole-query evaluation frees every intermediate list.
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  size_t baseline = disk.live_pages();
  Evaluator evaluator(&disk, &store);
  Result<QueryPtr> q = ParseQuery(
      "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)"
      "    (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
      "           (& (dc=att, dc=com ? sub ? sourcePort=25)"
      "              (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
      "           SLATPRef)"
      "       min(SLARulePriority)=min(min(SLARulePriority)))"
      "    SLADSActRef)");
  ASSERT_TRUE(q.ok());
  for (int i = 0; i < 3; ++i) {
    Result<std::vector<Entry>> r = evaluator.EvaluateToEntries(**q);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), 1u);
  }
  EXPECT_EQ(disk.live_pages(), baseline);
}

}  // namespace
}  // namespace ndq
