// Tests for the synthetic data and query generators themselves: the
// benchmark conclusions are only as good as the workloads.

#include <random>
#include <set>

#include <gtest/gtest.h>

#include "gen/dif_gen.h"
#include "gen/paper_data.h"
#include "gen/random_forest.h"
#include "gen/random_query.h"
#include "query/parser.h"

namespace ndq {
namespace {

TEST(PaperDataTest, SchemaValidatesEveryFixtureEntry) {
  DirectoryInstance inst = gen::PaperInstance();
  const Schema& schema = inst.schema();
  for (const auto& [key, entry] : inst) {
    (void)key;
    Status s = schema.ValidateEntry(entry);
    EXPECT_TRUE(s.ok()) << entry.dn().ToString() << ": " << s.ToString();
  }
}

TEST(PaperDataTest, FixtureIsPrefixClosed) {
  DirectoryInstance inst = gen::PaperInstance();
  for (const auto& [key, entry] : inst) {
    (void)key;
    Dn parent = entry.dn().Parent();
    if (!parent.IsNull()) {
      EXPECT_NE(inst.Find(parent), nullptr)
          << "missing parent of " << entry.dn().ToString();
    }
  }
}

TEST(DifGenTest, SizeMatchesPrediction) {
  for (int orgs : {1, 2, 4}) {
    for (int subs : {1, 3}) {
      gen::DifOptions opt;
      opt.num_orgs = orgs;
      opt.subdomains_per_org = subs;
      DirectoryInstance inst = gen::GenerateDif(opt);
      EXPECT_EQ(inst.size(), gen::ExpectedDifSize(opt))
          << "orgs=" << orgs << " subs=" << subs;
    }
  }
}

TEST(DifGenTest, EntriesValidateAndReferencesResolve) {
  gen::DifOptions opt;
  opt.num_orgs = 2;
  DirectoryInstance inst = gen::GenerateDif(opt);
  const Schema& schema = inst.schema();
  size_t refs_checked = 0;
  for (const auto& [key, entry] : inst) {
    (void)key;
    ASSERT_TRUE(schema.ValidateEntry(entry).ok()) << entry.dn().ToString();
    // Every DN-valued reference points at an existing entry.
    for (const char* attr :
         {"SLATPRef", "SLAPVPRef", "SLADSActRef", "SLAExceptionRef"}) {
      const std::vector<Value>* vals = entry.Values(attr);
      if (vals == nullptr) continue;
      for (const Value& v : *vals) {
        Dn target = Dn::Parse(v.AsString()).TakeValue();
        EXPECT_NE(inst.Find(target), nullptr)
            << attr << " dangling in " << entry.dn().ToString();
        ++refs_checked;
      }
    }
  }
  EXPECT_GT(refs_checked, 50u);
}

TEST(DifGenTest, DeterministicPerSeed) {
  gen::DifOptions opt;
  opt.seed = 42;
  DirectoryInstance a = gen::GenerateDif(opt);
  DirectoryInstance b = gen::GenerateDif(opt);
  ASSERT_EQ(a.size(), b.size());
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end(); ++ita, ++itb) {
    ASSERT_EQ(ita->second, itb->second);
  }
}

TEST(RandomForestTest, PrefixClosedAndSized) {
  gen::RandomForestOptions opt;
  opt.seed = 9;
  opt.num_entries = 500;
  DirectoryInstance inst = gen::RandomForest(opt);
  EXPECT_EQ(inst.size(), 500u);
  size_t max_depth = 0;
  for (const auto& [key, entry] : inst) {
    (void)key;
    max_depth = std::max(max_depth, entry.dn().depth());
    Dn parent = entry.dn().Parent();
    if (!parent.IsNull()) {
      EXPECT_NE(inst.Find(parent), nullptr);
    }
    // rdn(r) subseteq val(r) holds even without schema validation.
    for (const auto& [attr, value] : entry.dn().rdn().pairs()) {
      EXPECT_TRUE(entry.HasPair(attr, Value::String(value)));
    }
  }
  EXPECT_GT(max_depth, 3u);  // actually hierarchical, not flat
}

TEST(RandomForestTest, ReferencesPointAtInstanceEntries) {
  gen::RandomForestOptions opt;
  opt.seed = 11;
  opt.num_entries = 300;
  DirectoryInstance inst = gen::RandomForest(opt);
  size_t refs = 0;
  for (const auto& [key, entry] : inst) {
    (void)key;
    const std::vector<Value>* vals = entry.Values("ref");
    if (vals == nullptr) continue;
    for (const Value& v : *vals) {
      Dn target = Dn::Parse(v.AsString()).TakeValue();
      EXPECT_NE(inst.Find(target), nullptr);
      ++refs;
    }
  }
  EXPECT_GT(refs, 50u);  // the vd/dv benches have real work to do
}

TEST(RandomQueryTest, GeneratedQueriesParseAndClassify) {
  std::mt19937 rng(21);
  gen::RandomForestOptions fopt;
  fopt.num_entries = 100;
  DirectoryInstance inst = gen::RandomForest(fopt);
  std::set<Language> seen;
  for (int lang = 1; lang <= 4; ++lang) {
    gen::RandomQueryOptions qopt;
    qopt.max_language = static_cast<Language>(lang);
    for (int i = 0; i < 50; ++i) {
      QueryPtr q = gen::RandomQuery(&rng, inst, qopt);
      // Round-trips through the parser.
      Result<QueryPtr> back = ParseQuery(q->ToString());
      ASSERT_TRUE(back.ok()) << q->ToString();
      EXPECT_EQ((*back)->ToString(), q->ToString());
      // Never exceeds the requested language.
      EXPECT_LE(static_cast<int>(q->MinimalLanguage()), lang)
          << q->ToString();
      seen.insert(q->MinimalLanguage());
    }
  }
  // The generator actually produces the higher levels, not only atoms.
  EXPECT_GE(seen.size(), 4u);
}

}  // namespace
}  // namespace ndq
