// Scale-out sharding (ISSUE 10): the declarative TopologyConfig text
// form, routing across nested delegations at shard boundaries, replica
// failover byte-identity against a healthy fleet, and the streaming
// scatter-gather merge against its materialized predecessor.

#include "dist/topology.h"

#include <atomic>
#include <chrono>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/distributed.h"
#include "gen/dif_gen.h"
#include "query/parser.h"
#include "query/reference.h"
#include "storage/fault_injector.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;

TEST(TopologyConfigTest, ParseDirectivesAndOverrides) {
  TopologyConfig cfg =
      TopologyConfig::Parse(
          "# the paper fixture's Figure 1 split, replicated\n"
          "replicas 2\n"
          "page_size 512\n"
          "\n"
          "shard root dc=com\n"
          "shard research replicas=3 dc=research, dc=att, dc=com\n")
          .TakeValue();
  EXPECT_EQ(cfg.replicas, 2u);
  EXPECT_EQ(cfg.page_size, 512u);
  ASSERT_EQ(cfg.shards.size(), 2u);
  EXPECT_EQ(cfg.shards[0].name, "root");
  EXPECT_EQ(cfg.shards[0].context, "dc=com");
  EXPECT_EQ(cfg.shards[1].context, "dc=research, dc=att, dc=com");
  EXPECT_EQ(cfg.ReplicasFor(0), 2u);  // inherits the default
  EXPECT_EQ(cfg.ReplicasFor(1), 3u);  // per-shard override
}

TEST(TopologyConfigTest, ToStringRoundTrips) {
  TopologyConfig cfg =
      TopologyConfig::Parse(
          "replicas 2\n"
          "shard root dc=com\n"
          "shard att replicas=1 dc=att, dc=com\n")
          .TakeValue();
  TopologyConfig again = TopologyConfig::Parse(cfg.ToString()).TakeValue();
  EXPECT_EQ(again.ToString(), cfg.ToString());
  EXPECT_EQ(again.shards.size(), cfg.shards.size());
  EXPECT_EQ(again.replicas, cfg.replicas);
  EXPECT_EQ(again.page_size, cfg.page_size);
}

TEST(TopologyConfigTest, ParseRejectsBadInput) {
  EXPECT_FALSE(TopologyConfig::Parse("bogus 3\n").ok());
  EXPECT_FALSE(TopologyConfig::Parse("replicas 0\nshard a dc=com\n").ok());
  EXPECT_FALSE(TopologyConfig::Parse("shard a\n").ok());  // no context dn
  EXPECT_FALSE(TopologyConfig::Parse("").ok());           // no shards
  // Duplicate names and unparseable dns surface when the routing table
  // resolves (i.e. at Build).
  TopologyConfig dup =
      TopologyConfig::Parse("shard a dc=com\nshard a dc=att, dc=com\n")
          .TakeValue();
  EXPECT_FALSE(RoutingTable::Resolve(dup).ok());
  TopologyConfig bad_dn =
      TopologyConfig::Parse("shard a ?!not-a-dn\n").TakeValue();
  EXPECT_FALSE(RoutingTable::Resolve(bad_dn).ok());
}

// A three-level delegation chain: root owns dc=com, org0 is delegated out
// of root, sub0 is delegated out of org0. Routing must chase the chain
// exactly as a DNS resolver would.
DistributedDirectory NestedFleet(const DirectoryInstance& global,
                                 size_t replicas = 1) {
  TopologyConfig cfg =
      TopologyConfig::Parse(
          "shard root dc=com\n"
          "shard org0 dc=org0, dc=com\n"
          "shard sub0 dc=sub0, dc=org0, dc=com\n"
          "shard org1 dc=org1, dc=com\n")
          .TakeValue();
  cfg.replicas = replicas;
  return DistributedDirectory::Build(global, cfg).TakeValue();
}

DirectoryInstance SmallDif() {
  gen::DifOptions opt;
  opt.num_orgs = 2;
  opt.subdomains_per_org = 2;
  return gen::GenerateDif(opt);
}

TEST(TopologyRoutingTest, OwnersForNestedDelegations) {
  DirectoryInstance global = SmallDif();
  DistributedDirectory fleet = NestedFleet(global);

  // Subtree at the top touches every shard, in shard order.
  EXPECT_EQ(fleet.OwnersFor(D("dc=com"), Scope::kSub),
            (std::vector<std::string>{"root", "org0", "sub0", "org1"}));
  // Subtree at org0 crosses into its own nested delegation (sub0) but
  // never into the sibling org.
  EXPECT_EQ(fleet.OwnersFor(D("dc=org0, dc=com"), Scope::kSub),
            (std::vector<std::string>{"org0", "sub0"}));
  // Base scope resolves to the deepest covering context alone.
  EXPECT_EQ(fleet.OwnersFor(D("dc=sub0, dc=org0, dc=com"), Scope::kBase),
            (std::vector<std::string>{"sub0"}));
  EXPECT_EQ(fleet.OwnersFor(D("dc=org0, dc=com"), Scope::kBase),
            (std::vector<std::string>{"org0"}));
  // kOne crosses exactly one boundary: org0's children include the sub0
  // context root, and root's children include both org context roots —
  // but never the grandchild sub0.
  EXPECT_EQ(fleet.OwnersFor(D("dc=org0, dc=com"), Scope::kOne),
            (std::vector<std::string>{"org0", "sub0"}));
  EXPECT_EQ(fleet.OwnersFor(D("dc=com"), Scope::kOne),
            (std::vector<std::string>{"root", "org0", "org1"}));
  // A base inside a delegate's subtree never routes to the parent shard.
  EXPECT_EQ(fleet.OwnersFor(D("ou=subscribers, dc=sub0, dc=org0, dc=com"),
                            Scope::kSub),
            (std::vector<std::string>{"sub0"}));
}

TEST(TopologyRoutingTest, PartitionRespectsNestedBoundaries) {
  DirectoryInstance global = SmallDif();
  DistributedDirectory fleet = NestedFleet(global, /*replicas=*/2);
  size_t total = 0;
  for (const auto& shard : fleet.shards()) {
    EXPECT_EQ(shard->num_replicas(), 2u);
    // Replicas hold identical partitions.
    EXPECT_EQ(shard->replica(0)->num_entries(),
              shard->replica(1)->num_entries());
    total += shard->num_entries();
  }
  EXPECT_EQ(total, global.size());
  // sub0's entries live on sub0, not on org0 (the delegation carved them
  // out of the parent context).
  Shard* org0 = fleet.FindShard("org0");
  Shard* sub0 = fleet.FindShard("sub0");
  ASSERT_NE(org0, nullptr);
  ASSERT_NE(sub0, nullptr);
  EXPECT_GT(sub0->num_entries(), 0u);
  std::vector<const Entry*> under_sub0 =
      global.EntriesInScope(D("dc=sub0, dc=org0, dc=com"), Scope::kSub);
  EXPECT_EQ(sub0->num_entries(), under_sub0.size());
}

const char* kWorkload[] = {
    "(dc=com ? sub ? objectClass=TOPSSubscriber)",
    "(dc=sub0, dc=org0, dc=com ? sub ? objectClass=QHP)",
    "(c (dc=com ? sub ? objectClass=TOPSSubscriber)"
    "   (dc=com ? sub ? objectClass=QHP) count($2)>=3)",
    "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
    "    (& (dc=com ? sub ? sourcePort=25)"
    "       (dc=com ? sub ? objectClass=trafficProfile)) SLATPRef)",
};

RetryPolicy FastRetries() {
  RetryPolicy p;
  p.max_attempts = 3;
  p.backoff_micros = 0;
  return p;
}

// With R=2, any single replica down per shard must be invisible: the
// sibling serves the identical partition, so results are byte-identical
// to the healthy fleet, nothing degrades, and the failover counters show
// the rerouting actually happened.
TEST(ReplicationTest, SingleReplicaDownIsByteIdentical) {
  DirectoryInstance global = SmallDif();
  DistributedDirectory fleet = NestedFleet(global, /*replicas=*/2);
  fleet.set_retry_policy(FastRetries());

  std::vector<std::vector<Entry>> healthy;
  for (const char* text : kWorkload) {
    QueryPtr q = ParseQuery(text).TakeValue();
    healthy.push_back(fleet.Execute(*q).TakeValue());
  }

  for (size_t down = 0; down < 2; ++down) {
    SCOPED_TRACE("replica " + std::to_string(down) + " down");
    for (const auto& shard : fleet.shards()) {
      shard->replica(down)->set_down(true);
    }
    fleet.ResetStats();
    for (size_t i = 0; i < std::size(kWorkload); ++i) {
      SCOPED_TRACE(kWorkload[i]);
      QueryPtr q = ParseQuery(kWorkload[i]).TakeValue();
      std::vector<DegradationWarning> warnings;
      Result<std::vector<Entry>> got =
          fleet.Execute(*q, /*trace=*/nullptr, &warnings);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, healthy[i]);
      EXPECT_TRUE(warnings.empty());
    }
    EXPECT_EQ(uint64_t{fleet.net_stats().degraded_results}, 0u);
    // The ring walk moved every request addressed to the downed replica.
    EXPECT_GT(uint64_t{fleet.net_stats().failovers}, 0u);
    EXPECT_FALSE(fleet.ReplicaFailovers().empty());
    for (const auto& shard : fleet.shards()) {
      shard->replica(down)->set_down(false);
    }
  }
}

// Both replicas down -> the shard's contribution degrades (or fails
// under fail-stop); this is the boundary the replication moved, from one
// server to the whole replica set.
TEST(ReplicationTest, WholeReplicaSetDownDegrades) {
  DirectoryInstance global = SmallDif();
  DistributedDirectory fleet = NestedFleet(global, /*replicas=*/2);
  fleet.set_retry_policy(FastRetries());
  Shard* sub0 = fleet.FindShard("sub0");
  ASSERT_NE(sub0, nullptr);
  sub0->replica(0)->set_down(true);
  sub0->replica(1)->set_down(true);

  QueryPtr q = ParseQuery(kWorkload[0]).TakeValue();
  std::vector<DegradationWarning> warnings;
  OpTrace trace;
  Result<std::vector<Entry>> got = fleet.Execute(*q, &trace, &warnings);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].source, "sub0");
  EXPECT_GE(trace.degraded_shards, 1u);

  fleet.set_allow_degraded(false);
  Result<std::vector<Entry>> failed = fleet.Execute(*q);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
}

// The streaming k-way merge and the materialize-then-merge predecessor
// must agree byte-for-byte on every query; only coordinator I/O differs.
TEST(MergeTest, StreamingEqualsMaterialized) {
  DirectoryInstance global = SmallDif();
  DistributedDirectory fleet = NestedFleet(global, /*replicas=*/2);
  for (const char* text : kWorkload) {
    SCOPED_TRACE(text);
    QueryPtr q = ParseQuery(text).TakeValue();
    fleet.set_streaming_merge(false);
    std::vector<Entry> materialized = fleet.Execute(*q).TakeValue();
    fleet.set_streaming_merge(true);
    std::vector<Entry> streamed = fleet.Execute(*q).TakeValue();
    EXPECT_EQ(streamed, materialized);
    std::vector<const Entry*> ref = EvaluateReference(*q, global).TakeValue();
    ASSERT_EQ(streamed.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(streamed[i], *ref[i]);
  }
}

// A transient read fault can land anywhere: during the shard fetch (the
// retry path) or while the coordinator is consuming the shard's stream
// mid-merge (the refetch-and-skip path). Sweep the fault position; with
// fail-stop semantics every run must still be exact.
TEST(MergeTest, TransientReadFaultAnywhereStaysExact) {
  DirectoryInstance global = SmallDif();
  DistributedDirectory fleet = NestedFleet(global, /*replicas=*/2);
  fleet.set_retry_policy(FastRetries());
  fleet.set_allow_degraded(false);

  QueryPtr q = ParseQuery(kWorkload[0]).TakeValue();
  std::vector<Entry> want = fleet.Execute(*q).TakeValue();

  for (size_t victim = 0; victim < 2; ++victim) {
    DirectoryServer* replica = fleet.FindShard("org0")->replica(victim);
    for (uint64_t nth = 1; nth <= 20; ++nth) {
      SCOPED_TRACE("replica " + std::to_string(victim) + " fault at read " +
                   std::to_string(nth));
      FaultInjector fi(
          {FaultInjector::FailNth(nth, FaultOpBit(FaultOp::kRead))});
      replica->disk()->set_fault_injector(&fi);
      Result<std::vector<Entry>> got = fleet.Execute(*q);
      replica->disk()->set_fault_injector(nullptr);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, want);
    }
  }
}

// Concurrent Executes racing replica outages: every call must still be
// byte-identical (the sibling replica absorbs the outage). This is the
// TSan target for the failover machinery.
TEST(ReplicationTest, ConcurrentExecuteDuringOutages) {
  DirectoryInstance global = SmallDif();
  DistributedDirectory fleet = NestedFleet(global, /*replicas=*/2);
  fleet.set_retry_policy(FastRetries());

  QueryPtr q = ParseQuery(kWorkload[0]).TakeValue();
  std::vector<Entry> want = fleet.Execute(*q).TakeValue();

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        QueryPtr local = ParseQuery(kWorkload[0]).TakeValue();
        std::vector<DegradationWarning> warnings;
        Result<std::vector<Entry>> got =
            fleet.Execute(*local, nullptr, &warnings);
        if (!got.ok() || *got != want || !warnings.empty()) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  std::thread chaos([&] {
    while (!stop.load()) {
      for (const auto& shard : fleet.shards()) {
        shard->replica(0)->set_down(true);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      for (const auto& shard : fleet.shards()) {
        shard->replica(0)->set_down(false);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (std::thread& t : readers) t.join();
  stop.store(true);
  chaos.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Round-robin reads spread load across the replica set: after a healthy
// run of identical queries, every replica of a fanned-out shard has
// served some of them.
TEST(ReplicationTest, ReadsRoundRobinAcrossReplicas) {
  DirectoryInstance global = SmallDif();
  DistributedDirectory fleet = NestedFleet(global, /*replicas=*/2);
  fleet.ResetStats();
  QueryPtr q = ParseQuery(kWorkload[1]).TakeValue();
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(fleet.Execute(*q).ok());
  Shard* sub0 = fleet.FindShard("sub0");
  ASSERT_NE(sub0, nullptr);
  EXPECT_GT(sub0->replica(0)->disk()->stats().TotalTransfers(), 0u);
  EXPECT_GT(sub0->replica(1)->disk()->stats().TotalTransfers(), 0u);
}

}  // namespace
}  // namespace ndq
