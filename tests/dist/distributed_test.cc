#include "dist/distributed.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gen/dif_gen.h"
#include "query/parser.h"
#include "query/reference.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;

// The paper fixture split as in Figure 1's dotted server boundaries:
// one server for dc=com + dc=att, one for the research subdomain.
DistributedDirectory PaperFleet() {
  DirectoryInstance inst = testing::PaperInstance();
  return DistributedDirectory::Build(
             inst, {{"dc=com", "root-server"},
                    {"dc=research, dc=att, dc=com", "research-server"}})
      .TakeValue();
}

TEST(DistributedTest, PartitionByDeepestContext) {
  DistributedDirectory fleet = PaperFleet();
  ASSERT_EQ(fleet.servers().size(), 2u);
  // root-server: dc=com, dc=att (2 entries); research-server: the rest.
  const auto& servers = fleet.servers();
  size_t total = 0;
  for (const auto& s : servers) total += s->num_entries();
  EXPECT_EQ(total, 23u);
  EXPECT_EQ(fleet.FindServer("root-server")->num_entries(), 2u);
  EXPECT_EQ(fleet.FindServer("research-server")->num_entries(), 21u);
}

TEST(DistributedTest, UncoveredEntryRejected) {
  DirectoryInstance inst = testing::PaperInstance();
  std::vector<std::pair<std::string, std::string>> contexts = {
      {"dc=att, dc=com", "only-att"}};
  Result<DistributedDirectory> r = DistributedDirectory::Build(inst, contexts);
  EXPECT_FALSE(r.ok());  // dc=com itself is uncovered
}

TEST(DistributedTest, OwnersForRouting) {
  DistributedDirectory fleet = PaperFleet();
  // Base inside the delegated subtree: only the research server.
  EXPECT_EQ(fleet.OwnersFor(D("ou=userProfiles, dc=research, dc=att, "
                              "dc=com"),
                            Scope::kSub),
            (std::vector<std::string>{"research-server"}));
  // Base at the top with scope sub: both.
  EXPECT_EQ(fleet.OwnersFor(D("dc=com"), Scope::kSub).size(), 2u);
  // Base scope at the top: root server only.
  EXPECT_EQ(fleet.OwnersFor(D("dc=com"), Scope::kBase),
            (std::vector<std::string>{"root-server"}));
  // Scope one at dc=att crosses the delegation boundary (its child
  // dc=research is held by the delegate).
  EXPECT_EQ(fleet.OwnersFor(D("dc=att, dc=com"), Scope::kOne).size(), 2u);
}

// Every paper query evaluated distributed == reference on the global
// instance.
TEST(DistributedTest, AgreesWithGlobalReference) {
  DirectoryInstance global = testing::PaperInstance();
  DistributedDirectory fleet = PaperFleet();
  const char* queries[] = {
      "(dc=att, dc=com ? sub ? surName=jagadish)",
      "(- (dc=att, dc=com ? sub ? surName=jagadish)"
      "   (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
      "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)"
      "   (dc=att, dc=com ? sub ? surName=jagadish))",
      "(dc (dc=att, dc=com ? sub ? objectClass=dcObject)"
      "    (& (dc=att, dc=com ? sub ? sourcePort=25)"
      "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
      "    (dc=att, dc=com ? sub ? objectClass=dcObject))",
      "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)"
      "    (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
      "           (& (dc=att, dc=com ? sub ? sourcePort=25)"
      "              (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
      "           SLATPRef)"
      "       min(SLARulePriority)=min(min(SLARulePriority)))"
      "    SLADSActRef)",
      "(ldap dc=com ? sub ? (&(objectClass=QHP)(!(priority>1))))",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    QueryPtr q = ParseQuery(text).TakeValue();
    std::vector<Entry> dist_result = fleet.Evaluate(*q).TakeValue();
    std::vector<const Entry*> ref =
        EvaluateReference(*q, global).TakeValue();
    ASSERT_EQ(dist_result.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(dist_result[i], *ref[i]);
    }
  }
}

TEST(DistributedTest, NetworkAccounting) {
  DistributedDirectory fleet = PaperFleet();
  fleet.ResetStats();
  QueryPtr q = ParseQuery(
                   "(& (dc=com ? sub ? objectClass=dcObject)"
                   "   (dc=research, dc=att, dc=com ? sub ? "
                   "objectClass=dcObject))")
                   .TakeValue();
  ASSERT_TRUE(fleet.Evaluate(*q).ok());
  const NetStats& net = fleet.net_stats();
  // First leaf touches both servers; second only the research server.
  EXPECT_EQ(net.servers_contacted, 3u);
  EXPECT_EQ(net.messages, 6u);
  EXPECT_GT(net.bytes_shipped, 0u);
  // 4 dcObjects from leaf 1 + 2 from leaf 2.
  EXPECT_EQ(net.records_shipped, 6u);
}

TEST(DistributedTest, QueryShippingForSubtreeLocalQueries) {
  DistributedDirectory fleet = PaperFleet();
  // Entirely inside the research context: shipped whole.
  QueryPtr local = ParseQuery(
                       "(c (dc=research, dc=att, dc=com ? sub ? "
                       "objectClass=TOPSSubscriber)"
                       "   (dc=research, dc=att, dc=com ? sub ? "
                       "objectClass=QHP) count($2)>1)")
                       .TakeValue();
  fleet.ResetStats();
  std::vector<Entry> r = fleet.Evaluate(*local).TakeValue();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(fleet.net_stats().queries_shipped, 1u);
  EXPECT_EQ(fleet.net_stats().messages, 2u);  // single round trip
  EXPECT_EQ(fleet.net_stats().records_shipped, 1u);  // final result only
  // The coordinator's operators never ran.
  EXPECT_EQ(fleet.coordinator_disk()->stats().page_writes, 1u);

  // With shipping disabled: same answer, more traffic.
  fleet.set_query_shipping(false);
  fleet.ResetStats();
  std::vector<Entry> r2 = fleet.Evaluate(*local).TakeValue();
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0], r[0]);
  EXPECT_EQ(fleet.net_stats().queries_shipped, 0u);
  EXPECT_GT(fleet.net_stats().records_shipped, 1u);

  // A query spanning servers is never shipped whole.
  fleet.set_query_shipping(true);
  QueryPtr spanning = ParseQuery(
                          "(& (dc=com ? sub ? objectClass=dcObject)"
                          "   (dc=research, dc=att, dc=com ? sub ? "
                          "objectClass=dcObject))")
                          .TakeValue();
  EXPECT_EQ(fleet.SingleOwner(*spanning), nullptr);
  fleet.ResetStats();
  ASSERT_TRUE(fleet.Evaluate(*spanning).ok());
  EXPECT_EQ(fleet.net_stats().queries_shipped, 0u);
}

TEST(DistributedTest, LargerFleetAgreesOnDifWorkload) {
  gen::DifOptions opt;
  opt.num_orgs = 2;
  opt.subdomains_per_org = 2;
  DirectoryInstance global = gen::GenerateDif(opt);
  DistributedDirectory fleet =
      DistributedDirectory::Build(
          global, {{"dc=com", "root"},
                   {"dc=org0, dc=com", "org0"},
                   {"dc=org1, dc=com", "org1"},
                   {"dc=sub0, dc=org0, dc=com", "sub0"},
                   {"dc=sub3, dc=org1, dc=com", "sub3"}})
          .TakeValue();
  size_t total = 0;
  for (const auto& s : fleet.servers()) total += s->num_entries();
  EXPECT_EQ(total, global.size());

  const char* queries[] = {
      "(dc=com ? sub ? objectClass=TOPSSubscriber)",
      "(c (dc=com ? sub ? objectClass=TOPSSubscriber)"
      "   (dc=com ? sub ? objectClass=QHP) count($2)>=3)",
      "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
      "    (& (dc=com ? sub ? sourcePort=25)"
      "       (dc=com ? sub ? objectClass=trafficProfile)) SLATPRef)",
      "(a (dc=com ? sub ? objectClass=callAppearance)"
      "   (dc=org0, dc=com ? sub ? objectClass=TOPSSubscriber))",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    QueryPtr q = ParseQuery(text).TakeValue();
    std::vector<Entry> dist_result = fleet.Evaluate(*q).TakeValue();
    std::vector<const Entry*> ref =
        EvaluateReference(*q, global).TakeValue();
    ASSERT_EQ(dist_result.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(dist_result[i], *ref[i]);
    }
  }
}

}  // namespace
}  // namespace ndq
