// Distributed resilience (ISSUE 3, tentpole part 3): a downed server
// must degrade the result — not the process. Retries with backoff absorb
// transient faults; exhausted retries on an unreachable server yield a
// partial result with a structured DegradationWarning (or fail-stop when
// degradation is disabled); recovery restores exact results; query
// shipping falls back gracefully when the target owner is down.

#include "dist/distributed.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/parser.h"
#include "query/reference.h"
#include "storage/fault_injector.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

// Same fixture split as distributed_test.cc: dc=com + dc=att on the root
// server, the research subdomain delegated.
DistributedDirectory PaperFleet() {
  DirectoryInstance inst = testing::PaperInstance();
  return DistributedDirectory::Build(
             inst, {{"dc=com", "root-server"},
                    {"dc=research, dc=att, dc=com", "research-server"}})
      .TakeValue();
}

RetryPolicy FastRetries() {
  RetryPolicy p;
  p.max_attempts = 3;
  p.backoff_micros = 0;  // keep the test instant
  return p;
}

std::vector<Entry> ReferenceResult(const DirectoryInstance& global,
                                   const Query& q) {
  std::vector<const Entry*> ref = EvaluateReference(q, global).TakeValue();
  std::vector<Entry> out;
  for (const Entry* e : ref) out.push_back(*e);
  return out;
}

TEST(DegradationTest, DownedServerYieldsPartialResultWithWarning) {
  DistributedDirectory fleet = PaperFleet();
  fleet.set_retry_policy(FastRetries());
  fleet.FindServer("research-server")->set_down(true);

  // Spans both servers; only the root server's two entries can arrive.
  QueryPtr q = ParseQuery("(dc=com ? sub ? objectClass=*)").TakeValue();
  OpTrace trace;
  Result<std::vector<Entry>> got = fleet.Evaluate(*q, &trace);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->size(), 2u);  // dc=com, dc=att

  std::vector<DegradationWarning> warnings = fleet.last_warnings();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].source, "research-server");
  EXPECT_NE(warnings[0].ToString().find("research-server"),
            std::string::npos);
  EXPECT_GE(uint64_t{fleet.net_stats().degraded_results}, 1u);
  // A down replica refuses instantly and is never retried (retries are
  // for transient failures); with no sibling replica the shard degrades.
  EXPECT_EQ(uint64_t{fleet.net_stats().retries}, 0u);
  EXPECT_GE(trace.degraded_shards, 1u);
}

TEST(DegradationTest, FailStopWhenDegradationDisabled) {
  DistributedDirectory fleet = PaperFleet();
  fleet.set_retry_policy(FastRetries());
  fleet.set_allow_degraded(false);
  fleet.FindServer("research-server")->set_down(true);

  QueryPtr q = ParseQuery("(dc=com ? sub ? objectClass=*)").TakeValue();
  Result<std::vector<Entry>> got = fleet.Evaluate(*q);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(fleet.last_warnings().empty());
}

TEST(DegradationTest, TransientFaultIsRetriedToAFullResult) {
  DirectoryInstance global = testing::PaperInstance();
  DistributedDirectory fleet = PaperFleet();
  fleet.set_retry_policy(FastRetries());
  QueryPtr q = ParseQuery("(dc=com ? sub ? objectClass=*)").TakeValue();
  std::vector<Entry> want = ReferenceResult(global, *q);

  // One transient read fault on the research server: the first attempt
  // fails, the retry succeeds, and the result is complete — no warning.
  FaultInjector fi(
      {FaultInjector::FailNth(1, FaultOpBit(FaultOp::kRead))});
  fleet.FindServer("research-server")->disk()->set_fault_injector(&fi);
  Result<std::vector<Entry>> got = fleet.Evaluate(*q);
  fleet.FindServer("research-server")->disk()->set_fault_injector(nullptr);

  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, want);
  EXPECT_EQ(fi.faults_fired(), 1u);
  EXPECT_GE(uint64_t{fleet.net_stats().retries}, 1u);
  EXPECT_EQ(uint64_t{fleet.net_stats().degraded_results}, 0u);
  EXPECT_TRUE(fleet.last_warnings().empty());
}

TEST(DegradationTest, QueryShippingFallsBackWhenOwnerIsDown) {
  DistributedDirectory fleet = PaperFleet();
  fleet.set_retry_policy(FastRetries());
  // Subtree-local boolean: with shipping on this would normally be pushed
  // whole to the research server. Down, it must degrade to an empty
  // partial result — not hang or crash.
  QueryPtr q =
      ParseQuery(
          "(& (dc=research, dc=att, dc=com ? sub ? objectClass=dcObject)"
          "   (dc=research, dc=att, dc=com ? sub ? objectClass=*))")
          .TakeValue();
  fleet.FindServer("research-server")->set_down(true);
  Result<std::vector<Entry>> got = fleet.Evaluate(*q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->empty());
  EXPECT_FALSE(fleet.last_warnings().empty());
}

TEST(DegradationTest, RecoveryRestoresExactResults) {
  DirectoryInstance global = testing::PaperInstance();
  DistributedDirectory fleet = PaperFleet();
  fleet.set_retry_policy(FastRetries());
  QueryPtr q = ParseQuery(
                   "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)"
                   "   (dc=att, dc=com ? sub ? surName=jagadish))")
                   .TakeValue();
  std::vector<Entry> want = ReferenceResult(global, *q);

  DirectoryServer* research = fleet.FindServer("research-server");
  research->set_down(true);
  Result<std::vector<Entry>> degraded = fleet.Evaluate(*q);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_FALSE(fleet.last_warnings().empty());

  // Server comes back: the very next evaluation is exact again, and the
  // stale warnings are gone.
  research->set_down(false);
  Result<std::vector<Entry>> healed = fleet.Evaluate(*q);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(*healed, want);
  EXPECT_TRUE(fleet.last_warnings().empty());
}

TEST(DegradationTest, ParallelFleetDegradesIdentically) {
  DistributedDirectory fleet = PaperFleet();
  fleet.set_retry_policy(FastRetries());
  fleet.set_parallelism(3);
  fleet.FindServer("research-server")->set_down(true);
  QueryPtr q = ParseQuery(
                   "(& (dc=com ? sub ? objectClass=dcObject)"
                   "   (dc=com ? sub ? objectClass=*))")
                   .TakeValue();
  for (int round = 0; round < 5; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    Result<std::vector<Entry>> got = fleet.Evaluate(*q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->size(), 2u);  // the root server's dc entries
    EXPECT_FALSE(fleet.last_warnings().empty());
  }
}

}  // namespace
}  // namespace ndq
