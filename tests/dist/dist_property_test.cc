// Property test: distributed evaluation over an arbitrarily delegated
// fleet agrees with the centralized oracle for random queries in every
// language level.

#include <random>

#include <gtest/gtest.h>

#include "dist/distributed.h"
#include "gen/random_forest.h"
#include "gen/random_query.h"
#include "query/reference.h"

namespace ndq {
namespace {

class DistPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DistPropertyTest, RandomQueriesAgreeAcrossRandomDelegations) {
  std::mt19937 rng(GetParam());
  gen::RandomForestOptions fopt;
  fopt.seed = static_cast<uint32_t>(GetParam());
  fopt.num_entries = 150;
  fopt.num_roots = 4;
  DirectoryInstance global = gen::RandomForest(fopt);

  // Contexts: every root covered, plus random deeper delegations.
  std::vector<std::pair<std::string, std::string>> contexts;
  int server_id = 0;
  std::vector<const Entry*> candidates;
  for (const auto& [key, entry] : global) {
    (void)key;
    if (entry.dn().depth() == 1) {
      contexts.push_back({entry.dn().ToString(),
                          "root" + std::to_string(server_id++)});
    } else if (entry.dn().depth() <= 3) {
      candidates.push_back(&entry);
    }
  }
  for (int i = 0; i < 4 && !candidates.empty(); ++i) {
    const Entry* e = candidates[rng() % candidates.size()];
    contexts.push_back(
        {e->dn().ToString(), "delegate" + std::to_string(server_id++)});
  }

  DistributedDirectory fleet =
      DistributedDirectory::Build(global, contexts).TakeValue();
  size_t total = 0;
  for (const auto& s : fleet.servers()) total += s->num_entries();
  ASSERT_EQ(total, global.size());

  gen::RandomQueryOptions qopt;
  qopt.max_language = Language::kL3;
  for (int i = 0; i < 25; ++i) {
    QueryPtr q = gen::RandomQuery(&rng, global, qopt);
    SCOPED_TRACE(q->ToString());
    Result<std::vector<Entry>> dist_r = fleet.Evaluate(*q);
    Result<std::vector<const Entry*>> ref_r =
        EvaluateReference(*q, global);
    ASSERT_EQ(dist_r.ok(), ref_r.ok());
    if (!dist_r.ok()) continue;
    ASSERT_EQ(dist_r->size(), ref_r->size());
    for (size_t j = 0; j < dist_r->size(); ++j) {
      EXPECT_EQ((*dist_r)[j], *(*ref_r)[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistPropertyTest,
                         ::testing::Values(2, 7, 19));

TEST(DistPropertyTest, ShippedRecordsNeverExceedAtomicResults) {
  // The Sec. 8.3 design property: the network carries atomic RESULTS.
  std::mt19937 rng(5);
  gen::RandomForestOptions fopt;
  fopt.seed = 5;
  fopt.num_entries = 200;
  DirectoryInstance global = gen::RandomForest(fopt);
  std::vector<std::pair<std::string, std::string>> contexts;
  int sid = 0;
  for (const auto& [key, entry] : global) {
    (void)key;
    if (entry.dn().depth() == 1) {
      contexts.push_back({entry.dn().ToString(), "s" + std::to_string(sid++)});
    }
  }
  DistributedDirectory fleet =
      DistributedDirectory::Build(global, contexts).TakeValue();

  gen::RandomQueryOptions qopt;
  qopt.max_language = Language::kL2;
  for (int i = 0; i < 20; ++i) {
    QueryPtr q = gen::RandomQuery(&rng, global, qopt);
    fleet.ResetStats();
    Result<std::vector<Entry>> r = fleet.Evaluate(*q);
    if (!r.ok()) continue;
    // Upper bound: sum of atomic sub-query results over the whole forest.
    uint64_t atomic_total = 0;
    for (const Query* leaf : q->Leaves()) {
      Result<std::vector<const Entry*>> lr =
          EvaluateReference(*leaf, global);
      ASSERT_TRUE(lr.ok());
      atomic_total += lr->size();
    }
    EXPECT_LE(fleet.net_stats().records_shipped, atomic_total)
        << q->ToString();
  }
}

TEST(DistPropertyTest, ParallelEvaluationMatchesSequentialShipping) {
  // set_parallelism changes scheduling only: results, everything the
  // network carried, and the trace shape must match the sequential run.
  std::mt19937 rng(11);
  gen::RandomForestOptions fopt;
  fopt.seed = 11;
  fopt.num_entries = 200;
  DirectoryInstance global = gen::RandomForest(fopt);
  std::vector<std::pair<std::string, std::string>> contexts;
  int sid = 0;
  for (const auto& [key, entry] : global) {
    (void)key;
    if (entry.dn().depth() == 1) {
      contexts.push_back({entry.dn().ToString(), "s" + std::to_string(sid++)});
    }
  }
  DistributedDirectory fleet =
      DistributedDirectory::Build(global, contexts).TakeValue();

  gen::RandomQueryOptions qopt;
  qopt.max_language = Language::kL3;
  for (int i = 0; i < 20; ++i) {
    QueryPtr q = gen::RandomQuery(&rng, global, qopt);
    SCOPED_TRACE(q->ToString());

    fleet.set_parallelism(1);
    ASSERT_EQ(fleet.parallelism(), 1u);
    fleet.ResetStats();
    OpTrace seq_trace;
    Result<std::vector<Entry>> seq = fleet.Evaluate(*q, &seq_trace);
    const uint64_t seq_recs = fleet.net_stats().records_shipped;
    const uint64_t seq_bytes = fleet.net_stats().bytes_shipped;
    const uint64_t seq_msgs = fleet.net_stats().messages;

    fleet.set_parallelism(4);
    ASSERT_EQ(fleet.parallelism(), 4u);
    fleet.ResetStats();
    OpTrace par_trace;
    Result<std::vector<Entry>> par = fleet.Evaluate(*q, &par_trace);

    ASSERT_EQ(seq.ok(), par.ok());
    if (!seq.ok()) continue;
    ASSERT_EQ(seq->size(), par->size());
    for (size_t j = 0; j < seq->size(); ++j) {
      EXPECT_EQ((*seq)[j], (*par)[j]);
    }
    EXPECT_EQ(fleet.net_stats().records_shipped, seq_recs);
    EXPECT_EQ(fleet.net_stats().bytes_shipped, seq_bytes);
    EXPECT_EQ(fleet.net_stats().messages, seq_msgs);
    EXPECT_EQ(par_trace.NodeCount(), seq_trace.NodeCount());
    EXPECT_EQ(par_trace.output_records, seq_trace.output_records);
    EXPECT_EQ(par_trace.shipped_records, seq_trace.shipped_records);
  }
  fleet.set_parallelism(1);
}

}  // namespace
}  // namespace ndq
