// DistributedDirectory::EvaluateBatch: coordinator-side sub-plan sharing
// must return byte-identical results to per-query Evaluate while shipping
// strictly less over the network when the batch repeats sub-plans.

#include "dist/distributed.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/status_matchers.h"
#include "query/parser.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

DistributedDirectory PaperFleet() {
  DirectoryInstance inst = testing::PaperInstance();
  return DistributedDirectory::Build(
             inst, {{"dc=com", "root-server"},
                    {"dc=research, dc=att, dc=com", "research-server"}})
      .TakeValue();
}

std::vector<QueryPtr> BatchPlans() {
  // Two distinct queries, each submitted multiple times, spanning both
  // servers (the surName leaf lives under the delegated subtree too).
  const char* texts[] = {
      "(dc=att, dc=com ? sub ? surName=jagadish)",
      "(& (dc=com ? sub ? objectClass=dcObject)"
      "   (dc=att, dc=com ? sub ? objectClass=*))",
      "(dc=att, dc=com ? sub ? surName=jagadish)",
      "(& (dc=com ? sub ? objectClass=dcObject)"
      "   (dc=att, dc=com ? sub ? objectClass=*))",
      "(dc=att, dc=com ? sub ? surName=jagadish)",
      // A non-atomic query entirely inside the delegated subtree: shipped
      // whole to the research server (query shipping), and only once when
      // batched.
      "(& (dc=research, dc=att, dc=com ? sub ? objectClass=QHP)"
      "   (dc=research, dc=att, dc=com ? sub ? objectClass=*))",
      "(& (dc=research, dc=att, dc=com ? sub ? objectClass=QHP)"
      "   (dc=research, dc=att, dc=com ? sub ? objectClass=*))",
  };
  std::vector<QueryPtr> plans;
  for (const char* text : texts) plans.push_back(ParseQuery(text).TakeValue());
  return plans;
}

TEST(DistBatchTest, BatchMatchesPerQueryEvaluate) {
  std::vector<QueryPtr> plans = BatchPlans();

  DistributedDirectory sequential = PaperFleet();
  std::vector<std::vector<Entry>> want;
  for (const QueryPtr& q : plans) {
    NDQ_ASSERT_OK_AND_ASSIGN(std::vector<Entry> r, sequential.Evaluate(*q));
    want.push_back(std::move(r));
  }

  DistributedDirectory batched = PaperFleet();
  NDQ_ASSERT_OK_AND_ASSIGN(std::vector<std::vector<Entry>> got,
                           batched.EvaluateBatch(plans));
  ASSERT_EQ(got.size(), plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    SCOPED_TRACE(plans[i]->ToString());
    EXPECT_EQ(got[i], want[i]);
  }

  // Sharing at the coordinator: the duplicated queries never re-contact
  // the servers, so the batched fleet moves strictly less than the
  // sequential one on every network axis.
  EXPECT_LT(batched.net_stats().messages.load(),
            sequential.net_stats().messages.load());
  EXPECT_LT(batched.net_stats().queries_shipped.load(),
            sequential.net_stats().queries_shipped.load());
}

TEST(DistBatchTest, EmptyAndSingletonBatches) {
  DistributedDirectory fleet = PaperFleet();
  NDQ_ASSERT_OK_AND_ASSIGN(std::vector<std::vector<Entry>> none,
                           fleet.EvaluateBatch({}));
  EXPECT_TRUE(none.empty());

  QueryPtr q =
      ParseQuery("(dc=att, dc=com ? sub ? surName=jagadish)").TakeValue();
  NDQ_ASSERT_OK_AND_ASSIGN(std::vector<std::vector<Entry>> one,
                           fleet.EvaluateBatch({q}));
  ASSERT_EQ(one.size(), 1u);
  NDQ_ASSERT_OK_AND_ASSIGN(std::vector<Entry> want, fleet.Evaluate(*q));
  EXPECT_EQ(one[0], want);
}

}  // namespace
}  // namespace ndq
