// Durability: a disk image + store manifest round-trips through real
// files, and a reloaded store answers queries identically.

#include <cstdio>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "gen/dif_gen.h"
#include "query/parser.h"
#include "store/entry_store.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

struct TempPath {
  std::string path;
  explicit TempPath(const char* name)
      : path(std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()) +
             "_" + name + ".ndq.tmp") {}
  ~TempPath() { std::remove(path.c_str()); }
};

TEST(PersistenceTest, DiskImageRoundTrip) {
  TempPath tmp("disk");
  SimDisk disk(256);
  PageId a = *disk.Allocate();
  PageId b = *disk.Allocate();
  PageId c = *disk.Allocate();
  std::vector<uint8_t> pa(256, 0x11), pb(256, 0x22);
  ASSERT_TRUE(disk.WritePage(a, pa.data()).ok());
  ASSERT_TRUE(disk.WritePage(b, pb.data()).ok());
  ASSERT_TRUE(disk.Free(c).ok());  // freed slots survive as holes
  ASSERT_TRUE(disk.SaveToFile(tmp.path).ok());

  SimDisk reloaded(256);
  ASSERT_TRUE(reloaded.LoadFromFile(tmp.path).ok());
  EXPECT_EQ(reloaded.live_pages(), 2u);
  std::vector<uint8_t> buf(256);
  ASSERT_TRUE(reloaded.ReadPage(a, buf.data()).ok());
  EXPECT_EQ(buf[0], 0x11);
  ASSERT_TRUE(reloaded.ReadPage(b, buf.data()).ok());
  EXPECT_EQ(buf[10], 0x22);
  EXPECT_FALSE(reloaded.ReadPage(c, buf.data()).ok());  // still freed
  // The freed slot is reusable, preserving the id space.
  EXPECT_EQ(*reloaded.Allocate(), c);
}

TEST(PersistenceTest, PageSizeMismatchRejected) {
  TempPath tmp("disk");
  SimDisk disk(256);
  (void)disk.Allocate();
  ASSERT_TRUE(disk.SaveToFile(tmp.path).ok());
  SimDisk other(512);
  EXPECT_FALSE(other.LoadFromFile(tmp.path).ok());
  SimDisk missing(256);
  EXPECT_EQ(missing.LoadFromFile("no/such/file.img").code(),
            StatusCode::kNotFound);
}

TEST(PersistenceTest, StoreSurvivesReload) {
  TempPath tmp("image");
  std::string manifest;
  // Build, save, and let everything go out of scope.
  {
    DirectoryInstance inst = testing::PaperInstance();
    SimDisk disk;
    EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
    manifest = store.SerializeManifest();
    ASSERT_TRUE(disk.SaveToFile(tmp.path).ok());
  }
  // Reload in a "new process".
  SimDisk disk;
  ASSERT_TRUE(disk.LoadFromFile(tmp.path).ok());
  EntryStore store = EntryStore::FromManifest(&disk, manifest).TakeValue();
  EXPECT_EQ(store.num_entries(), 23u);

  SimDisk scratch;
  Evaluator evaluator(&scratch, &store);
  QueryPtr q = ParseQuery(
                   "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)"
                   "    (g (vd (dc=att, dc=com ? sub ? "
                   "objectClass=SLAPolicyRules)"
                   "           (& (dc=att, dc=com ? sub ? sourcePort=25)"
                   "              (dc=att, dc=com ? sub ? "
                   "objectClass=trafficProfile))"
                   "           SLATPRef)"
                   "       min(SLARulePriority)=min(min(SLARulePriority)))"
                   "    SLADSActRef)")
                   .TakeValue();
  std::vector<Entry> r = evaluator.EvaluateToEntries(*q).TakeValue();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r[0].HasPair("DSActionName", Value::String("denyAll")));
}

TEST(PersistenceTest, CorruptManifestRejected) {
  SimDisk disk;
  DirectoryInstance inst = testing::PaperInstance();
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  std::string manifest = store.SerializeManifest();
  EXPECT_FALSE(EntryStore::FromManifest(&disk, "junk").ok());
  EXPECT_FALSE(
      EntryStore::FromManifest(&disk, manifest.substr(0, 10)).ok());
}

TEST(PersistenceTest, LargerStoreRoundTrip) {
  TempPath tmp("big");
  std::string manifest;
  gen::DifOptions opt;
  opt.num_orgs = 4;
  size_t expected;
  {
    DirectoryInstance inst = gen::GenerateDif(opt);
    expected = inst.size();
    SimDisk disk;
    EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
    manifest = store.SerializeManifest();
    ASSERT_TRUE(disk.SaveToFile(tmp.path).ok());
  }
  SimDisk disk;
  ASSERT_TRUE(disk.LoadFromFile(tmp.path).ok());
  EntryStore store = EntryStore::FromManifest(&disk, manifest).TakeValue();
  EXPECT_EQ(store.num_entries(), expected);
  // Full scan integrity.
  size_t count = 0;
  ASSERT_TRUE(store
                  .ScanRange("", "",
                             [&](std::string_view) -> Status {
                               ++count;
                               return Status::OK();
                             })
                  .ok());
  EXPECT_EQ(count, expected);
}

}  // namespace
}  // namespace ndq
