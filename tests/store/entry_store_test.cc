#include "store/entry_store.h"

#include <random>

#include <gtest/gtest.h>

#include "gen/random_forest.h"
#include "storage/serde.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;
using testing::PaperInstance;

std::vector<std::string> ScanKeys(const EntryStore& store,
                                  std::string_view start,
                                  std::string_view end) {
  std::vector<std::string> keys;
  Status s = store.ScanRange(start, end, [&](std::string_view rec) -> Status {
    keys.emplace_back(PeekEntryKey(rec).ValueOrDie());
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return keys;
}

TEST(EntryStoreTest, BulkLoadAndFullScan) {
  SimDisk disk(512);
  DirectoryInstance inst = PaperInstance();
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  EXPECT_EQ(store.num_entries(), inst.size());
  std::vector<std::string> keys = ScanKeys(store, "", "");
  ASSERT_EQ(keys.size(), inst.size());
  size_t i = 0;
  for (const auto& [key, entry] : inst) {
    (void)entry;
    EXPECT_EQ(keys[i++], key);
  }
}

TEST(EntryStoreTest, SubtreeRangeScan) {
  SimDisk disk(512);
  DirectoryInstance inst = PaperInstance();
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  Dn base = D("ou=networkPolicies, dc=research, dc=att, dc=com");
  std::vector<std::string> keys =
      ScanKeys(store, base.HierKey(), KeySubtreeEnd(base.HierKey()));
  EXPECT_EQ(keys.size(), 13u);
  EXPECT_EQ(keys[0], base.HierKey());
}

TEST(EntryStoreTest, RangeScanReadsOnlyNeededPages) {
  SimDisk disk(256);  // small pages -> many pages
  DirectoryInstance inst = PaperInstance();
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  ASSERT_GT(store.num_pages(), 4u);
  disk.ResetStats();
  Dn base = D("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com");
  ScanKeys(store, base.HierKey(), KeySubtreeEnd(base.HierKey()));
  // Far fewer reads than the whole segment.
  EXPECT_LT(disk.stats().page_reads, store.num_pages());
}

TEST(EntryStoreTest, GetPointLookup) {
  SimDisk disk(512);
  DirectoryInstance inst = PaperInstance();
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  Dn dn = D("QHPName=weekend, uid=jag, ou=userProfiles, dc=research, "
            "dc=att, dc=com");
  std::optional<Entry> e = store.Get(dn.HierKey()).TakeValue();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, *inst.Find(dn));
  EXPECT_FALSE(store.Get(D("dc=void").HierKey()).TakeValue().has_value());
}

TEST(EntryStoreTest, RecordsSpanningPagesAreFound) {
  // Build entries with large attribute payloads so records span pages.
  SimDisk disk(128);
  DirectoryInstance inst(Schema(), /*validate=*/false);
  for (int i = 0; i < 20; ++i) {
    Entry e(D("uid=u" + std::to_string(i) + ", dc=com"));
    e.AddString("blob", std::string(300, 'a' + (i % 26)));
    ASSERT_TRUE(inst.Add(std::move(e)).ok());
  }
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  for (const auto& [key, entry] : inst) {
    std::optional<Entry> got = store.Get(key).TakeValue();
    ASSERT_TRUE(got.has_value()) << entry.dn().ToString();
    EXPECT_EQ(*got, entry);
  }
}

TEST(EntryStoreTest, FromSortedRecordsRejectsDisorder) {
  SimDisk disk(256);
  Entry a(D("dc=aa"));
  Entry b(D("dc=bb"));
  std::string ra, rb;
  SerializeEntry(a, &ra);
  SerializeEntry(b, &rb);
  EXPECT_TRUE(EntryStore::FromSortedRecords(&disk, {ra, rb}).ok());
  EXPECT_FALSE(EntryStore::FromSortedRecords(&disk, {rb, ra}).ok());
  EXPECT_FALSE(EntryStore::FromSortedRecords(&disk, {ra, ra}).ok());  // dup
}

TEST(EntryStoreTest, EmptyStore) {
  SimDisk disk(256);
  DirectoryInstance inst(Schema(), false);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  EXPECT_EQ(store.num_entries(), 0u);
  EXPECT_TRUE(ScanKeys(store, "", "").empty());
  EXPECT_FALSE(store.Get("anything").TakeValue().has_value());
}

TEST(EntryStoreTest, DestroyFreesPages) {
  SimDisk disk(256);
  DirectoryInstance inst = PaperInstance();
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  EXPECT_GT(disk.live_pages(), 0u);
  ASSERT_TRUE(store.Destroy().ok());
  EXPECT_EQ(disk.live_pages(), 0u);
}

TEST(EntryStoreTest, RandomRangeScansMatchInstance) {
  std::mt19937 rng(3);
  SimDisk disk(256);
  DirectoryInstance inst(Schema(), false);
  std::vector<std::string> all_keys;
  for (int i = 0; i < 300; ++i) {
    std::string name = "n" + std::to_string(rng() % 1000);
    Dn dn = (rng() % 2 == 0)
                ? D("uid=" + name + ", dc=com")
                : D("uid=" + name + ", ou=g" + std::to_string(rng() % 10) +
                    ", dc=com");
    Entry e(dn);
    e.AddInt("x", static_cast<int64_t>(rng() % 100));
    if (inst.Add(std::move(e)).ok()) all_keys.push_back(dn.HierKey());
  }
  std::sort(all_keys.begin(), all_keys.end());
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  for (int trial = 0; trial < 50; ++trial) {
    std::string a = all_keys[rng() % all_keys.size()];
    std::string b = all_keys[rng() % all_keys.size()];
    if (b < a) std::swap(a, b);
    std::vector<std::string> got = ScanKeys(store, a, b);
    std::vector<std::string> expect;
    for (const std::string& k : all_keys) {
      if (k >= a && k < b) expect.push_back(k);
    }
    ASSERT_EQ(got, expect) << "range [" << trial << "]";
  }
}

TEST(EntryStoreTest, CompressedAndRawScansAreByteIdentical) {
  // The page format must never change what a scan yields: identical
  // records, in identical order, on an adversarial forest (decorated
  // RDNs, extreme ints) — while the compressed segment occupies fewer
  // pages.
  gen::RandomForestOptions opt;
  opt.seed = 77;
  opt.num_entries = 400;
  opt.max_children = 2;  // deep chains -> long shared HierKey prefixes
  opt.weird_rdn_probability = 0.2;
  opt.extreme_int_probability = 0.1;
  DirectoryInstance inst = gen::RandomForest(opt);

  SimDisk raw_disk(512), comp_disk(512);
  SetPageCompression(false);
  EntryStore raw = EntryStore::BulkLoad(&raw_disk, inst).TakeValue();
  SetPageCompression(true);
  EntryStore comp = EntryStore::BulkLoad(&comp_disk, inst).TakeValue();

  auto scan_all = [](const EntryStore& store) {
    std::vector<std::string> recs;
    Status s =
        store.ScanRange("", "", [&](std::string_view rec) -> Status {
          recs.emplace_back(rec);
          return Status::OK();
        });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return recs;
  };
  EXPECT_EQ(scan_all(raw), scan_all(comp));
  EXPECT_LT(comp.num_pages(), raw.num_pages());

  // Sub-range scans agree too (seeks land on restart points).
  size_t i = 0;
  for (const auto& [key, entry] : inst) {
    (void)entry;
    if (++i % 37 != 0) continue;
    std::string end = KeySubtreeEnd(key);
    EXPECT_EQ(ScanKeys(raw, key, end), ScanKeys(comp, key, end)) << key;
  }
}

TEST(EntryStoreTest, ManifestRoundTripsCompressedSegments) {
  SimDisk disk(512);
  DirectoryInstance inst = PaperInstance();
  SetPageCompression(true);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  ASSERT_NE(store.run().format, PageFormat::kRaw);
  std::string manifest = store.SerializeManifest();
  EXPECT_NE(manifest.find("ndqseg2"), std::string::npos);
  EntryStore back = EntryStore::FromManifest(&disk, manifest).TakeValue();
  EXPECT_EQ(back.run().format, store.run().format);
  EXPECT_EQ(ScanKeys(back, "", ""), ScanKeys(store, "", ""));
}

TEST(EntryStoreTest, RawManifestKeepsLegacyMagic) {
  SimDisk disk(512);
  DirectoryInstance inst = PaperInstance();
  SetPageCompression(false);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  SetPageCompression(true);  // restore the suite default
  std::string manifest = store.SerializeManifest();
  EXPECT_NE(manifest.find("ndqseg1"), std::string::npos);
  EntryStore back = EntryStore::FromManifest(&disk, manifest).TakeValue();
  EXPECT_EQ(back.run().format, PageFormat::kRaw);
  EXPECT_EQ(ScanKeys(back, "", ""), ScanKeys(store, "", ""));
}

}  // namespace
}  // namespace ndq
