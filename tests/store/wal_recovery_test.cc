// WAL unit tests plus the crash-recovery fault campaign: for every k,
// crash the store at I/O operation #k of a mixed mutation/query script
// (covering memtable churn, explicit flushes and compactions) and verify
// that recovery rebuilds EXACTLY the acknowledged mutations — on both the
// simulated and the real-file disk backend.

#include <unistd.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dn.h"
#include "storage/fault_injector.h"
#include "storage/file_disk.h"
#include "storage/serde.h"
#include "store/directory_store.h"
#include "store/wal.h"

namespace ndq {
namespace {

Dn D(const std::string& text) {
  Result<Dn> dn = Dn::Parse(text);
  EXPECT_TRUE(dn.ok()) << text;
  return *dn;
}

Entry MakeEntry(const std::string& dn_text, int rev = 1) {
  Entry e(D(dn_text));
  e.AddClass("testObject");
  e.AddInt("rev", rev);
  return e;
}

// ---------------------------------------------------------------------------
// Wal unit tests
// ---------------------------------------------------------------------------

TEST(WalTest, CreateAppendRecoverRoundTrip) {
  SimDisk disk(512);
  Wal wal(&disk);
  ASSERT_TRUE(wal.Create().ok());

  ASSERT_TRUE(wal.AppendPut("a", "record-a").ok());
  ASSERT_TRUE(wal.AppendPut("b", "record-b").ok());
  ASSERT_TRUE(wal.AppendRemove("a").ok());
  ASSERT_TRUE(wal.AppendPut("c", std::string(900, 'x')).ok());  // spans pages
  EXPECT_EQ(wal.records_appended(), 4u);

  Wal::Recovered out;
  Result<std::unique_ptr<Wal>> rec = Wal::Recover(&disk, &out);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(out.manifests.empty());
  ASSERT_EQ(out.memtable.size(), 3u);
  EXPECT_EQ(out.memtable.at("a"), "");  // tombstone
  EXPECT_EQ(out.memtable.at("b"), "record-b");
  EXPECT_EQ(out.memtable.at("c"), std::string(900, 'x'));
}

TEST(WalTest, SealCheckpointDropsTheSealedPrefix) {
  SimDisk disk(512);
  Wal wal(&disk);
  ASSERT_TRUE(wal.Create().ok());
  ASSERT_TRUE(wal.AppendPut("old", "gone-after-checkpoint").ok());
  ASSERT_TRUE(wal.Seal().ok());
  ASSERT_TRUE(wal.AppendPut("new", "survives").ok());
  const std::vector<std::string> manifests = {"manifest-bytes"};
  ASSERT_TRUE(wal.Checkpoint(manifests).ok());

  Wal::Recovered out;
  Result<std::unique_ptr<Wal>> rec = Wal::Recover(&disk, &out);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(out.manifests, manifests);
  ASSERT_EQ(out.memtable.size(), 1u);
  EXPECT_EQ(out.memtable.at("new"), "survives");
}

TEST(WalTest, RecoveredLogRefusesAppendsUntilCheckpoint) {
  SimDisk disk(512);
  {
    Wal wal(&disk);
    ASSERT_TRUE(wal.Create().ok());
    ASSERT_TRUE(wal.AppendPut("a", "ra").ok());
  }
  Wal::Recovered out;
  Result<std::unique_ptr<Wal>> rec = Wal::Recover(&disk, &out);
  ASSERT_TRUE(rec.ok());
  Wal& wal = **rec;
  EXPECT_TRUE(wal.needs_checkpoint());
  EXPECT_FALSE(wal.AppendPut("b", "rb").ok())
      << "appends before the first checkpoint would be unreachable by a "
         "second replay";
  ASSERT_TRUE(wal.Checkpoint({}).ok());
  EXPECT_FALSE(wal.needs_checkpoint());
  EXPECT_TRUE(wal.AppendPut("b", "rb").ok());
}

TEST(WalTest, FailedAppendIsRolledBackAndNeverReplays) {
  SimDisk disk(512);
  Wal wal(&disk);
  ASSERT_TRUE(wal.Create().ok());
  ASSERT_TRUE(wal.AppendPut("acked", "ra").ok());

  // Fail every write: the append must roll back cleanly.
  FaultInjector injector({FaultInjector::FailNth(1)});
  disk.set_fault_injector(&injector);
  EXPECT_FALSE(wal.AppendPut("unacked", "rb").ok());
  disk.set_fault_injector(nullptr);

  Wal::Recovered out;
  Result<std::unique_ptr<Wal>> rec = Wal::Recover(&disk, &out);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(out.memtable.size(), 1u);
  EXPECT_EQ(out.memtable.count("unacked"), 0u)
      << "a failed (unacknowledged) append must never replay";
  // The log remains usable: the next acknowledged record replays fine.
  ASSERT_TRUE((*rec)->Checkpoint({}).ok());
  ASSERT_TRUE((*rec)->AppendPut("after", "rc").ok());
  Wal::Recovered out2;
  ASSERT_TRUE(Wal::Recover(&disk, &out2).ok());
  EXPECT_EQ(out2.memtable.count("after"), 1u);
}

TEST(WalTest, DestroyAllReturnsEveryPage) {
  SimDisk disk(512);
  Wal wal(&disk);
  ASSERT_TRUE(wal.Create().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(wal.AppendPut("k" + std::to_string(i), "some record").ok());
  }
  ASSERT_TRUE(wal.Seal().ok());
  ASSERT_TRUE(wal.Checkpoint({"m1", "m2"}).ok());
  ASSERT_TRUE(wal.DestroyAll().ok());
  EXPECT_EQ(disk.live_pages(), 0u);
}

// ---------------------------------------------------------------------------
// Durable DirectoryStore round trips
// ---------------------------------------------------------------------------

DirectoryStoreOptions TinyOptions() {
  DirectoryStoreOptions opt;
  opt.memtable_limit = 4;  // force flushes mid-script
  opt.max_segments = 2;    // and compactions
  opt.validate = false;
  return opt;
}

// The mixed mutation/query script the recovery campaign crashes at every
// point of. Steps run in order until one fails (the "crash"); `model` is
// updated only for acknowledged (OK) mutations, so after every prefix it
// holds exactly the state recovery must rebuild.
std::vector<std::function<Status(DirectoryStore*,
                                 std::map<std::string, std::string>*)>>
MutationScript() {
  auto put = [](const std::string& dn, int rev) {
    return [dn, rev](DirectoryStore* store,
                     std::map<std::string, std::string>* model) -> Status {
      Entry e = MakeEntry(dn, rev);
      NDQ_RETURN_IF_ERROR(store->Put(e));
      std::string record;
      SerializeEntry(e, &record);
      (*model)[e.HierKey()] = std::move(record);
      return Status::OK();
    };
  };
  auto remove = [](const std::string& dn) {
    return [dn](DirectoryStore* store,
                std::map<std::string, std::string>* model) -> Status {
      Dn d = *Dn::Parse(dn);
      NDQ_RETURN_IF_ERROR(store->Remove(d));
      model->erase(d.HierKey());
      return Status::OK();
    };
  };
  auto scan = [](DirectoryStore* store,
                 std::map<std::string, std::string>*) -> Status {
    return store->ScanRange("", "",
                            [](std::string_view) { return Status::OK(); });
  };
  auto get = [](const std::string& dn) {
    return [dn](DirectoryStore* store,
                std::map<std::string, std::string>*) -> Status {
      return store->Get(*Dn::Parse(dn)).status();
    };
  };

  return {
      put("dc=test", 1),
      put("cn=a1, dc=test", 1),
      put("cn=a2, dc=test", 1),
      put("cn=a3, dc=test", 1),
      put("cn=a4, dc=test", 1),  // memtable_limit 4: flush fires
      put("cn=a5, dc=test", 1),
      get("cn=a3, dc=test"),
      remove("cn=a2, dc=test"),
      put("ou=g, dc=test", 1),
      put("cn=b1, ou=g, dc=test", 1),
      [](DirectoryStore* store, std::map<std::string, std::string>*) {
        return store->Flush();
      },
      put("cn=a1, dc=test", 2),  // in-place update
      scan,
      [](DirectoryStore* store, std::map<std::string, std::string>*) {
        return store->Compact();
      },
      remove("cn=a5, dc=test"),
      put("cn=c1, dc=test", 1),
      put("cn=c2, dc=test", 1),  // flush fires again
      put("cn=c3, dc=test", 1),
  };
}

// Runs the whole script fault-free and returns the expected final state.
std::map<std::string, std::string> GoldenModel() {
  SimDisk disk(512);
  std::map<std::string, std::string> model;
  Result<std::unique_ptr<DirectoryStore>> store =
      DirectoryStore::CreateDurable(&disk, Schema(), TinyOptions());
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  for (const auto& step : MutationScript()) {
    Status s = step(store->get(), &model);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return model;
}

void ExpectStoreMatchesModel(
    const DirectoryStore& store,
    const std::map<std::string, std::string>& model) {
  EXPECT_EQ(store.num_entries(), model.size());
  auto it = model.begin();
  Status s = store.ScanRange(
      "", "", [&](std::string_view record) -> Status {
        if (it == model.end()) {
          return Status::Corruption("store has extra records");
        }
        if (record != it->second) {
          return Status::Corruption("record mismatch at key offset " +
                                    std::to_string(std::distance(
                                        model.begin(), it)));
        }
        ++it;
        return Status::OK();
      });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(it == model.end()) << "store is missing records";
}

TEST(DurableStoreTest, CleanRestartRecoversEverything) {
  SimDisk disk(512);
  std::map<std::string, std::string> model;
  {
    Result<std::unique_ptr<DirectoryStore>> store =
        DirectoryStore::CreateDurable(&disk, Schema(), TinyOptions());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (const auto& step : MutationScript()) {
      ASSERT_TRUE(step(store->get(), &model).ok());
    }
  }
  Result<std::unique_ptr<DirectoryStore>> rec =
      DirectoryStore::Recover(&disk, Schema(), TinyOptions());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectStoreMatchesModel(**rec, model);

  // The recovered store keeps working — and stays durable.
  ASSERT_TRUE((*rec)->Put(MakeEntry("cn=post, dc=test", 1)).ok());
  std::string record;
  SerializeEntry(MakeEntry("cn=post, dc=test", 1), &record);
  model[MakeEntry("cn=post, dc=test", 1).HierKey()] = record;
  Result<std::unique_ptr<DirectoryStore>> rec2 =
      DirectoryStore::Recover(&disk, Schema(), TinyOptions());
  ASSERT_TRUE(rec2.ok()) << rec2.status().ToString();
  ExpectStoreMatchesModel(**rec2, model);
  ASSERT_TRUE((*rec2)->DestroyAll().ok());
  EXPECT_EQ(disk.live_pages(), 0u);
}

// ---------------------------------------------------------------------------
// The crash-recovery campaign
// ---------------------------------------------------------------------------

// Crash at device operation #k for every k until the script's op stream is
// exhausted. After each crash, recovery (on pristine hardware) must
// rebuild exactly the acknowledged prefix. `make_disk` returns the same
// logical device on every call within one k (reopening is allowed);
// `check_leaks` additionally requires DestroyAll to return every page
// (SimDisk only — FileDisk pages live in the backing file).
void CrashRecoveryCampaign(
    const std::function<Disk*(bool fresh)>& make_disk, bool check_leaks) {
  const auto script = MutationScript();
  uint64_t crashes = 0;
  uint64_t completed = 0;
  for (uint64_t k = 1;; ++k) {
    SCOPED_TRACE("crash at op #" + std::to_string(k));
    Disk* disk = make_disk(/*fresh=*/true);
    ASSERT_NE(disk, nullptr);

    std::map<std::string, std::string> model;
    // Every op class except kFree: failing a Free inside an error-path
    // cleanup orphans the page by design (Wal::lost_pages()), which would
    // make the leak accounting below meaningless. Matches the
    // fault_campaign.h convention.
    FaultInjector injector({FaultInjector::FailNth(
        k, FaultOpBit(FaultOp::kRead) | FaultOpBit(FaultOp::kWrite) |
               FaultOpBit(FaultOp::kAllocate) | kFaultSyncOps)});
    uint64_t fired = 0;
    {
      Result<std::unique_ptr<DirectoryStore>> store =
          DirectoryStore::CreateDurable(disk, Schema(), TinyOptions());
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      disk->set_fault_injector(&injector);
      for (const auto& step : script) {
        if (!step(store->get(), &model).ok()) break;  // the crash point
      }
      disk->set_fault_injector(nullptr);
      fired = injector.faults_fired();
      // The crash: the in-memory store is abandoned (its destructor
      // writes nothing); only the disk image survives.
    }

    Disk* after = make_disk(/*fresh=*/false);
    ASSERT_NE(after, nullptr);
    Result<std::unique_ptr<DirectoryStore>> rec =
        DirectoryStore::Recover(after, Schema(), TinyOptions());
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    ExpectStoreMatchesModel(**rec, model);

    // The recovered store must accept new durable mutations.
    ASSERT_TRUE((*rec)->Put(MakeEntry("cn=post-crash, dc=test", 7)).ok());

    if (check_leaks) {
      ASSERT_TRUE((*rec)->DestroyAll().ok());
      EXPECT_EQ(after->live_pages(), 0u) << "pages leaked across recovery";
    }

    if (fired == 0) {
      ++completed;
      break;  // op stream exhausted: every crash point has been tested
    }
    ++crashes;
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_EQ(completed, 1u);
  // Sanity: the fault-free golden run agrees with the campaign's model
  // bookkeeping (the last iteration ran the whole script).
  EXPECT_FALSE(GoldenModel().empty());
}

TEST(CrashRecoveryCampaignTest, SimDiskEveryCrashPointRecovers) {
  std::unique_ptr<SimDisk> disk;
  CrashRecoveryCampaign(
      [&](bool fresh) -> Disk* {
        if (fresh) disk = std::make_unique<SimDisk>(512);
        return disk.get();
      },
      /*check_leaks=*/true);
}

TEST(CrashRecoveryCampaignTest, FileDiskEveryCrashPointRecovers) {
  const char* dir = std::getenv("NDQ_FILE_DISK_DIR");
  const std::string path = std::string(dir != nullptr ? dir : "/tmp") +
                           "/ndq-walrec-" + std::to_string(::getpid()) +
                           ".pages";
  std::unique_ptr<FileDisk> disk;
  CrashRecoveryCampaign(
      [&](bool fresh) -> Disk* {
        if (fresh) {
          disk.reset();
          ::unlink(path.c_str());
          disk = std::make_unique<FileDisk>(path, 512);
        } else {
          // Reopen from the file: nothing survives but the bytes synced
          // to it, exactly like a process restart.
          disk = std::make_unique<FileDisk>(path, 512,
                                            /*open_existing=*/true);
        }
        return disk->init_status().ok() ? disk.get() : nullptr;
      },
      /*check_leaks=*/false);
  disk.reset();
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace ndq
