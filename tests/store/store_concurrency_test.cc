// Mixed readers and writers through the Engine front door. Built for the
// thread sanitizer: reader sessions evaluate queries while another session
// applies update batches, and every query must observe ONE consistent
// store version (the snapshot pinned at submit time) — never a torn state
// mixing two versions.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/status_matchers.h"
#include "engine/engine.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

Schema TestSchema() {
  Schema schema = testing::PaperSchema();
  EXPECT_TRUE(schema.AddAttribute("rev", TypeKind::kInt).ok());
  if (!schema.HasAttribute("cn")) {
    EXPECT_TRUE(schema.AddAttribute("cn", TypeKind::kString).ok());
  }
  EXPECT_TRUE(schema.AddClass("flagObject", {"cn", "rev"}).ok());
  EXPECT_TRUE(schema.AddClass("churnObject", {"cn", "rev"}).ok());
  return schema;
}

Entry FlagEntry(int rev) {
  Entry e(testing::D("cn=flag, dc=att, dc=com"));
  e.AddClass("flagObject");
  e.AddString("cn", "flag");
  e.AddInt("rev", rev);
  return e;
}

Entry ChurnEntry(int i) {
  const std::string name = "churn" + std::to_string(i);
  Entry e(testing::D("cn=" + name + ", dc=att, dc=com"));
  e.AddClass("churnObject");
  e.AddString("cn", name);
  e.AddInt("rev", i);
  return e;
}

// Loads the paper instance into an owning-mode engine via the public
// update path.
void LoadPaper(Session& session) {
  UpdateBatch batch;
  for (const auto& [key, entry] : testing::PaperInstance()) {
    batch.Put(entry);
  }
  UpdateResult res = session.Apply(batch);
  ASSERT_TRUE(res.ok()) << res.status.ToString();
  ASSERT_EQ(res.applied, batch.size());
}

TEST(StoreConcurrencyTest, QueriesNeverObserveTornVersions) {
  // The flag entry alternates between rev=1 and rev=2. A single entry
  // can never satisfy both, so the conjunction below is empty in EVERY
  // consistent snapshot; a non-empty result means one query evaluated
  // its two operands against different store versions.
  constexpr const char* kTornDetector =
      "(& (dc=att, dc=com ? sub ? rev=1)"
      "   (dc=att, dc=com ? sub ? rev=2))";
  constexpr const char* kSubtree = "(dc=com ? sub ? objectClass=*)";

  EngineOptions options;
  options.exec.parallelism = 3;  // shared pool: maintenance + queries
  Engine engine(TestSchema(), options);
  Session loader = engine.OpenSession();
  LoadPaper(loader);
  ASSERT_TRUE(loader.Apply([] {
                UpdateBatch b;
                b.Put(FlagEntry(1));
                return b;
              }())
                  .ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_ok{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&engine, &stop, &queries_ok, kTornDetector,
                          kSubtree, r] {
      Session session = engine.OpenSession();
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const char* text = (++i + r) % 2 == 0 ? kTornDetector : kSubtree;
        QueryOutcome out = session.Run(text);
        if (!out.status.ok()) {
          ADD_FAILURE() << "query failed: " << out.status.ToString();
          return;
        }
        if (text == kTornDetector) {
          EXPECT_TRUE(out.entries.empty())
              << "torn snapshot: one query saw two store versions";
        }
        queries_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Session writer = engine.OpenSession();
  for (int i = 0; i < 150; ++i) {
    UpdateBatch batch;
    batch.Put(FlagEntry(i % 2 == 0 ? 2 : 1));
    // Churn a small subtree so flushes/compactions fire while queries
    // are in flight.
    batch.Put(ChurnEntry(i % 8));
    if (i % 4 == 3) batch.Remove(ChurnEntry(i % 8).dn());
    UpdateResult res = writer.Apply(batch);
    EXPECT_TRUE(res.ok()) << res.status.ToString();
  }
  stop = true;
  for (std::thread& t : readers) t.join();
  EXPECT_GT(queries_ok.load(), 0u);

  // Quiesced store answers the detector with the final consistent state.
  QueryOutcome out = writer.Run(
      "(& (dc=att, dc=com ? sub ? rev=1)"
      "   (dc=att, dc=com ? sub ? rev=2))");
  NDQ_ASSERT_OK(out.status);
  EXPECT_TRUE(out.entries.empty());
}

TEST(StoreConcurrencyTest, ApplyReportsPerOpStatusesAndAppliedCount) {
  Engine engine(TestSchema());
  Session session = engine.OpenSession();
  LoadPaper(session);

  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Add(FlagEntry(1)));       // OK
  batch.ops.push_back(UpdateOp::Add(FlagEntry(1)));       // AlreadyExists
  batch.ops.push_back(UpdateOp::Put(FlagEntry(2)));       // OK (replace)
  batch.ops.push_back(
      UpdateOp::Remove(testing::D("cn=nope, dc=att, dc=com")));  // NotFound
  batch.ops.push_back(
      UpdateOp::Remove(FlagEntry(1).dn()));               // OK

  UpdateResult res = session.Apply(batch);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.applied, 3u);
  ASSERT_EQ(res.op_status.size(), 5u);
  EXPECT_TRUE(res.op_status[0].ok());
  EXPECT_EQ(res.op_status[1].code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(res.op_status[2].ok());
  EXPECT_EQ(res.op_status[3].code(), StatusCode::kNotFound);
  EXPECT_TRUE(res.op_status[4].ok());
  // The batch status is the FIRST error.
  EXPECT_EQ(res.status.code(), StatusCode::kAlreadyExists);

  // Later OK ops really landed: the flag entry is gone again.
  QueryOutcome out =
      session.Run("(dc=att, dc=com ? sub ? objectClass=flagObject)");
  NDQ_ASSERT_OK(out.status);
  EXPECT_TRUE(out.entries.empty());
}

TEST(StoreConcurrencyTest, MutationsInvalidateDerivedResults) {
  // The same query resubmitted after an update must see the new state
  // even when its operand was cached (version-stamped cache keys).
  Engine engine(TestSchema());
  Session session = engine.OpenSession();
  LoadPaper(session);
  constexpr const char* kQuery =
      "(dc=att, dc=com ? sub ? objectClass=churnObject)";

  QueryOutcome before = session.Run(kQuery);
  NDQ_ASSERT_OK(before.status);
  EXPECT_TRUE(before.entries.empty());

  UpdateBatch batch;
  batch.Put(ChurnEntry(1));
  batch.Put(ChurnEntry(2));
  UpdateResult put_res = session.Apply(batch);
  ASSERT_TRUE(put_res.ok()) << put_res.status.ToString();

  QueryOutcome after = session.Run(kQuery);
  NDQ_ASSERT_OK(after.status);
  EXPECT_EQ(after.entries.size(), 2u);

  UpdateBatch removal;
  removal.Remove(ChurnEntry(2).dn());
  ASSERT_TRUE(session.Apply(removal).ok());

  QueryOutcome final_out = session.Run(kQuery);
  NDQ_ASSERT_OK(final_out.status);
  EXPECT_EQ(final_out.entries.size(), 1u);
}

}  // namespace
}  // namespace ndq
