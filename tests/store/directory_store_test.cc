#include "store/directory_store.h"

#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "query/parser.h"
#include "query/reference.h"
#include "storage/fault_injector.h"
#include "storage/serde.h"
#include "testing/fault_campaign.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;
using testing::PaperInstance;
using testing::PaperSchema;

DirectoryStoreOptions SmallOptions() {
  DirectoryStoreOptions opt;
  opt.memtable_limit = 8;  // force frequent flushes
  opt.max_segments = 4;    // and compactions
  return opt;
}

Status LoadPaper(DirectoryStore* store) {
  DirectoryInstance inst = PaperInstance();
  for (const auto& [key, entry] : inst) {
    (void)key;
    NDQ_RETURN_IF_ERROR(store->Add(entry));
  }
  return Status::OK();
}

TEST(DirectoryStoreTest, AddGetRemove) {
  SimDisk disk(512);
  DirectoryStore store(&disk, PaperSchema(), SmallOptions());
  ASSERT_TRUE(LoadPaper(&store).ok());
  EXPECT_EQ(store.num_entries(), 23u);

  Dn jag = D("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com");
  std::optional<Entry> e = store.Get(jag).TakeValue();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->HasClass("TOPSSubscriber"));

  // Duplicate add rejected.
  Entry dup(D("dc=com"));
  dup.AddClass("dcObject");
  dup.AddString("dc", "com");
  EXPECT_EQ(store.Add(dup).code(), StatusCode::kAlreadyExists);

  // Remove with descendants rejected; leaf removal works.
  EXPECT_FALSE(store.Remove(jag).ok());
  Dn leaf = D(
      "CANumber=9733608750, QHPName=workinghours, uid=jag, ou=userProfiles, "
      "dc=research, dc=att, dc=com");
  EXPECT_TRUE(store.Remove(leaf).ok());
  EXPECT_FALSE(store.Get(leaf).TakeValue().has_value());
  EXPECT_EQ(store.Remove(leaf).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.num_entries(), 22u);
}

TEST(DirectoryStoreTest, PutReplacesAcrossSegments) {
  SimDisk disk(512);
  DirectoryStore store(&disk, PaperSchema(), SmallOptions());
  ASSERT_TRUE(LoadPaper(&store).ok());
  ASSERT_TRUE(store.Flush().ok());

  Dn qhp = D("QHPName=weekend, uid=jag, ou=userProfiles, dc=research, "
             "dc=att, dc=com");
  Entry updated(qhp);
  updated.AddClass("QHP");
  updated.AddString("QHPName", "weekend");
  updated.AddInt("priority", 9);  // demoted
  ASSERT_TRUE(store.Put(updated).ok());
  std::optional<Entry> e = store.Get(qhp).TakeValue();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->HasPair("priority", Value::Int(9)));
  EXPECT_FALSE(e->HasPair("priority", Value::Int(1)));
  EXPECT_EQ(store.num_entries(), 23u);  // replaced, not added
}

TEST(DirectoryStoreTest, ScanHidesTombstonesAndShadows) {
  SimDisk disk(512);
  DirectoryStore store(&disk, PaperSchema(), SmallOptions());
  ASSERT_TRUE(LoadPaper(&store).ok());
  ASSERT_TRUE(store.Flush().ok());
  Dn leaf = D(
      "CANumber=9733608751, QHPName=workinghours, uid=jag, ou=userProfiles, "
      "dc=research, dc=att, dc=com");
  ASSERT_TRUE(store.Remove(leaf).ok());

  size_t count = 0;
  std::string prev;
  ASSERT_TRUE(store
                  .ScanRange("", "",
                             [&](std::string_view rec) -> Status {
                               std::string key(
                                   PeekEntryKey(rec).ValueOrDie());
                               EXPECT_LT(prev, key);  // ordered, no dups
                               prev = key;
                               ++count;
                               return Status::OK();
                             })
                  .ok());
  EXPECT_EQ(count, 22u);
}

TEST(DirectoryStoreTest, CompactionPreservesContent) {
  SimDisk disk(512);
  DirectoryStore store(&disk, PaperSchema(), SmallOptions());
  ASSERT_TRUE(LoadPaper(&store).ok());
  // Many flushes happened (memtable_limit=8). Compact everything.
  ASSERT_TRUE(store.Compact().ok());
  EXPECT_LE(store.num_segments(), 1u);
  DirectoryInstance inst = PaperInstance();
  for (const auto& [key, entry] : inst) {
    (void)key;
    std::optional<Entry> got = store.Get(entry.dn()).TakeValue();
    ASSERT_TRUE(got.has_value()) << entry.dn().ToString();
    EXPECT_EQ(*got, entry);
  }
}

TEST(DirectoryStoreTest, QueriesRunOverMutableStore) {
  // The evaluation engine works over the LSM exactly as over a bulk-loaded
  // segment: run a paper query after updates.
  SimDisk disk(512);
  DirectoryStore store(&disk, PaperSchema(), SmallOptions());
  ASSERT_TRUE(LoadPaper(&store).ok());

  // Add a new subscriber with 3 QHPs dynamically.
  Dn base = D("ou=userProfiles, dc=research, dc=att, dc=com");
  Dn milo = base.Child(Rdn::Single("uid", "milo").TakeValue());
  Entry sub(milo);
  sub.AddClass("TOPSSubscriber");
  sub.AddString("uid", "milo");
  ASSERT_TRUE(store.Add(sub).ok());
  for (int i = 0; i < 3; ++i) {
    Dn qdn = milo.Child(Rdn::Single("QHPName", "q" + std::to_string(i))
                            .TakeValue());
    Entry q(qdn);
    q.AddClass("QHP");
    q.AddString("QHPName", "q" + std::to_string(i));
    q.AddInt("priority", i + 1);
    ASSERT_TRUE(store.Add(q).ok());
  }

  SimDisk scratch(512);
  Evaluator evaluator(&scratch, &store);
  QueryPtr q = ParseQuery(
                   "(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)"
                   "   (dc=att, dc=com ? sub ? objectClass=QHP)"
                   "   count($2) > 2)")
                   .TakeValue();
  std::vector<Entry> result = evaluator.EvaluateToEntries(*q).TakeValue();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].dn(), milo);
}

TEST(DirectoryStoreTest, RandomOperationsMatchModel) {
  std::mt19937 rng(77);
  SimDisk disk(512);
  DirectoryStore store(&disk, Schema(), [] {
    DirectoryStoreOptions o;
    o.memtable_limit = 16;
    o.max_segments = 3;
    o.validate = false;
    return o;
  }());
  std::map<std::string, Entry> model;

  for (int step = 0; step < 600; ++step) {
    int uid = rng() % 60;
    Dn dn = D("uid=u" + std::to_string(uid) + ", dc=com");
    int action = rng() % 3;
    if (action == 0) {  // put
      Entry e(dn);
      e.AddInt("x", static_cast<int64_t>(rng() % 100));
      ASSERT_TRUE(store.Put(e).ok());
      model[dn.HierKey()] = e;
    } else if (action == 1) {  // remove
      Status s = store.Remove(dn);
      if (model.count(dn.HierKey()) > 0) {
        ASSERT_TRUE(s.ok());
        model.erase(dn.HierKey());
      } else {
        ASSERT_EQ(s.code(), StatusCode::kNotFound);
      }
    } else {  // get
      std::optional<Entry> got = store.Get(dn).TakeValue();
      auto it = model.find(dn.HierKey());
      ASSERT_EQ(got.has_value(), it != model.end());
      if (got.has_value()) {
        ASSERT_EQ(*got, it->second);
      }
    }
    ASSERT_EQ(store.num_entries(), model.size());
  }
  // Final full scan matches the model exactly.
  std::vector<std::string> keys;
  ASSERT_TRUE(store
                  .ScanRange("", "",
                             [&](std::string_view rec) -> Status {
                               keys.emplace_back(
                                   PeekEntryKey(rec).ValueOrDie());
                               return Status::OK();
                             })
                  .ok());
  ASSERT_EQ(keys.size(), model.size());
  size_t i = 0;
  for (const auto& [key, entry] : model) {
    (void)entry;
    EXPECT_EQ(keys[i++], key);
  }
}

// Where a key physically lives when a mutation hits it.
enum class Placement { kActive, kFlushed, kCompacted };

const char* PlacementName(Placement p) {
  switch (p) {
    case Placement::kActive:
      return "active-memtable";
    case Placement::kFlushed:
      return "flushed-segment";
    case Placement::kCompacted:
      return "compacted-segment";
  }
  return "?";
}

TEST(DirectoryStoreTest, MutationMatrixAcrossPlacements) {
  // Every mutation kind against a key in every physical location: the
  // LSM read path (active > frozen > segments) must make placement
  // invisible to Add/Put/Remove semantics.
  for (Placement p :
       {Placement::kActive, Placement::kFlushed, Placement::kCompacted}) {
    SCOPED_TRACE(PlacementName(p));
    SimDisk disk(512);
    DirectoryStoreOptions opt;
    opt.memtable_limit = 64;  // no threshold maintenance interference
    opt.validate = false;
    DirectoryStore store(&disk, Schema(), opt);

    Dn parent = D("dc=com");
    Dn child = D("uid=u1, dc=com");
    Entry pe(parent);
    pe.AddInt("x", 1);
    Entry ce(child);
    ce.AddInt("x", 2);
    ASSERT_TRUE(store.Add(pe).ok());
    ASSERT_TRUE(store.Add(ce).ok());
    switch (p) {
      case Placement::kActive:
        break;
      case Placement::kFlushed:
        ASSERT_TRUE(store.Flush().ok());
        break;
      case Placement::kCompacted:
        ASSERT_TRUE(store.Flush().ok());
        ASSERT_TRUE(store.Compact().ok());
        break;
    }

    // Add over a bound dn: rejected, store unchanged.
    EXPECT_EQ(store.Add(ce).code(), StatusCode::kAlreadyExists);
    EXPECT_EQ(store.num_entries(), 2u);

    // Put replaces in place wherever the old version lives.
    Entry ce2(child);
    ce2.AddInt("x", 99);
    ASSERT_TRUE(store.Put(ce2).ok());
    std::optional<Entry> got = store.Get(child).TakeValue();
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->HasPair("x", Value::Int(99)));
    EXPECT_EQ(store.num_entries(), 2u);

    // Interior removal rejected while the child exists, in any placement.
    EXPECT_EQ(store.Remove(parent).code(), StatusCode::kInvalidArgument);

    // Leaf removal tombstones across segments.
    ASSERT_TRUE(store.Remove(child).ok());
    EXPECT_FALSE(store.Get(child).TakeValue().has_value());
    EXPECT_EQ(store.num_entries(), 1u);
    EXPECT_EQ(store.Remove(child).code(), StatusCode::kNotFound);

    // Now the parent is a leaf: removal drains the store.
    ASSERT_TRUE(store.Remove(parent).ok());
    EXPECT_EQ(store.num_entries(), 0u);
  }
}

TEST(DirectoryStoreTest, SnapshotIgnoresLaterMutations) {
  SimDisk disk(512);
  DirectoryStore store(&disk, PaperSchema(), SmallOptions());
  ASSERT_TRUE(LoadPaper(&store).ok());
  const uint64_t before = store.num_entries();

  std::shared_ptr<const EntrySource> snap = store.PinSnapshot();
  ASSERT_NE(snap, nullptr);
  const uint64_t pinned_version = snap->version();

  Dn milo = D("ou=userProfiles, dc=research, dc=att, dc=com")
                .Child(Rdn::Single("uid", "milo").TakeValue());
  Entry sub(milo);
  sub.AddClass("TOPSSubscriber");
  sub.AddString("uid", "milo");
  ASSERT_TRUE(store.Add(sub).ok());
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_TRUE(store.Compact().ok());

  // The snapshot still reads the pre-mutation version — including the
  // segments the compaction replaced, kept alive by its epoch pin.
  EXPECT_EQ(snap->num_entries(), before);
  EXPECT_EQ(snap->version(), pinned_version);
  bool saw_milo = false;
  ASSERT_TRUE(snap->ScanRange("", "",
                              [&](std::string_view rec) -> Status {
                                if (PeekEntryKey(rec).ValueOrDie() ==
                                    milo.HierKey()) {
                                  saw_milo = true;
                                }
                                return Status::OK();
                              })
                  .ok());
  EXPECT_FALSE(saw_milo);

  // The store itself has moved on.
  EXPECT_EQ(store.num_entries(), before + 1);
  EXPECT_GT(store.version(), pinned_version);
  snap.reset();
}

TEST(DirectoryStoreTest, StatsRefreshOnCompaction) {
  // Churn leaves shadowed records and tombstones in the segment stack;
  // the estimates stay upper bounds throughout, and compaction resets
  // them to exact.
  SimDisk disk(512);
  DirectoryStoreOptions opt;
  opt.memtable_limit = 8;
  opt.max_segments = 16;  // keep segments around: churn must accumulate
  opt.validate = false;
  DirectoryStore store(&disk, Schema(), opt);

  for (int i = 0; i < 20; ++i) {
    Entry e(D("uid=u" + std::to_string(i) + ", dc=com"));
    e.AddInt("x", i);
    ASSERT_TRUE(store.Put(e).ok());
  }
  ASSERT_TRUE(store.Flush().ok());
  for (int i = 5; i < 20; ++i) {
    ASSERT_TRUE(store.Remove(D("uid=u" + std::to_string(i) + ", dc=com")).ok());
  }
  for (int i = 5; i < 10; ++i) {  // re-add a few: shadow the tombstones
    Entry e(D("uid=u" + std::to_string(i) + ", dc=com"));
    e.AddInt("x", 100 + i);
    ASSERT_TRUE(store.Put(e).ok());
  }
  ASSERT_TRUE(store.Flush().ok());

  const uint64_t live = store.num_entries();
  ASSERT_EQ(live, 10u);
  const uint64_t churned = store.EstimateRangeRecords("", "");
  EXPECT_GE(churned, live) << "estimates must stay upper bounds";
  EXPECT_GT(churned, live) << "churn should have inflated the estimate";

  ASSERT_TRUE(store.Compact().ok());
  const uint64_t compacted = store.EstimateRangeRecords("", "");
  EXPECT_EQ(compacted, live)
      << "a single compacted segment with an empty memtable estimates "
         "exactly";
  EXPECT_LT(compacted, churned);
  // The rebuilt cardinality statistics agree with emptiness proofs:
  // removed-for-good keys estimate 0 through the stats.
  ASSERT_NE(store.stats(), nullptr);
}

TEST(DirectoryStoreTest, CompactFailureLeavesStoreIntact) {
  // Regression: a compaction that fails mid-merge (allocate/write/read)
  // must leave the published state untouched, free every page of the
  // half-built segment, and succeed on retry.
  for (uint64_t k = 1;; ++k) {
    SCOPED_TRACE("fail op #" + std::to_string(k));
    SimDisk disk(512);
    DirectoryStoreOptions opt;
    opt.memtable_limit = 8;
    opt.max_segments = 16;
    opt.validate = false;
    DirectoryStore store(&disk, Schema(), opt);
    std::map<std::string, std::string> golden;
    for (int i = 0; i < 24; ++i) {
      Entry e(D("uid=u" + std::to_string(i) + ", dc=com"));
      e.AddInt("x", i);
      ASSERT_TRUE(store.Put(e).ok());
      std::string rec;
      SerializeEntry(e, &rec);
      golden[e.HierKey()] = std::move(rec);
      if (i % 7 == 6) ASSERT_TRUE(store.Flush().ok());
    }
    ASSERT_TRUE(store.Flush().ok());
    ASSERT_GE(store.num_segments(), 2u);
    const size_t baseline = disk.live_pages();

    // No free faults: a failed Free in the post-install destroy phase
    // strands that page by design (best-effort destroy, aggregated
    // status), which is exactly what the leak assertion below must not
    // conflate with a half-built segment leak.
    FaultInjector injector({FaultInjector::FailNth(
        k, FaultOpBit(FaultOp::kRead) | FaultOpBit(FaultOp::kWrite) |
               FaultOpBit(FaultOp::kAllocate))});
    disk.set_fault_injector(&injector);
    Status s = store.Compact();
    disk.set_fault_injector(nullptr);
    const uint64_t fired = injector.faults_fired();

    auto check_content = [&] {
      auto it = golden.begin();
      Status scan = store.ScanRange(
          "", "", [&](std::string_view rec) -> Status {
            if (it == golden.end() || rec != it->second) {
              return Status::Corruption("content diverged");
            }
            ++it;
            return Status::OK();
          });
      ASSERT_TRUE(scan.ok()) << scan.ToString();
      EXPECT_TRUE(it == golden.end());
    };
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
      EXPECT_GT(fired, 0u);
      check_content();
      EXPECT_EQ(disk.live_pages(), baseline)
          << "failed compaction leaked half-built segment pages";
      // Retry compacts clean.
      Status retry = store.Compact();
      ASSERT_TRUE(retry.ok()) << retry.ToString();
    }
    check_content();
    EXPECT_LE(store.num_segments(), 1u);
    if (fired == 0) break;  // swept past the last compaction I/O
  }
}

TEST(DirectoryStoreTest, MutationScriptFaultCampaign) {
  // The fail-op-#k sweep over a full mutation script: every fault either
  // surfaces as a clean Unavailable (store rebuildable, no leaked pages,
  // retry byte-identical) or is absorbed with identical results.
  SimDisk disk(512);
  auto workload = [&disk]() -> Result<std::vector<Entry>> {
    DirectoryStoreOptions opt;
    opt.memtable_limit = 4;
    opt.max_segments = 2;
    opt.validate = false;
    DirectoryStore store(&disk, Schema(), opt);
    auto script = [&]() -> Status {
      for (int i = 0; i < 10; ++i) {
        Entry e(D("uid=u" + std::to_string(i) + ", dc=com"));
        e.AddInt("x", i);
        NDQ_RETURN_IF_ERROR(store.Put(e));
      }
      NDQ_RETURN_IF_ERROR(store.Remove(D("uid=u3, dc=com")));
      NDQ_RETURN_IF_ERROR(store.Flush());
      for (int i = 4; i < 7; ++i) {
        Entry e(D("uid=u" + std::to_string(i) + ", dc=com"));
        e.AddInt("x", 100 + i);
        NDQ_RETURN_IF_ERROR(store.Put(e));
      }
      NDQ_RETURN_IF_ERROR(store.Compact());
      NDQ_RETURN_IF_ERROR(store.Remove(D("uid=u9, dc=com")));
      return Status::OK();
    };
    Status s = script();
    std::vector<Entry> out;
    if (s.ok()) {
      s = store.ScanRange("", "", [&](std::string_view rec) -> Status {
        NDQ_ASSIGN_OR_RETURN(Entry e, DeserializeEntry(rec));
        out.push_back(std::move(e));
        return Status::OK();
      });
    }
    // Tear down even after a fault: the campaign checks the live-page
    // baseline after every run.
    Status destroy = store.DestroyAll();
    NDQ_RETURN_IF_ERROR(s);
    NDQ_RETURN_IF_ERROR(destroy);
    return out;
  };
  testing::FaultCampaignReport report;
  testing::RunFaultCampaign(&disk, workload, /*after_run=*/nullptr, {},
                            &report);
  EXPECT_GT(report.clean_failures + report.absorbed_successes, 0u);
}

}  // namespace
}  // namespace ndq
