#include "store/directory_store.h"

#include <random>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "query/parser.h"
#include "query/reference.h"
#include "storage/serde.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;
using testing::PaperInstance;
using testing::PaperSchema;

DirectoryStoreOptions SmallOptions() {
  DirectoryStoreOptions opt;
  opt.memtable_limit = 8;  // force frequent flushes
  opt.max_segments = 4;    // and compactions
  return opt;
}

Status LoadPaper(DirectoryStore* store) {
  DirectoryInstance inst = PaperInstance();
  for (const auto& [key, entry] : inst) {
    (void)key;
    NDQ_RETURN_IF_ERROR(store->Add(entry));
  }
  return Status::OK();
}

TEST(DirectoryStoreTest, AddGetRemove) {
  SimDisk disk(512);
  DirectoryStore store(&disk, PaperSchema(), SmallOptions());
  ASSERT_TRUE(LoadPaper(&store).ok());
  EXPECT_EQ(store.num_entries(), 23u);

  Dn jag = D("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com");
  std::optional<Entry> e = store.Get(jag).TakeValue();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->HasClass("TOPSSubscriber"));

  // Duplicate add rejected.
  Entry dup(D("dc=com"));
  dup.AddClass("dcObject");
  dup.AddString("dc", "com");
  EXPECT_EQ(store.Add(dup).code(), StatusCode::kAlreadyExists);

  // Remove with descendants rejected; leaf removal works.
  EXPECT_FALSE(store.Remove(jag).ok());
  Dn leaf = D(
      "CANumber=9733608750, QHPName=workinghours, uid=jag, ou=userProfiles, "
      "dc=research, dc=att, dc=com");
  EXPECT_TRUE(store.Remove(leaf).ok());
  EXPECT_FALSE(store.Get(leaf).TakeValue().has_value());
  EXPECT_EQ(store.Remove(leaf).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.num_entries(), 22u);
}

TEST(DirectoryStoreTest, PutReplacesAcrossSegments) {
  SimDisk disk(512);
  DirectoryStore store(&disk, PaperSchema(), SmallOptions());
  ASSERT_TRUE(LoadPaper(&store).ok());
  ASSERT_TRUE(store.Flush().ok());

  Dn qhp = D("QHPName=weekend, uid=jag, ou=userProfiles, dc=research, "
             "dc=att, dc=com");
  Entry updated(qhp);
  updated.AddClass("QHP");
  updated.AddString("QHPName", "weekend");
  updated.AddInt("priority", 9);  // demoted
  ASSERT_TRUE(store.Put(updated).ok());
  std::optional<Entry> e = store.Get(qhp).TakeValue();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->HasPair("priority", Value::Int(9)));
  EXPECT_FALSE(e->HasPair("priority", Value::Int(1)));
  EXPECT_EQ(store.num_entries(), 23u);  // replaced, not added
}

TEST(DirectoryStoreTest, ScanHidesTombstonesAndShadows) {
  SimDisk disk(512);
  DirectoryStore store(&disk, PaperSchema(), SmallOptions());
  ASSERT_TRUE(LoadPaper(&store).ok());
  ASSERT_TRUE(store.Flush().ok());
  Dn leaf = D(
      "CANumber=9733608751, QHPName=workinghours, uid=jag, ou=userProfiles, "
      "dc=research, dc=att, dc=com");
  ASSERT_TRUE(store.Remove(leaf).ok());

  size_t count = 0;
  std::string prev;
  ASSERT_TRUE(store
                  .ScanRange("", "",
                             [&](std::string_view rec) -> Status {
                               std::string key(
                                   PeekEntryKey(rec).ValueOrDie());
                               EXPECT_LT(prev, key);  // ordered, no dups
                               prev = key;
                               ++count;
                               return Status::OK();
                             })
                  .ok());
  EXPECT_EQ(count, 22u);
}

TEST(DirectoryStoreTest, CompactionPreservesContent) {
  SimDisk disk(512);
  DirectoryStore store(&disk, PaperSchema(), SmallOptions());
  ASSERT_TRUE(LoadPaper(&store).ok());
  // Many flushes happened (memtable_limit=8). Compact everything.
  ASSERT_TRUE(store.Compact().ok());
  EXPECT_LE(store.num_segments(), 1u);
  DirectoryInstance inst = PaperInstance();
  for (const auto& [key, entry] : inst) {
    (void)key;
    std::optional<Entry> got = store.Get(entry.dn()).TakeValue();
    ASSERT_TRUE(got.has_value()) << entry.dn().ToString();
    EXPECT_EQ(*got, entry);
  }
}

TEST(DirectoryStoreTest, QueriesRunOverMutableStore) {
  // The evaluation engine works over the LSM exactly as over a bulk-loaded
  // segment: run a paper query after updates.
  SimDisk disk(512);
  DirectoryStore store(&disk, PaperSchema(), SmallOptions());
  ASSERT_TRUE(LoadPaper(&store).ok());

  // Add a new subscriber with 3 QHPs dynamically.
  Dn base = D("ou=userProfiles, dc=research, dc=att, dc=com");
  Dn milo = base.Child(Rdn::Single("uid", "milo").TakeValue());
  Entry sub(milo);
  sub.AddClass("TOPSSubscriber");
  sub.AddString("uid", "milo");
  ASSERT_TRUE(store.Add(sub).ok());
  for (int i = 0; i < 3; ++i) {
    Dn qdn = milo.Child(Rdn::Single("QHPName", "q" + std::to_string(i))
                            .TakeValue());
    Entry q(qdn);
    q.AddClass("QHP");
    q.AddString("QHPName", "q" + std::to_string(i));
    q.AddInt("priority", i + 1);
    ASSERT_TRUE(store.Add(q).ok());
  }

  SimDisk scratch(512);
  Evaluator evaluator(&scratch, &store);
  QueryPtr q = ParseQuery(
                   "(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)"
                   "   (dc=att, dc=com ? sub ? objectClass=QHP)"
                   "   count($2) > 2)")
                   .TakeValue();
  std::vector<Entry> result = evaluator.EvaluateToEntries(*q).TakeValue();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].dn(), milo);
}

TEST(DirectoryStoreTest, RandomOperationsMatchModel) {
  std::mt19937 rng(77);
  SimDisk disk(512);
  DirectoryStore store(&disk, Schema(), [] {
    DirectoryStoreOptions o;
    o.memtable_limit = 16;
    o.max_segments = 3;
    o.validate = false;
    return o;
  }());
  std::map<std::string, Entry> model;

  for (int step = 0; step < 600; ++step) {
    int uid = rng() % 60;
    Dn dn = D("uid=u" + std::to_string(uid) + ", dc=com");
    int action = rng() % 3;
    if (action == 0) {  // put
      Entry e(dn);
      e.AddInt("x", static_cast<int64_t>(rng() % 100));
      ASSERT_TRUE(store.Put(e).ok());
      model[dn.HierKey()] = e;
    } else if (action == 1) {  // remove
      Status s = store.Remove(dn);
      if (model.count(dn.HierKey()) > 0) {
        ASSERT_TRUE(s.ok());
        model.erase(dn.HierKey());
      } else {
        ASSERT_EQ(s.code(), StatusCode::kNotFound);
      }
    } else {  // get
      std::optional<Entry> got = store.Get(dn).TakeValue();
      auto it = model.find(dn.HierKey());
      ASSERT_EQ(got.has_value(), it != model.end());
      if (got.has_value()) {
        ASSERT_EQ(*got, it->second);
      }
    }
    ASSERT_EQ(store.num_entries(), model.size());
  }
  // Final full scan matches the model exactly.
  std::vector<std::string> keys;
  ASSERT_TRUE(store
                  .ScanRange("", "",
                             [&](std::string_view rec) -> Status {
                               keys.emplace_back(
                                   PeekEntryKey(rec).ValueOrDie());
                               return Status::OK();
                             })
                  .ok());
  ASSERT_EQ(keys.size(), model.size());
  size_t i = 0;
  for (const auto& [key, entry] : model) {
    (void)entry;
    EXPECT_EQ(keys[i++], key);
  }
}

}  // namespace
}  // namespace ndq
