#include "store/epoch.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ndq {
namespace {

TEST(EpochTest, RetireRunsInlineWithoutPins) {
  EpochFramework epochs;
  bool ran = false;
  EXPECT_TRUE(epochs.Retire([&] { ran = true; }));
  EXPECT_TRUE(ran);
  EXPECT_EQ(epochs.pending_retirements(), 0u);
}

TEST(EpochTest, PinBlocksRetirementUntilRelease) {
  EpochFramework epochs;
  bool ran = false;
  EpochFramework::Guard guard = epochs.Pin();
  EXPECT_TRUE(guard.pinned());
  EXPECT_FALSE(epochs.Retire([&] { ran = true; }));
  EXPECT_FALSE(ran);
  EXPECT_EQ(epochs.pending_retirements(), 1u);
  guard.Release();
  EXPECT_TRUE(ran);
  EXPECT_EQ(epochs.pending_retirements(), 0u);
  EXPECT_EQ(epochs.active_pins(), 0u);
}

TEST(EpochTest, LaterPinDoesNotBlockEarlierRetirement) {
  // A retirement waits only for guards pinned BEFORE it was queued; a
  // reader arriving after the retire sees the new state and cannot hold
  // the old resources live.
  EpochFramework epochs;
  bool ran = false;
  EpochFramework::Guard before = epochs.Pin();
  EXPECT_FALSE(epochs.Retire([&] { ran = true; }));
  EpochFramework::Guard after = epochs.Pin();
  before.Release();
  EXPECT_TRUE(ran) << "pre-retire guard released; post-retire guard must "
                      "not keep the retirement pending";
  after.Release();
}

TEST(EpochTest, MultipleGuardsSameEpochAllBlock) {
  EpochFramework epochs;
  bool ran = false;
  EpochFramework::Guard g1 = epochs.Pin();
  EpochFramework::Guard g2 = epochs.Pin();
  EXPECT_FALSE(epochs.Retire([&] { ran = true; }));
  g1.Release();
  EXPECT_FALSE(ran);
  g2.Release();
  EXPECT_TRUE(ran);
}

TEST(EpochTest, GuardMoveTransfersThePin) {
  EpochFramework epochs;
  bool ran = false;
  EpochFramework::Guard outer;
  {
    EpochFramework::Guard inner = epochs.Pin();
    outer = std::move(inner);
    EXPECT_FALSE(inner.pinned());  // NOLINT(bugprone-use-after-move)
  }
  // inner's destruction must not have unpinned: outer still holds it.
  EXPECT_FALSE(epochs.Retire([&] { ran = true; }));
  EXPECT_FALSE(ran);
  outer.Release();
  EXPECT_TRUE(ran);
}

TEST(EpochTest, RetirementsRunInOrder) {
  EpochFramework epochs;
  std::vector<int> order;
  EpochFramework::Guard guard = epochs.Pin();
  epochs.Retire([&] { order.push_back(1); });
  epochs.Retire([&] { order.push_back(2); });
  epochs.Retire([&] { order.push_back(3); });
  guard.Release();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EpochTest, DrainAndReclaimWaitsForConcurrentReaders) {
  EpochFramework epochs;
  std::atomic<bool> ran{false};
  std::atomic<bool> release{false};
  EpochFramework::Guard guard = epochs.Pin();
  epochs.Retire([&] { ran = true; });

  std::thread reader([&] {
    while (!release.load()) std::this_thread::yield();
    guard.Release();
  });
  std::thread drainer([&] { epochs.DrainAndReclaim(); });
  // The drainer must be blocked on the live pin.
  EXPECT_FALSE(ran.load());
  release = true;
  drainer.join();
  reader.join();
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(epochs.active_pins(), 0u);
  EXPECT_EQ(epochs.pending_retirements(), 0u);
}

TEST(EpochTest, ConcurrentPinRetireStress) {
  // Readers pin/unpin in a tight loop while a writer retires counters;
  // under TSan this exercises the pin-table locking. Every retirement
  // must run exactly once.
  EpochFramework epochs;
  constexpr int kReaders = 4;
  constexpr int kRetires = 200;
  std::atomic<int> ran{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        EpochFramework::Guard g = epochs.Pin();
        std::this_thread::yield();
      }
    });
  }
  for (int i = 0; i < kRetires; ++i) {
    epochs.Retire([&] { ran.fetch_add(1); });
  }
  stop = true;
  for (std::thread& t : readers) t.join();
  epochs.DrainAndReclaim();
  EXPECT_EQ(ran.load(), kRetires);
}

}  // namespace
}  // namespace ndq
