#include "filter/atomic_filter.h"

#include <gtest/gtest.h>

#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;

Entry Person() {
  Entry e(D("uid=jag, dc=com"));
  e.AddClass("inetOrgPerson");
  e.AddString("uid", "jag");
  e.AddString("commonName", "h jagadish");
  e.AddString("surName", "jagadish");
  e.AddInt("priority", 2);
  e.AddInt("priority", 5);
  return e;
}

AtomicFilter F(const std::string& text) {
  Result<AtomicFilter> r = AtomicFilter::Parse(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.TakeValue();
}

TEST(AtomicFilterTest, Presence) {
  Entry e = Person();
  EXPECT_TRUE(F("uid=*").Matches(e));
  EXPECT_TRUE(F("priority=*").Matches(e));
  EXPECT_FALSE(F("telephoneNumber=*").Matches(e));
}

TEST(AtomicFilterTest, ObjectClassStarIsTrue) {
  AtomicFilter f = F("objectClass=*");
  EXPECT_EQ(f.kind(), AtomicFilter::Kind::kTrue);
  Entry bare(D("x=1"));  // even an entry with no attributes matches
  EXPECT_TRUE(f.Matches(bare));
}

TEST(AtomicFilterTest, StringEquality) {
  Entry e = Person();
  EXPECT_TRUE(F("surName=jagadish").Matches(e));
  EXPECT_FALSE(F("surName=milo").Matches(e));
  EXPECT_FALSE(F("surName=jaga").Matches(e));  // no implicit prefix match
}

TEST(AtomicFilterTest, IntEqualityMatchesAnyValue) {
  // r |= F iff SOME value satisfies F (multi-valued semantics).
  Entry e = Person();
  EXPECT_TRUE(F("priority=2").Matches(e));
  EXPECT_TRUE(F("priority=5").Matches(e));
  EXPECT_FALSE(F("priority=3").Matches(e));
}

TEST(AtomicFilterTest, IntComparisons) {
  Entry e = Person();  // priority in {2, 5}
  EXPECT_TRUE(F("priority<3").Matches(e));
  EXPECT_TRUE(F("priority<=2").Matches(e));
  EXPECT_FALSE(F("priority<2").Matches(e));
  EXPECT_TRUE(F("priority>4").Matches(e));
  EXPECT_TRUE(F("priority>=5").Matches(e));
  EXPECT_FALSE(F("priority>5").Matches(e));
  EXPECT_TRUE(F("priority!=3").Matches(e));
  EXPECT_TRUE(F("priority!=2").Matches(e));  // witnessed by value 5
}

TEST(AtomicFilterTest, IntComparisonIgnoresStringValues) {
  Entry e(D("x=1"));
  e.AddString("level", "9");
  EXPECT_FALSE(F("level<10").Matches(e));  // tau(level) is not int here
}

TEST(AtomicFilterTest, SubstringPatterns) {
  Entry e = Person();
  EXPECT_TRUE(F("commonName=*jag*").Matches(e));     // paper's example
  EXPECT_TRUE(F("commonName=h*").Matches(e));        // prefix
  EXPECT_TRUE(F("commonName=*dish").Matches(e));     // suffix
  EXPECT_TRUE(F("commonName=h*dish").Matches(e));    // both ends anchored
  EXPECT_TRUE(F("commonName=*h*jag*ish*").Matches(e));
  EXPECT_FALSE(F("commonName=*xyz*").Matches(e));
  EXPECT_FALSE(F("commonName=jag*").Matches(e));     // wrong anchor
}

TEST(AtomicFilterTest, SubstringOnIpAddresses) {
  // From Fig. 12: SourceAddress: 204.178.16.*
  Entry e(D("TPName=t, dc=com"));
  e.AddString("SourceAddress", "204.178.16.5");
  EXPECT_TRUE(F("SourceAddress=204.178.16.*").Matches(e));
  EXPECT_FALSE(F("SourceAddress=204.178.17.*").Matches(e));
}

TEST(AtomicFilterTest, WildcardMatchEdgeCases) {
  std::vector<std::string> star = {"", ""};  // pattern "*"
  EXPECT_TRUE(WildcardMatch(star, ""));
  EXPECT_TRUE(WildcardMatch(star, "anything"));
  std::vector<std::string> abab = {"ab", "ab"};  // "ab*ab"
  EXPECT_TRUE(WildcardMatch(abab, "abab"));
  EXPECT_TRUE(WildcardMatch(abab, "abxab"));
  EXPECT_FALSE(WildcardMatch(abab, "ab"));  // can't overlap
  std::vector<std::string> aa = {"", "aa", ""};  // "*aa*"
  EXPECT_TRUE(WildcardMatch(aa, "xaax"));
  EXPECT_FALSE(WildcardMatch(aa, "axa"));
}

TEST(AtomicFilterTest, EqualsIntLiteralAlsoMatchesStringSpelling) {
  // Types are unknown at parse time: "dc=5" must match a *string* value
  // "5" as well as an int value 5.
  Entry e(D("x=1"));
  e.AddString("dc", "5");
  EXPECT_TRUE(F("dc=5").Matches(e));
}

TEST(AtomicFilterTest, ParseErrors) {
  EXPECT_FALSE(AtomicFilter::Parse("nooperator").ok());
  EXPECT_FALSE(AtomicFilter::Parse("=value").ok());
  EXPECT_FALSE(AtomicFilter::Parse("attr<abc").ok());  // non-int comparison
}

TEST(AtomicFilterTest, ToStringRoundTrips) {
  for (const char* text :
       {"uid=*", "surName=jagadish", "priority<3", "priority<=3",
        "priority>3", "priority>=3", "priority!=3", "commonName=*jag*",
        "SourceAddress=204.178.16.*", "objectClass=*"}) {
    AtomicFilter f = F(text);
    AtomicFilter again = F(f.ToString());
    EXPECT_EQ(f, again) << text;
  }
}

// Regression (fuzzer corpus `cache-collision`): string equality whose value
// spells an integer used to render as "x=5", which re-parses as INT
// equality — a different filter. The quoted form keeps them distinct.
TEST(AtomicFilterTest, StringEqualityOnDigitsRoundTrips) {
  AtomicFilter str_eq = AtomicFilter::Equals("x", Value::String("5"));
  AtomicFilter int_eq = F("x=5");
  EXPECT_NE(str_eq.ToString(), int_eq.ToString());
  EXPECT_EQ(str_eq.ToString(), "x=\"5\"");

  AtomicFilter reparsed = F(str_eq.ToString());
  EXPECT_EQ(reparsed, str_eq);
  EXPECT_EQ(reparsed.kind(), AtomicFilter::Kind::kEquals);
  EXPECT_TRUE(reparsed.equals_rhs().is_string());

  // The two filters really differ: an int value 5 satisfies only int
  // equality; a string value "5" satisfies both (types unknown at parse
  // time, int literals also match their string spelling).
  Entry with_int(D("x=1"));
  with_int.AddInt("x", 5);
  EXPECT_TRUE(int_eq.Matches(with_int));
  EXPECT_FALSE(str_eq.Matches(with_int));
}

TEST(AtomicFilterTest, QuotedStringForms) {
  // Quoting is always accepted on input, whatever the content.
  AtomicFilter f = F("cn=\"plain\"");
  EXPECT_EQ(f, AtomicFilter::Equals("cn", Value::String("plain")));
  // ...but only emitted when needed.
  EXPECT_EQ(f.ToString(), "cn=plain");

  EXPECT_EQ(F("cn=\"\""), AtomicFilter::Equals("cn", Value::String("")));
  EXPECT_EQ(F("cn=\" pad \""),
            AtomicFilter::Equals("cn", Value::String(" pad ")));
  EXPECT_EQ(F("cn=\"a*b\""),
            AtomicFilter::Equals("cn", Value::String("a*b")));
  EXPECT_EQ(F("cn=\"q\\\"v\\\\w\""),
            AtomicFilter::Equals("cn", Value::String("q\"v\\w")));

  // Values that would be misparsed bare round-trip via quoting.
  for (const char* raw : {"5", "-17", " lead", "trail ", "", "a*b",
                          "\"quoted\"", "q\"v\\w"}) {
    AtomicFilter eq = AtomicFilter::Equals("cn", Value::String(raw));
    AtomicFilter again = F(eq.ToString());
    EXPECT_EQ(again, eq) << '[' << raw << "] printed as " << eq.ToString();
  }

  EXPECT_FALSE(AtomicFilter::Parse("cn=\"unterminated").ok());
  EXPECT_FALSE(AtomicFilter::Parse("cn=\"bad\"trailing").ok());
  EXPECT_FALSE(AtomicFilter::Parse("cn=\"dangling\\").ok());
}

}  // namespace
}  // namespace ndq
