#include "filter/ldap_filter.h"

#include <gtest/gtest.h>

#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;

Entry Qhp() {
  Entry e(D("QHPName=weekend, uid=jag, dc=com"));
  e.AddClass("QHP");
  e.AddString("QHPName", "weekend");
  e.AddInt("priority", 1);
  e.AddInt("daysOfWeek", 6);
  e.AddInt("daysOfWeek", 7);
  return e;
}

LdapFilterPtr F(const std::string& text) {
  Result<LdapFilterPtr> r = LdapFilter::Parse(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? r.TakeValue() : nullptr;
}

TEST(LdapFilterTest, BareAtomic) {
  EXPECT_TRUE(F("objectClass=QHP")->Matches(Qhp()));
  EXPECT_FALSE(F("objectClass=callAppearance")->Matches(Qhp()));
}

TEST(LdapFilterTest, ParenthesizedAtomic) {
  EXPECT_TRUE(F("(priority<=1)")->Matches(Qhp()));
}

TEST(LdapFilterTest, And) {
  EXPECT_TRUE(F("(&(objectClass=QHP)(priority<=1))")->Matches(Qhp()));
  EXPECT_FALSE(F("(&(objectClass=QHP)(priority>1))")->Matches(Qhp()));
}

TEST(LdapFilterTest, Or) {
  EXPECT_TRUE(F("(|(priority>5)(daysOfWeek=7))")->Matches(Qhp()));
  EXPECT_FALSE(F("(|(priority>5)(daysOfWeek=3))")->Matches(Qhp()));
}

TEST(LdapFilterTest, Not) {
  EXPECT_TRUE(F("(!(priority>1))")->Matches(Qhp()));
  EXPECT_FALSE(F("(!(objectClass=QHP))")->Matches(Qhp()));
}

TEST(LdapFilterTest, NestedBoolean) {
  LdapFilterPtr f =
      F("(&(objectClass=QHP)(|(daysOfWeek=6)(daysOfWeek=1))(!(priority>3)))");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->Matches(Qhp()));
}

TEST(LdapFilterTest, AndOrAreNary) {
  LdapFilterPtr f = F("(&(priority=1)(daysOfWeek=6)(daysOfWeek=7))");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->children().size(), 3u);
  EXPECT_TRUE(f->Matches(Qhp()));
}

TEST(LdapFilterTest, ParseErrors) {
  EXPECT_FALSE(LdapFilter::Parse("(&)").ok());           // no operands
  EXPECT_FALSE(LdapFilter::Parse("(&(a=1)").ok());       // missing ')'
  EXPECT_FALSE(LdapFilter::Parse("(a=1))").ok());        // trailing
  EXPECT_FALSE(LdapFilter::Parse("(!(a=1)(b=2))").ok()); // not is unary
}

TEST(LdapFilterTest, ToStringRoundTrips) {
  for (const char* text :
       {"(priority<=1)", "(&(objectClass=QHP)(priority<=1))",
        "(|(a=1)(b=2)(c=3))", "(!(x=*))",
        "(&(|(a=1)(b=2))(!(c=3)))"}) {
    LdapFilterPtr f = F(text);
    ASSERT_NE(f, nullptr);
    LdapFilterPtr again = F(f->ToString());
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(f->ToString(), again->ToString()) << text;
  }
}

}  // namespace
}  // namespace ndq
