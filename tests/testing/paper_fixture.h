// Shared test fixture data: the schema and sample directory fragments from
// the paper's Figures 1 (DNS levels), 11 (TOPS) and 12 (QoS policies).
// Thin aliases over the reusable fixtures in src/gen/paper_data.h.

#ifndef NDQ_TESTS_TESTING_PAPER_FIXTURE_H_
#define NDQ_TESTS_TESTING_PAPER_FIXTURE_H_

#include "gen/paper_data.h"

namespace ndq {
namespace testing {

inline Schema PaperSchema() { return gen::PaperSchema(); }
inline DirectoryInstance PaperInstance() { return gen::PaperInstance(); }
inline Dn D(const std::string& text) { return gen::MustDn(text); }

}  // namespace testing
}  // namespace ndq

#endif  // NDQ_TESTS_TESTING_PAPER_FIXTURE_H_
