// Exhaustive fault-injection campaign driver (see docs/FAULT_INJECTION.md).
//
// Sweeps "fail I/O operation #k" over a deterministic workload: for every
// k the workload runs with a one-shot FaultInjector attached to the disk
// and must either succeed with results identical to a clean golden run
// (the fault was absorbed by a cache or retry layer) or fail with a clean
// Unavailable Status. Either way no page may leak, and a retry after the
// transient fault must reproduce the golden result byte for byte. The
// sweep is self-terminating: when a probe completes without firing (k
// exceeded the workload's op count) the stream is exhausted.

#ifndef NDQ_TESTS_TESTING_FAULT_CAMPAIGN_H_
#define NDQ_TESTS_TESTING_FAULT_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/entry.h"
#include "core/status.h"
#include "storage/disk.h"
#include "storage/fault_injector.h"

namespace ndq {
namespace testing {

struct FaultCampaignOptions {
  /// Which device operations the sweep targets. The default covers the
  /// ops whose failure must never leak a page; free faults legitimately
  /// strand pages (a failed Free IS the leak), so they get their own
  /// sweep with `check_leaks` off.
  uint32_t ops = FaultOpBit(FaultOp::kRead) | FaultOpBit(FaultOp::kWrite) |
                 FaultOpBit(FaultOp::kAllocate);
  bool check_leaks = true;
  /// Safety cap on the sweep (0 = run until the op stream is exhausted).
  uint64_t max_k = 0;
};

struct FaultCampaignReport {
  uint64_t ks_tested = 0;
  uint64_t clean_failures = 0;      ///< fault surfaced as Unavailable
  uint64_t absorbed_successes = 0;  ///< fault fired, workload still ok
};

/// Runs the sweep. `workload` evaluates the whole reference query mix and
/// returns the concatenated results; it must be deterministic given the
/// disk contents. `after_run` (may be empty) restores inter-run state —
/// e.g. clears an operand cache so cached runs don't count as live data
/// in the leak baseline.
inline void RunFaultCampaign(
    Disk* disk,
    const std::function<Result<std::vector<Entry>>()>& workload,
    const std::function<void()>& after_run,
    const FaultCampaignOptions& options = {},
    FaultCampaignReport* report = nullptr) {
  FaultCampaignReport local;
  FaultCampaignReport& rep = report != nullptr ? *report : local;
  rep = FaultCampaignReport();
  auto settle = [&] {
    if (after_run) after_run();
  };

  // Golden run: expected results and the live-page baseline.
  Result<std::vector<Entry>> golden = workload();
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  settle();
  const size_t baseline = disk->live_pages();

  for (uint64_t k = 1;; ++k) {
    SCOPED_TRACE("fault campaign: fail op #" + std::to_string(k));
    ++rep.ks_tested;
    FaultInjector injector({FaultInjector::FailNth(k, options.ops)});
    disk->set_fault_injector(&injector);
    Result<std::vector<Entry>> got = workload();
    disk->set_fault_injector(nullptr);
    const uint64_t fired = injector.faults_fired();
    settle();

    if (got.ok()) {
      EXPECT_EQ(*got, *golden)
          << "fault absorbed but the result changed";
      if (fired > 0) ++rep.absorbed_successes;
    } else {
      // The injected Unavailable must reach the caller unmangled, and a
      // failure with no fault fired would mean the harness itself broke.
      EXPECT_EQ(got.status().code(), StatusCode::kUnavailable)
          << got.status().ToString();
      EXPECT_GT(fired, 0u) << got.status().ToString();
      ++rep.clean_failures;
    }
    if (options.check_leaks) {
      ASSERT_EQ(disk->live_pages(), baseline) << "leaked pages";
    }

    if (!got.ok()) {
      // Retry after the transient fault: byte-identical recovery.
      Result<std::vector<Entry>> retry = workload();
      ASSERT_TRUE(retry.ok()) << retry.status().ToString();
      EXPECT_EQ(*retry, *golden) << "retry diverged from golden";
      settle();
      if (options.check_leaks) {
        ASSERT_EQ(disk->live_pages(), baseline) << "retry leaked pages";
      }
    }

    if (fired == 0) break;  // op stream exhausted: sweep is complete
    if (options.max_k != 0 && k >= options.max_k) break;
  }
}

}  // namespace testing
}  // namespace ndq

#endif  // NDQ_TESTS_TESTING_FAULT_CAMPAIGN_H_
