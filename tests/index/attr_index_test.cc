#include "index/attr_index.h"

#include <gtest/gtest.h>

#include "exec/atomic.h"
#include "gen/dif_gen.h"
#include "storage/serde.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;

struct IndexedFixture {
  SimDisk disk{1024};
  BufferPool pool{&disk, 256};
  DirectoryInstance inst;
  EntryStore store;
  AttributeIndexes indexes;

  IndexedFixture() : inst(Schema(), false) {
    gen::DifOptions opt;
    opt.num_orgs = 2;
    opt.subdomains_per_org = 2;
    inst = gen::GenerateDif(opt);
    store = EntryStore::BulkLoad(&disk, inst).TakeValue();
    IndexSpec spec;
    spec.int_attrs = {"priority", "SLARulePriority", "sourcePort",
                      "timeOut"};
    spec.string_attrs = {"objectClass", "uid", "surName", "SourceAddress"};
    spec.dn_attrs = {"SLATPRef", "SLADSActRef"};
    indexes = AttributeIndexes::Build(&pool, store, spec).TakeValue();
  }

  // Index-assisted result (must exist) vs. scan result: identical lists.
  void ExpectMatchesScan(const Dn& base, Scope scope,
                         const std::string& filter_text) {
    AtomicFilter f = AtomicFilter::Parse(filter_text).TakeValue();
    Result<std::optional<ndq::Run>> via_index =
        indexes.EvalAtomic(&disk, store, base, scope, f);
    ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
    ASSERT_TRUE(via_index->has_value()) << filter_text << " not indexable";
    ndq::Run scan = EvalAtomic(&disk, store, base, scope, f).TakeValue();

    auto read = [&](const Run& r) {
      std::vector<std::string> keys;
      RunReader reader(&disk, r);
      std::string rec;
      while (reader.Next(&rec).ValueOrDie()) {
        keys.emplace_back(PeekEntryKey(rec).ValueOrDie());
      }
      return keys;
    };
    EXPECT_EQ(read(**via_index), read(scan)) << filter_text;
  }
};

TEST(AttrIndexTest, IntComparisonsMatchScan) {
  IndexedFixture f;
  Dn root = D("dc=com");
  for (const char* filter :
       {"priority=1", "priority<2", "priority<=2", "priority>1",
        "priority>=3", "priority!=2", "sourcePort=25", "timeOut>=30"}) {
    f.ExpectMatchesScan(root, Scope::kSub, filter);
  }
}

TEST(AttrIndexTest, StringEqualityAndPresenceMatchScan) {
  IndexedFixture f;
  Dn root = D("dc=com");
  for (const char* filter :
       {"objectClass=QHP", "objectClass=SLAPolicyRules", "uid=user3",
        "uid=*", "SLATPRef=*", "surName=*"}) {
    f.ExpectMatchesScan(root, Scope::kSub, filter);
  }
}

TEST(AttrIndexTest, SubstringMatchesScan) {
  IndexedFixture f;
  Dn root = D("dc=com");
  for (const char* filter :
       {"SourceAddress=20*", "SourceAddress=*.*.*", "uid=*ser1*",
        "objectClass=*Policy*"}) {
    f.ExpectMatchesScan(root, Scope::kSub, filter);
  }
}

TEST(AttrIndexTest, ScopesRestrictIndexResults) {
  IndexedFixture f;
  Dn dom = D("dc=sub0, dc=org0, dc=com");
  f.ExpectMatchesScan(dom, Scope::kSub, "objectClass=QHP");
  f.ExpectMatchesScan(dom, Scope::kOne, "objectClass=organizationalUnit");
  f.ExpectMatchesScan(D("ou=userProfiles, dc=sub0, dc=org0, dc=com"),
                      Scope::kOne, "uid=*");
  f.ExpectMatchesScan(dom, Scope::kBase, "objectClass=dcObject");
}

TEST(AttrIndexTest, DnReferenceEquality) {
  IndexedFixture f;
  // Pick a policy's actual SLATPRef value and look it up via the dn tree.
  const Entry* policy = nullptr;
  for (const auto& [key, entry] : f.inst) {
    (void)key;
    if (entry.HasAttribute("SLATPRef")) {
      policy = &entry;
      break;
    }
  }
  ASSERT_NE(policy, nullptr);
  std::string target = policy->Values("SLATPRef")->at(0).AsString();
  AtomicFilter filter =
      AtomicFilter::Equals("SLATPRef", Value::String(target));
  Result<std::optional<ndq::Run>> r =
      f.indexes.EvalAtomic(&f.disk, f.store, D("dc=com"), Scope::kSub,
                           filter);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_GE((*r)->num_records, 1u);
}

TEST(AttrIndexTest, UnindexedAttributeFallsBack) {
  IndexedFixture f;
  AtomicFilter filter = AtomicFilter::Parse("commonName=*user*").TakeValue();
  Result<std::optional<ndq::Run>> r =
      f.indexes.EvalAtomic(&f.disk, f.store, D("dc=com"), Scope::kSub,
                           filter);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());  // caller must fall back to a scan
}

TEST(AttrIndexTest, SelectiveLookupReadsFewerPagesThanScan) {
  IndexedFixture f;
  Dn root = D("dc=com");
  AtomicFilter filter = AtomicFilter::Parse("uid=user7").TakeValue();

  f.disk.ResetStats();
  ndq::Run scan = EvalAtomic(&f.disk, f.store, root, Scope::kSub, filter)
                 .TakeValue();
  uint64_t scan_reads = f.disk.stats().page_reads;

  f.disk.ResetStats();
  Result<std::optional<ndq::Run>> via =
      f.indexes.EvalAtomic(&f.disk, f.store, root, Scope::kSub, filter);
  ASSERT_TRUE(via.ok() && via->has_value());
  uint64_t index_reads = f.disk.stats().page_reads;
  EXPECT_EQ((*via)->num_records, scan.num_records);
  EXPECT_LT(index_reads, scan_reads);
}

}  // namespace
}  // namespace ndq
