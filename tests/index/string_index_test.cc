#include "index/string_index.h"

#include <gtest/gtest.h>

namespace ndq {
namespace {

TEST(TrieTest, ExactLookup) {
  Trie t;
  t.Insert("jagadish", 1);
  t.Insert("jag", 2);
  t.Insert("jagadish", 3);
  EXPECT_EQ(t.Lookup("jagadish"), (std::vector<uint64_t>{1, 3}));
  EXPECT_EQ(t.Lookup("jag"), (std::vector<uint64_t>{2}));
  EXPECT_TRUE(t.Lookup("jaga").empty());
  EXPECT_TRUE(t.Lookup("").empty());
  EXPECT_EQ(t.num_values(), 3u);
}

TEST(TrieTest, PrefixSearch) {
  Trie t;
  t.Insert("jagadish", 1);
  t.Insert("jag", 2);
  t.Insert("milo", 3);
  t.Insert("jagger", 4);
  EXPECT_EQ(t.PrefixSearch("jag"), (std::vector<uint64_t>{1, 2, 4}));
  EXPECT_EQ(t.PrefixSearch(""), (std::vector<uint64_t>{1, 2, 3, 4}));
  EXPECT_TRUE(t.PrefixSearch("z").empty());
}

TEST(TrieTest, DuplicateIdsDeduplicated) {
  Trie t;
  t.Insert("aa", 7);
  t.Insert("ab", 7);
  EXPECT_EQ(t.PrefixSearch("a"), (std::vector<uint64_t>{7}));
}

TEST(SuffixIndexTest, SubstringSearch) {
  SuffixIndex s;
  s.Add("h jagadish", 1);
  s.Add("tova milo", 2);
  s.Add("divesh srivastava", 3);
  s.Build();
  EXPECT_EQ(s.Search("jag").ValueOrDie(), (std::vector<uint64_t>{1}));
  EXPECT_EQ(s.Search("va").ValueOrDie(), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(s.Search("i").ValueOrDie(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_TRUE(s.Search("xyz").ValueOrDie().empty());
  // Full-string and suffix needles.
  EXPECT_EQ(s.Search("tova milo").ValueOrDie(), (std::vector<uint64_t>{2}));
  EXPECT_EQ(s.Search("dish").ValueOrDie(), (std::vector<uint64_t>{1}));
}

TEST(SuffixIndexTest, EmptyNeedleMatchesAll) {
  SuffixIndex s;
  s.Add("a", 1);
  s.Add("b", 2);
  s.Build();
  EXPECT_EQ(s.Search("").ValueOrDie(), (std::vector<uint64_t>{1, 2}));
}

TEST(SuffixIndexTest, SearchBeforeBuildIsError) {
  SuffixIndex s;
  s.Add("a", 1);
  EXPECT_FALSE(s.Search("a").ok());
}

TEST(SuffixIndexTest, IpAddressPatterns) {
  SuffixIndex s;
  s.Add("204.178.16.5", 1);
  s.Add("207.140.3.9", 2);
  s.Add("204.178.17.5", 3);
  s.Build();
  EXPECT_EQ(s.Search("204.178.16.").ValueOrDie(),
            (std::vector<uint64_t>{1}));
  EXPECT_EQ(s.Search("204.178.").ValueOrDie(),
            (std::vector<uint64_t>{1, 3}));
}

}  // namespace
}  // namespace ndq
