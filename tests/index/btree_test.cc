#include "index/btree.h"

#include <map>
#include <random>
#include <set>

#include <gtest/gtest.h>

namespace ndq {
namespace {

struct TreeFixture {
  SimDisk disk{256};  // small pages force deep trees
  BufferPool pool{&disk, 64};
  BPlusTree tree = BPlusTree::Create(&pool).TakeValue();
};

std::vector<std::pair<std::string, uint64_t>> ScanAll(const BPlusTree& t) {
  std::vector<std::pair<std::string, uint64_t>> out;
  Status s = t.ScanRange("", "", [&](std::string_view k, uint64_t v) {
    out.emplace_back(std::string(k), v);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  return out;
}

TEST(IntKeyTest, OrderPreserving) {
  const int64_t vals[] = {INT64_MIN, -1000000, -1, 0, 1, 42, 1000000,
                          INT64_MAX};
  for (size_t i = 0; i + 1 < std::size(vals); ++i) {
    EXPECT_LT(EncodeIntKey(vals[i]), EncodeIntKey(vals[i + 1]));
    EXPECT_EQ(DecodeIntKey(EncodeIntKey(vals[i])), vals[i]);
  }
  EXPECT_EQ(DecodeIntKey(EncodeIntKey(INT64_MAX)), INT64_MAX);
}

TEST(BPlusTreeTest, InsertAndScan) {
  TreeFixture f;
  ASSERT_TRUE(f.tree.Insert("b", 2).ok());
  ASSERT_TRUE(f.tree.Insert("a", 1).ok());
  ASSERT_TRUE(f.tree.Insert("c", 3).ok());
  EXPECT_EQ(f.tree.size(), 3u);
  auto all = ScanAll(f.tree);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, "a");
  EXPECT_EQ(all[2].second, 3u);
}

TEST(BPlusTreeTest, DuplicateKeysAllowedDuplicatePairsIgnored) {
  TreeFixture f;
  ASSERT_TRUE(f.tree.Insert("k", 1).ok());
  ASSERT_TRUE(f.tree.Insert("k", 2).ok());
  ASSERT_TRUE(f.tree.Insert("k", 1).ok());  // duplicate pair: no-op
  EXPECT_EQ(f.tree.size(), 2u);
  std::vector<uint64_t> vals;
  ASSERT_TRUE(f.tree.ScanEqual("k", [&](uint64_t v) {
                       vals.push_back(v);
                       return Status::OK();
                     }).ok());
  EXPECT_EQ(vals, (std::vector<uint64_t>{1, 2}));
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  TreeFixture f;
  for (int i = 0; i < 2000; ++i) {
    std::string key = "key" + std::to_string(100000 + i);
    ASSERT_TRUE(f.tree.Insert(key, static_cast<uint64_t>(i)).ok());
  }
  EXPECT_EQ(f.tree.size(), 2000u);
  EXPECT_GT(f.tree.height(), 2u);
  auto all = ScanAll(f.tree);
  ASSERT_EQ(all.size(), 2000u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].first, all[i].first);
  }
}

TEST(BPlusTreeTest, RangeScanBounds) {
  TreeFixture f;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        f.tree.Insert(EncodeIntKey(i), static_cast<uint64_t>(i)).ok());
  }
  std::vector<uint64_t> got;
  ASSERT_TRUE(f.tree.ScanRange(EncodeIntKey(10), EncodeIntKey(20),
                               [&](std::string_view, uint64_t v) {
                                 got.push_back(v);
                                 return Status::OK();
                               })
                  .ok());
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got.front(), 10u);
  EXPECT_EQ(got.back(), 19u);
}

TEST(BPlusTreeTest, Remove) {
  TreeFixture f;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        f.tree.Insert(EncodeIntKey(i % 50), static_cast<uint64_t>(i)).ok());
  }
  EXPECT_EQ(f.tree.size(), 500u);
  EXPECT_TRUE(f.tree.Remove(EncodeIntKey(7), 7).ValueOrDie());
  EXPECT_FALSE(f.tree.Remove(EncodeIntKey(7), 7).ValueOrDie());  // gone
  EXPECT_FALSE(f.tree.Remove(EncodeIntKey(999), 1).ValueOrDie());
  EXPECT_EQ(f.tree.size(), 499u);
}

TEST(BPlusTreeTest, RandomAgainstStdMultimap) {
  std::mt19937 rng(19);
  TreeFixture f;
  std::set<std::pair<std::string, uint64_t>> model;
  for (int step = 0; step < 5000; ++step) {
    std::string key = "k" + std::to_string(rng() % 500);
    uint64_t val = rng() % 20;
    if (rng() % 4 != 0) {
      ASSERT_TRUE(f.tree.Insert(key, val).ok());
      model.insert({key, val});
    } else {
      bool removed = f.tree.Remove(key, val).ValueOrDie();
      EXPECT_EQ(removed, model.erase({key, val}) > 0);
    }
    ASSERT_EQ(f.tree.size(), model.size());
  }
  auto all = ScanAll(f.tree);
  ASSERT_EQ(all.size(), model.size());
  // Keys arrive in order; among equal keys the payload order is
  // unspecified, so compare as sorted pair sets.
  std::sort(all.begin(), all.end());
  size_t i = 0;
  for (const auto& [key, val] : model) {
    EXPECT_EQ(all[i].first, key);
    EXPECT_EQ(all[i].second, val);
    ++i;
  }
}

TEST(BPlusTreeTest, LookupCostIsHeightNotSize) {
  TreeFixture f;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(
        f.tree.Insert(EncodeIntKey(i), static_cast<uint64_t>(i)).ok());
  }
  ASSERT_TRUE(f.pool.FlushAll().ok());
  f.disk.ResetStats();
  // A point lookup pins height() pages (some maybe cached); even with a
  // cold-ish pool the reads are far below the tree's total pages.
  std::vector<uint64_t> got;
  ASSERT_TRUE(f.tree.ScanEqual(EncodeIntKey(4321), [&](uint64_t v) {
                       got.push_back(v);
                       return Status::OK();
                     }).ok());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_LE(f.disk.stats().page_reads, f.tree.height() + 2);
}

TEST(BPlusTreeTest, KeyTooLongRejected) {
  TreeFixture f;
  std::string huge(1000, 'x');  // > page_size/4 for 256-byte pages
  EXPECT_FALSE(f.tree.Insert(huge, 1).ok());
}

}  // namespace
}  // namespace ndq
