#include "apps/qos.h"

#include <gtest/gtest.h>

#include "gen/dif_gen.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using apps::AddressMatches;
using apps::PacketProfile;
using apps::PolicyDecision;
using apps::QosPolicyEngine;
using testing::D;

TEST(AddressMatchTest, ComponentWildcards) {
  EXPECT_TRUE(AddressMatches("204.178.16.*", "204.178.16.5"));
  EXPECT_TRUE(AddressMatches("207.140.*.*", "207.140.3.9"));
  EXPECT_TRUE(AddressMatches("*.*.*.*", "1.2.3.4"));
  EXPECT_FALSE(AddressMatches("204.178.16.*", "204.178.17.5"));
  EXPECT_FALSE(AddressMatches("204.178.16.*", "204.178.16"));  // short
  EXPECT_TRUE(AddressMatches("204.178.16.5", "204.178.16.5"));
}

struct PaperQos {
  SimDisk disk{1024};
  SimDisk scratch{1024};
  DirectoryInstance inst = testing::PaperInstance();
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  QosPolicyEngine engine{&scratch, &store,
                         D("dc=research, dc=att, dc=com")};
};

TEST(QosEngineTest, Figure12WeekendDenyScenario) {
  // A packet from 204.178.16.5 on a 1998 weekend: policy "dso" applies
  // and its action is denyAll... except dso has two exceptions. Neither
  // exception is applicable (they have no matching profiles in the
  // fixture), so dso survives.
  PaperQos f;
  PacketProfile packet;
  packet.source_address = "204.178.16.5";
  packet.timestamp = 19980606120000;  // a 1998 Saturday
  packet.day_of_week = 6;
  PolicyDecision d = f.engine.Match(packet).TakeValue();
  ASSERT_EQ(d.policies.size(), 1u);
  EXPECT_TRUE(d.policies[0].HasPair("SLAPolicyName",
                                    Value::String("dso")));
  ASSERT_EQ(d.actions.size(), 1u);
  EXPECT_TRUE(d.actions[0].HasPair("DSPermission", Value::String("Deny")));
}

TEST(QosEngineTest, WrongTimeNoMatch) {
  // Same packet on a 1999 weekday: the validity periods do not cover it
  // and dso specifies periods, so nothing applies.
  PaperQos f;
  PacketProfile packet;
  packet.source_address = "204.178.16.5";
  packet.timestamp = 19990202120000;
  packet.day_of_week = 2;
  PolicyDecision d = f.engine.Match(packet).TakeValue();
  EXPECT_EQ(d.applicable_policies, 0u);
  EXPECT_TRUE(d.actions.empty());
}

TEST(QosEngineTest, NonMatchingAddressNoProfiles) {
  PaperQos f;
  PacketProfile packet;
  packet.source_address = "10.0.0.1";
  packet.timestamp = 19980606120000;
  packet.day_of_week = 6;
  EXPECT_TRUE(f.engine.MatchingProfiles(packet).TakeValue().empty());
  EXPECT_TRUE(f.engine.Match(packet).TakeValue().actions.empty());
}

TEST(QosEngineTest, SmtpPacketMatchesPortedProfile) {
  // csplitOff has sourcePort 25 and SourceAddress 207.140.*.*.
  PaperQos f;
  PacketProfile packet;
  packet.source_address = "207.140.9.9";
  packet.source_port = 25;
  packet.timestamp = 19980606120000;
  packet.day_of_week = 7;
  std::vector<Entry> profiles =
      f.engine.MatchingProfiles(packet).TakeValue();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_TRUE(profiles[0].HasPair("TPName", Value::String("csplitOff")));
  // Without the port, the ported profile no longer matches.
  packet.source_port = -1;
  EXPECT_TRUE(f.engine.MatchingProfiles(packet).TakeValue().empty());
}

TEST(QosEngineTest, PriorityResolutionOnSyntheticDomain) {
  // On the synthetic generator's domains every matched set resolves to
  // the minimum SLARulePriority among applicable policies.
  gen::DifOptions opt;
  opt.num_orgs = 1;
  opt.subdomains_per_org = 1;
  opt.policies_per_domain = 12;
  DirectoryInstance inst = gen::GenerateDif(opt);
  SimDisk disk(1024), scratch(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  QosPolicyEngine engine(&scratch, &store, D("dc=sub0, dc=org0, dc=com"));

  PacketProfile packet;
  packet.source_address = "210.7.7.7";  // matches any *.*-tailed pattern
  packet.source_port = 25;
  packet.timestamp = 19980115000000;
  packet.day_of_week = 3;
  PolicyDecision d = engine.Match(packet).TakeValue();
  if (!d.policies.empty()) {
    int64_t top = d.policies[0].Values("SLARulePriority")->at(0).AsInt();
    for (const Entry& p : d.policies) {
      EXPECT_EQ(p.Values("SLARulePriority")->at(0).AsInt(), top);
    }
    EXPECT_GE(d.actions.size(), 1u);
  }
}

}  // namespace
}  // namespace ndq
