#include "apps/tops.h"

#include <gtest/gtest.h>

#include "store/directory_store.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using apps::CallContext;
using apps::CallResolution;
using apps::QhpMatches;
using apps::TopsResolver;
using testing::D;

struct PaperTops {
  SimDisk disk{1024};
  SimDisk scratch{1024};
  DirectoryInstance inst = testing::PaperInstance();
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  TopsResolver resolver{&scratch, &store,
                        D("dc=research, dc=att, dc=com")};
};

TEST(QhpMatchTest, TimeWindowAndDays) {
  Entry working(D("QHPName=w, uid=u, dc=com"));
  working.AddInt("startTime", 830);
  working.AddInt("endTime", 1730);
  Entry weekend(D("QHPName=we, uid=u, dc=com"));
  weekend.AddInt("daysOfWeek", 6);
  weekend.AddInt("daysOfWeek", 7);

  CallContext weekday_noon{"", 1200, 3};
  CallContext weekday_night{"", 2300, 3};
  CallContext saturday{"", 1200, 6};
  EXPECT_TRUE(QhpMatches(working, weekday_noon));
  EXPECT_FALSE(QhpMatches(working, weekday_night));
  EXPECT_FALSE(QhpMatches(weekend, weekday_noon));
  EXPECT_TRUE(QhpMatches(weekend, saturday));
}

TEST(QhpMatchTest, CallerAllowlist) {
  Entry vip(D("QHPName=v, uid=u, dc=com"));
  vip.AddString("callerUid", "boss");
  EXPECT_TRUE(QhpMatches(vip, CallContext{"boss", 1200, 1}));
  EXPECT_FALSE(QhpMatches(vip, CallContext{"stranger", 1200, 1}));
  EXPECT_FALSE(QhpMatches(vip, CallContext{"", 1200, 1}));
}

TEST(TopsResolverTest, WorkingHoursReachesOfficePhone) {
  // Fig. 11: during working hours, jag's workinghours QHP (priority 2)
  // matches and its highest-priority call appearance is the office phone.
  PaperTops f;
  CallResolution r =
      f.resolver.Resolve("jag", CallContext{"", 1000, 3}).TakeValue();
  ASSERT_TRUE(r.subscriber_found);
  ASSERT_TRUE(r.winning_qhp.has_value());
  EXPECT_TRUE(r.winning_qhp->HasPair("QHPName",
                                     Value::String("workinghours")));
  ASSERT_EQ(r.appearances.size(), 2u);
  EXPECT_TRUE(r.appearances[0].HasPair("CANumber",
                                       Value::String("9733608750")));
  EXPECT_TRUE(r.appearances[1].HasPair("description",
                                       Value::String("secretary")));
}

TEST(TopsResolverTest, WeekendWinsByPriority) {
  // On a Saturday noon BOTH QHPs match (weekend by day; workinghours by
  // time window), and the weekend QHP has the better (lower) priority.
  PaperTops f;
  CallResolution r =
      f.resolver.Resolve("jag", CallContext{"", 1200, 6}).TakeValue();
  ASSERT_TRUE(r.winning_qhp.has_value());
  EXPECT_TRUE(r.winning_qhp->HasPair("QHPName", Value::String("weekend")));
  // The weekend QHP has no call appearances in the fixture.
  EXPECT_TRUE(r.appearances.empty());
}

TEST(TopsResolverTest, UnknownSubscriber) {
  PaperTops f;
  CallResolution r =
      f.resolver.Resolve("nobody", CallContext{"", 1000, 3}).TakeValue();
  EXPECT_FALSE(r.subscriber_found);
  EXPECT_FALSE(r.winning_qhp.has_value());
}

TEST(TopsResolverTest, NoMatchingQhp) {
  // Weekday 0500: workinghours window hasn't opened, weekend needs 6/7.
  PaperTops f;
  CallResolution r =
      f.resolver.Resolve("jag", CallContext{"", 500, 2}).TakeValue();
  EXPECT_TRUE(r.subscriber_found);
  EXPECT_FALSE(r.winning_qhp.has_value());
}

TEST(TopsResolverTest, DynamicPolicyUpdateThroughMutableStore) {
  // Sec. 2.2: "subscriber policies can be created and modified
  // dynamically". Add a do-not-disturb QHP at top priority and watch the
  // resolution flip.
  SimDisk disk(1024), scratch(1024);
  DirectoryStore store(&disk, testing::PaperSchema());
  DirectoryInstance inst = testing::PaperInstance();
  for (const auto& [key, entry] : inst) {
    (void)key;
    ASSERT_TRUE(store.Add(entry).ok());
  }
  TopsResolver resolver(&scratch, &store, D("dc=research, dc=att, dc=com"));
  CallContext ctx{"", 1000, 3};
  CallResolution before = resolver.Resolve("jag", ctx).TakeValue();
  ASSERT_TRUE(before.winning_qhp.has_value());
  EXPECT_TRUE(before.winning_qhp->HasPair("QHPName",
                                          Value::String("workinghours")));

  Dn jag = D("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com");
  Dn dnd = jag.Child(Rdn::Single("QHPName", "dnd").TakeValue());
  Entry q(dnd);
  q.AddClass("QHP");
  q.AddString("QHPName", "dnd");
  q.AddInt("priority", 0);  // beats everything
  ASSERT_TRUE(store.Add(q).ok());

  CallResolution after = resolver.Resolve("jag", ctx).TakeValue();
  ASSERT_TRUE(after.winning_qhp.has_value());
  EXPECT_TRUE(after.winning_qhp->HasPair("QHPName", Value::String("dnd")));
  EXPECT_TRUE(after.appearances.empty());  // no CAs: unreachable

  // Remove it again: back to the office phone.
  ASSERT_TRUE(store.Remove(dnd).ok());
  CallResolution restored = resolver.Resolve("jag", ctx).TakeValue();
  EXPECT_TRUE(restored.winning_qhp->HasPair(
      "QHPName", Value::String("workinghours")));
}

}  // namespace
}  // namespace ndq
