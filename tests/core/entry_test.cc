#include "core/entry.h"

#include <gtest/gtest.h>

#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;

TEST(EntryTest, AddAndQueryValues) {
  Entry e(D("uid=jag, dc=com"));
  e.AddString("uid", "jag");
  e.AddInt("priority", 2);
  EXPECT_TRUE(e.HasAttribute("uid"));
  EXPECT_TRUE(e.HasPair("priority", Value::Int(2)));
  EXPECT_FALSE(e.HasPair("priority", Value::Int(3)));
  EXPECT_FALSE(e.HasAttribute("missing"));
  EXPECT_EQ(e.Values("missing"), nullptr);
}

TEST(EntryTest, MultiValuedAttributes) {
  // Sec. 3.5: an attribute may have multiple values.
  Entry e(D("PVPName=w, dc=com"));
  e.AddInt("PVDayOfWeek", 6);
  e.AddInt("PVDayOfWeek", 7);
  const std::vector<Value>* vals = e.Values("PVDayOfWeek");
  ASSERT_NE(vals, nullptr);
  EXPECT_EQ(vals->size(), 2u);
  EXPECT_EQ((*vals)[0], Value::Int(6));
  EXPECT_EQ((*vals)[1], Value::Int(7));
}

TEST(EntryTest, ValuesAreASet) {
  // val(r) is a set of pairs: duplicates collapse.
  Entry e(D("uid=x, dc=com"));
  e.AddInt("priority", 1);
  e.AddInt("priority", 1);
  EXPECT_EQ(e.Values("priority")->size(), 1u);
  EXPECT_EQ(e.NumPairs(), 1u);
}

TEST(EntryTest, ValuesKeptSorted) {
  Entry e(D("uid=x, dc=com"));
  e.AddInt("p", 5);
  e.AddInt("p", 1);
  e.AddInt("p", 3);
  const std::vector<Value>& v = *e.Values("p");
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(),
                             [](const Value& a, const Value& b) {
                               return a < b;
                             }));
}

TEST(EntryTest, Classes) {
  Entry e(D("uid=x, dc=com"));
  e.AddClass("inetOrgPerson");
  e.AddClass("TOPSSubscriber");
  std::vector<std::string> classes = e.Classes();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_TRUE(e.HasClass("inetOrgPerson"));
  EXPECT_TRUE(e.HasClass("TOPSSubscriber"));
  EXPECT_FALSE(e.HasClass("QHP"));
}

TEST(EntryTest, RemoveValueAndAttribute) {
  Entry e(D("uid=x, dc=com"));
  e.AddInt("p", 1);
  e.AddInt("p", 2);
  EXPECT_TRUE(e.RemoveValue("p", Value::Int(1)));
  EXPECT_FALSE(e.RemoveValue("p", Value::Int(1)));
  EXPECT_EQ(e.Values("p")->size(), 1u);
  EXPECT_EQ(e.RemoveAttribute("p"), 1u);
  EXPECT_FALSE(e.HasAttribute("p"));
  EXPECT_EQ(e.RemoveAttribute("p"), 0u);
}

TEST(EntryTest, RemovingLastValueDropsAttribute) {
  Entry e(D("uid=x, dc=com"));
  e.AddInt("p", 1);
  EXPECT_TRUE(e.RemoveValue("p", Value::Int(1)));
  EXPECT_FALSE(e.HasAttribute("p"));
}

TEST(EntryTest, DnRefValuesAreNormalized) {
  Entry e(D("SLAPolicyName=p, dc=com"));
  e.AddDnRef("SLATPRef", D("TPName=t,dc=att,dc=com"));
  const std::vector<Value>& vals = *e.Values("SLATPRef");
  EXPECT_EQ(vals[0].AsString(), "TPName=t, dc=att, dc=com");
}

TEST(EntryTest, ToStringMatchesFigureStyle) {
  Entry e(D("QHPName=weekend, uid=jag, dc=com"));
  e.AddClass("QHP");
  e.AddString("QHPName", "weekend");
  e.AddInt("priority", 1);
  std::string s = e.ToString();
  EXPECT_NE(s.find("dn: QHPName=weekend, uid=jag, dc=com"), std::string::npos);
  EXPECT_NE(s.find("priority: 1"), std::string::npos);
  EXPECT_NE(s.find("objectClass: QHP"), std::string::npos);
}

TEST(EntryTest, EqualityComparesDnAndValues) {
  Entry a(D("uid=x, dc=com"));
  a.AddInt("p", 1);
  Entry b(D("uid=x, dc=com"));
  b.AddInt("p", 1);
  EXPECT_EQ(a, b);
  b.AddInt("p", 2);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace ndq
