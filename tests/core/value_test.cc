#include "core/value.h"

#include <gtest/gtest.h>

#include "core/schema.h"

namespace ndq {
namespace {

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value::Int(5).is_int());
  EXPECT_TRUE(Value::String("x").is_string());
  EXPECT_TRUE(Value::DnRef("dc=com").is_dn());
  EXPECT_EQ(Value::Int(-3).AsInt(), -3);
  EXPECT_EQ(Value::String("abc").AsString(), "abc");
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Int(-5), Value::Int(0));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  // Cross-kind ordering is by kind, deterministic.
  EXPECT_LT(Value::Int(999), Value::String("a"));
  EXPECT_LT(Value::String("zzz"), Value::DnRef("a=b"));
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int(7), Value::Int(7));
  EXPECT_NE(Value::Int(7), Value::Int(8));
  EXPECT_NE(Value::Int(7), Value::String("7"));
  EXPECT_NE(Value::String("x"), Value::DnRef("x"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Int(-1).ToString(), "-1");
  EXPECT_EQ(Value::String("hello").ToString(), "hello");
  EXPECT_EQ(Value::DnRef("dc=att, dc=com").ToString(), "dc=att, dc=com");
}

TEST(ValueTest, TypeKindNames) {
  EXPECT_STREQ(TypeKindToString(TypeKind::kInt), "int");
  EXPECT_STREQ(TypeKindToString(TypeKind::kString), "string");
  EXPECT_STREQ(TypeKindToString(TypeKind::kDn), "dn");
  EXPECT_EQ(TypeKindFromString("int").ValueOrDie(), TypeKind::kInt);
  EXPECT_EQ(TypeKindFromString("distinguishedName").ValueOrDie(),
            TypeKind::kDn);
  EXPECT_FALSE(TypeKindFromString("float").ok());
}

TEST(ValueTest, ParseValueAs) {
  EXPECT_EQ(ParseValueAs(TypeKind::kInt, "123").ValueOrDie(), Value::Int(123));
  EXPECT_EQ(ParseValueAs(TypeKind::kInt, "-9").ValueOrDie(), Value::Int(-9));
  EXPECT_FALSE(ParseValueAs(TypeKind::kInt, "12x").ok());
  EXPECT_FALSE(ParseValueAs(TypeKind::kInt, "").ok());
  EXPECT_EQ(ParseValueAs(TypeKind::kString, "ab c").ValueOrDie(),
            Value::String("ab c"));
  // DN values are normalized: whitespace canonicalized.
  EXPECT_EQ(ParseValueAs(TypeKind::kDn, "dc=att,dc=com").ValueOrDie(),
            Value::DnRef("dc=att, dc=com"));
  EXPECT_FALSE(ParseValueAs(TypeKind::kDn, "notadn").ok());
}

}  // namespace
}  // namespace ndq
