#include "core/ldif_update.h"

#include <gtest/gtest.h>

#include "store/directory_store.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;
using testing::PaperInstance;
using testing::PaperSchema;

struct StoreFixture {
  SimDisk disk{512};
  DirectoryStore store{&disk, PaperSchema()};
  StoreFixture() {
    DirectoryInstance inst = PaperInstance();
    for (const auto& [key, entry] : inst) {
      (void)key;
      EXPECT_TRUE(store.Add(entry).ok());
    }
  }
};

TEST(LdifUpdateTest, AddRecord) {
  StoreFixture f;
  const char* text =
      "dn: QHPName=dnd, uid=jag, ou=userProfiles, dc=research, dc=att, "
      "dc=com\n"
      "changetype: add\n"
      "objectClass: QHP\n"
      "QHPName: dnd\n"
      "priority: 0\n";
  Result<size_t> n = ApplyLdifChanges(PaperSchema(), text, &f.store);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1u);
  std::optional<Entry> e =
      f.store
          .Get(D("QHPName=dnd, uid=jag, ou=userProfiles, dc=research, "
                 "dc=att, dc=com"))
          .TakeValue();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->HasPair("priority", Value::Int(0)));
}

TEST(LdifUpdateTest, ImplicitAddWithoutChangetype) {
  StoreFixture f;
  const char* text =
      "dn: uid=milo, ou=userProfiles, dc=research, dc=att, dc=com\n"
      "objectClass: TOPSSubscriber\n"
      "uid: milo\n";
  ASSERT_TRUE(ApplyLdifChanges(PaperSchema(), text, &f.store).ok());
  EXPECT_TRUE(f.store
                  .Get(D("uid=milo, ou=userProfiles, dc=research, dc=att, "
                         "dc=com"))
                  .TakeValue()
                  .has_value());
}

TEST(LdifUpdateTest, DeleteRecord) {
  StoreFixture f;
  const char* text =
      "dn: CANumber=9733608750, QHPName=workinghours, uid=jag, "
      "ou=userProfiles, dc=research, dc=att, dc=com\n"
      "changetype: delete\n";
  ASSERT_TRUE(ApplyLdifChanges(PaperSchema(), text, &f.store).ok());
  EXPECT_FALSE(
      f.store
          .Get(D("CANumber=9733608750, QHPName=workinghours, uid=jag, "
                 "ou=userProfiles, dc=research, dc=att, dc=com"))
          .TakeValue()
          .has_value());
}

TEST(LdifUpdateTest, ModifyReplaceAddDelete) {
  StoreFixture f;
  Dn qhp = D("QHPName=weekend, uid=jag, ou=userProfiles, dc=research, "
             "dc=att, dc=com");
  const char* text =
      "dn: QHPName=weekend, uid=jag, ou=userProfiles, dc=research, "
      "dc=att, dc=com\n"
      "changetype: modify\n"
      "replace: priority\n"
      "priority: 7\n"
      "-\n"
      "add: daysOfWeek\n"
      "daysOfWeek: 5\n"
      "-\n"
      "delete: daysOfWeek\n"
      "daysOfWeek: 6\n"
      "-\n";
  Result<size_t> n = ApplyLdifChanges(PaperSchema(), text, &f.store);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  std::optional<Entry> e = f.store.Get(qhp).TakeValue();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->HasPair("priority", Value::Int(7)));
  EXPECT_FALSE(e->HasPair("priority", Value::Int(1)));
  EXPECT_TRUE(e->HasPair("daysOfWeek", Value::Int(5)));
  EXPECT_FALSE(e->HasPair("daysOfWeek", Value::Int(6)));
  EXPECT_TRUE(e->HasPair("daysOfWeek", Value::Int(7)));
}

TEST(LdifUpdateTest, ModifyDeleteWholeAttribute) {
  StoreFixture f;
  const char* text =
      "dn: QHPName=workinghours, uid=jag, ou=userProfiles, dc=research, "
      "dc=att, dc=com\n"
      "changetype: modify\n"
      "delete: startTime\n"
      "-\n";
  ASSERT_TRUE(ApplyLdifChanges(PaperSchema(), text, &f.store).ok());
  std::optional<Entry> e =
      f.store
          .Get(D("QHPName=workinghours, uid=jag, ou=userProfiles, "
                 "dc=research, dc=att, dc=com"))
          .TakeValue();
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->HasAttribute("startTime"));
}

TEST(LdifUpdateTest, MultipleRecordsApplyInOrder) {
  StoreFixture f;
  Dn base = D("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com");
  std::string text =
      "dn: QHPName=tmp, uid=jag, ou=userProfiles, dc=research, dc=att, "
      "dc=com\n"
      "changetype: add\n"
      "objectClass: QHP\n"
      "QHPName: tmp\n"
      "\n"
      "dn: QHPName=tmp, uid=jag, ou=userProfiles, dc=research, dc=att, "
      "dc=com\n"
      "changetype: modify\n"
      "replace: priority\n"
      "priority: 4\n"
      "-\n"
      "\n"
      "dn: QHPName=tmp, uid=jag, ou=userProfiles, dc=research, dc=att, "
      "dc=com\n"
      "changetype: delete\n";
  Result<size_t> n = ApplyLdifChanges(PaperSchema(), text, &f.store);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 3u);
  EXPECT_FALSE(f.store.Get(base.Child(Rdn::Single("QHPName", "tmp")
                                          .TakeValue()))
                   .TakeValue()
                   .has_value());
}

TEST(LdifUpdateTest, FailureReportsRecordIndex) {
  StoreFixture f;
  std::string text =
      "dn: dc=newroot\n"
      "changetype: add\n"
      "objectClass: dcObject\n"
      "dc: newroot\n"
      "\n"
      "dn: dc=missing, dc=void\n"
      "changetype: delete\n";
  Result<size_t> n = ApplyLdifChanges(PaperSchema(), text, &f.store);
  ASSERT_FALSE(n.ok());
  EXPECT_NE(n.status().message().find("change record 2"),
            std::string::npos);
  // The first record still applied (stream semantics).
  EXPECT_TRUE(f.store.Get(D("dc=newroot")).TakeValue().has_value());
}

TEST(LdifUpdateTest, ParseErrors) {
  Schema s = PaperSchema();
  EXPECT_FALSE(ParseLdifChanges(s, "changetype: add\n").ok());
  EXPECT_FALSE(
      ParseLdifChanges(s, "dn: dc=com\nchangetype: rename\n").ok());
  EXPECT_FALSE(
      ParseLdifChanges(s, "dn: dc=com\nchangetype: modify\n").ok());
  EXPECT_FALSE(ParseLdifChanges(
                   s,
                   "dn: dc=com\nchangetype: modify\nreplace: priority\n"
                   "daysOfWeek: 3\n-\n")
                   .ok());  // value attr mismatch
  EXPECT_FALSE(ParseLdifChanges(
                   s, "dn: dc=com\nchangetype: delete\nextra: line\n")
                   .ok());
}

}  // namespace
}  // namespace ndq
