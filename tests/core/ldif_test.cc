#include "core/ldif.h"

#include <gtest/gtest.h>

#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;
using testing::PaperInstance;
using testing::PaperSchema;

TEST(LdifTest, RoundTripPaperInstance) {
  DirectoryInstance inst = PaperInstance();
  std::string text = WriteLdif(inst);
  DirectoryInstance reloaded(PaperSchema());
  Result<size_t> n = LoadLdif(text, &reloaded);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, inst.size());
  // Every entry round-trips exactly.
  for (const auto& [key, entry] : inst) {
    const Entry* back = reloaded.FindByKey(key);
    ASSERT_NE(back, nullptr) << entry.dn().ToString();
    EXPECT_EQ(*back, entry);
  }
}

TEST(LdifTest, ParsesTypedValues) {
  Schema s = PaperSchema();
  std::string text =
      "dn: QHPName=weekend, uid=jag, dc=com\n"
      "objectClass: QHP\n"
      "QHPName: weekend\n"
      "priority: 1\n"
      "daysOfWeek: 6\n"
      "daysOfWeek: 7\n";
  Result<std::vector<Entry>> r = ParseLdif(s, text);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  const Entry& e = (*r)[0];
  EXPECT_TRUE(e.HasPair("priority", Value::Int(1)));
  EXPECT_EQ(e.Values("daysOfWeek")->size(), 2u);
}

TEST(LdifTest, DnValuedAttributesNormalized) {
  Schema s = PaperSchema();
  std::string text =
      "dn: SLAPolicyName=p, dc=com\n"
      "objectClass: SLAPolicyRules\n"
      "SLAPolicyName: p\n"
      "SLATPRef: TPName=t,dc=com\n";
  Result<std::vector<Entry>> r = ParseLdif(s, text);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].Values("SLATPRef")->at(0).AsString(),
            "TPName=t, dc=com");
}

TEST(LdifTest, MultipleRecordsSeparatedByBlankLines) {
  Schema s = PaperSchema();
  std::string text =
      "dn: dc=com\nobjectClass: dcObject\ndc: com\n"
      "\n"
      "# a comment\n"
      "dn: dc=org\nobjectClass: dcObject\ndc: org\n";
  Result<std::vector<Entry>> r = ParseLdif(s, text);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(LdifTest, Errors) {
  Schema s = PaperSchema();
  EXPECT_FALSE(ParseLdif(s, "uid: jag\n").ok());  // attribute before dn
  EXPECT_FALSE(ParseLdif(s, "dn: dc=com\nnoColonHere\n").ok());
  EXPECT_FALSE(ParseLdif(s, "dn: dc=com\nunknownAttr: x\n").ok());
  EXPECT_FALSE(ParseLdif(s, "dn: dc=com\npriority: notanint\n").ok());
  // dn inside a record.
  EXPECT_FALSE(ParseLdif(s, "dn: dc=com\ndn: dc=org\n").ok());
}

TEST(LdifTest, LoadValidatesThroughInstance) {
  DirectoryInstance inst(PaperSchema());
  // Entry lacks objectClass -> instance validation rejects it.
  std::string text = "dn: dc=com\ndc: com\n";
  EXPECT_FALSE(LoadLdif(text, &inst).ok());
}

}  // namespace
}  // namespace ndq
