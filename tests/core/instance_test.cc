#include "core/instance.h"

#include <gtest/gtest.h>

#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;
using testing::PaperInstance;

TEST(InstanceTest, PaperFixtureLoads) {
  DirectoryInstance inst = PaperInstance();
  EXPECT_EQ(inst.size(), 23u);
  EXPECT_NE(inst.Find(D("dc=att, dc=com")), nullptr);
  EXPECT_EQ(inst.Find(D("dc=nonexistent, dc=com")), nullptr);
}

TEST(InstanceTest, DnIsAKey) {
  DirectoryInstance inst = PaperInstance();
  Entry dup(D("dc=com"));
  dup.AddClass("dcObject");
  dup.AddString("dc", "com");
  Status s = inst.Add(std::move(dup));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(InstanceTest, IterationIsInHierKeyOrder) {
  DirectoryInstance inst = PaperInstance();
  std::string prev;
  bool first = true;
  for (const auto& [key, entry] : inst) {
    (void)entry;
    if (!first) {
      EXPECT_LT(prev, key);
    }
    prev = key;
    first = false;
  }
}

TEST(InstanceTest, ScopeBase) {
  DirectoryInstance inst = PaperInstance();
  auto r = inst.EntriesInScope(D("dc=att, dc=com"), Scope::kBase);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0]->dn(), D("dc=att, dc=com"));
  EXPECT_TRUE(inst.EntriesInScope(D("dc=no, dc=com"), Scope::kBase).empty());
}

TEST(InstanceTest, ScopeOneIncludesBaseAndChildren) {
  // Def. 4.1: one = base entry + its children.
  DirectoryInstance inst = PaperInstance();
  auto r = inst.EntriesInScope(D("dc=research, dc=att, dc=com"), Scope::kOne);
  // base + corona + userProfiles + networkPolicies
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0]->dn(), D("dc=research, dc=att, dc=com"));
}

TEST(InstanceTest, ScopeSubIsWholeSubtree) {
  DirectoryInstance inst = PaperInstance();
  auto r = inst.EntriesInScope(D("ou=networkPolicies, dc=research, dc=att, "
                                 "dc=com"),
                               Scope::kSub);
  EXPECT_EQ(r.size(), 13u);  // the whole QoS fragment
  auto all = inst.EntriesInScope(Dn(), Scope::kSub);
  EXPECT_EQ(all.size(), inst.size());  // null base = whole forest
}

TEST(InstanceTest, HierarchyNavigation) {
  DirectoryInstance inst = PaperInstance();
  const Entry* jag =
      inst.Find(D("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com"));
  ASSERT_NE(jag, nullptr);
  const Entry* parent = inst.ParentOf(*jag);
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->dn(), D("ou=userProfiles, dc=research, dc=att, dc=com"));

  auto children = inst.ChildrenOf(*jag);
  ASSERT_EQ(children.size(), 2u);  // weekend + workinghours QHPs

  auto ancestors = inst.AncestorsOf(*jag);
  EXPECT_EQ(ancestors.size(), 4u);  // userProfiles, research, att, com

  auto descendants = inst.DescendantsOf(*jag);
  EXPECT_EQ(descendants.size(), 4u);  // 2 QHPs + 2 call appearances
}

TEST(InstanceTest, RemoveLeafOnly) {
  DirectoryInstance inst = PaperInstance();
  // Removing an entry with descendants is rejected.
  Status s = inst.Remove(
      D("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com"));
  EXPECT_FALSE(s.ok());
  // Removing a leaf works.
  Dn leaf = D(
      "CANumber=9733608750, QHPName=workinghours, uid=jag, ou=userProfiles, "
      "dc=research, dc=att, dc=com");
  EXPECT_TRUE(inst.Remove(leaf).ok());
  EXPECT_EQ(inst.Find(leaf), nullptr);
  EXPECT_EQ(inst.Remove(leaf).code(), StatusCode::kNotFound);
}

TEST(InstanceTest, PutReplaces) {
  DirectoryInstance inst = PaperInstance();
  Dn dn = D("dc=corona, dc=research, dc=att, dc=com");
  Entry e(dn);
  e.AddClass("dcObject");
  e.AddString("dc", "corona");
  e.AddString("description", "updated");
  // description not allowed for dcObject -> validation failure via Put.
  EXPECT_FALSE(inst.Put(e).ok());
  e.RemoveAttribute("description");
  EXPECT_TRUE(inst.Put(e).ok());
  EXPECT_EQ(inst.size(), 23u);  // replaced, not added
}

TEST(InstanceTest, ValidationCanBeDisabled) {
  DirectoryInstance inst(Schema(), /*validate=*/false);
  Entry e(D("x=1"));
  EXPECT_TRUE(inst.Add(std::move(e)).ok());  // no objectClass, no schema
  EXPECT_EQ(inst.size(), 1u);
}

TEST(InstanceTest, ForestAllowsMultipleRoots) {
  // Sec. 3.2 footnote 3: the model is a forest, not a tree.
  DirectoryInstance inst(Schema(), /*validate=*/false);
  ASSERT_TRUE(inst.Add(Entry(D("dc=com"))).ok());
  ASSERT_TRUE(inst.Add(Entry(D("dc=org"))).ok());
  ASSERT_TRUE(inst.Add(Entry(D("dc=net, dc=org"))).ok());
  EXPECT_EQ(inst.EntriesInScope(Dn(), Scope::kSub).size(), 3u);
}

}  // namespace
}  // namespace ndq
