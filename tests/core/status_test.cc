#include "core/status.h"

#include <memory>

#include <gtest/gtest.h>

namespace ndq {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dn");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dn");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dn");
}

TEST(StatusTest, AllFactories) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.TakeValue(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  NDQ_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseHalf(3, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = r.TakeValue();
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace ndq
