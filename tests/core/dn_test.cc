#include "core/dn.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace ndq {
namespace {

Dn MustParse(const std::string& text) {
  Result<Dn> r = Dn::Parse(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.TakeValue();
}

TEST(DnTest, ParseSimple) {
  Dn dn = MustParse("dc=att, dc=com");
  EXPECT_EQ(dn.depth(), 2u);
  EXPECT_EQ(dn.ToString(), "dc=att, dc=com");
  EXPECT_EQ(dn.rdn().pairs().size(), 1u);
  EXPECT_EQ(dn.rdn().pairs()[0].first, "dc");
  EXPECT_EQ(dn.rdn().pairs()[0].second, "att");
}

TEST(DnTest, ParseDeep) {
  Dn dn = MustParse(
      "CANumber=9733608751, QHPName=workinghours, uid=jag, "
      "ou=userProfiles, dc=research, dc=att, dc=com");
  EXPECT_EQ(dn.depth(), 7u);
  EXPECT_EQ(dn.Parent().ToString(),
            "QHPName=workinghours, uid=jag, ou=userProfiles, dc=research, "
            "dc=att, dc=com");
}

TEST(DnTest, NullDn) {
  Dn dn = MustParse("");
  EXPECT_TRUE(dn.IsNull());
  EXPECT_EQ(dn.depth(), 0u);
  EXPECT_EQ(dn.HierKey(), "");
  EXPECT_EQ(dn.ToString(), "");
}

TEST(DnTest, WhitespaceInsensitive) {
  EXPECT_EQ(MustParse("dc=att,dc=com"), MustParse("dc=att , dc=com"));
  EXPECT_EQ(MustParse("  dc=att, dc=com  "), MustParse("dc=att,dc=com"));
}

TEST(DnTest, MultiValuedRdnIsASet) {
  // A multi-valued RDN is a *set* of pairs: order does not matter.
  Dn a = MustParse("cn=x+sn=y, dc=com");
  Dn b = MustParse("sn=y+cn=x, dc=com");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.HierKey(), b.HierKey());
  EXPECT_EQ(a.rdn().pairs().size(), 2u);
}

TEST(DnTest, EscapedSpecialCharacters) {
  Dn dn = MustParse(R"(cn=doe\, john, dc=com)");
  EXPECT_EQ(dn.depth(), 2u);
  EXPECT_EQ(dn.rdn().pairs()[0].second, "doe, john");
  // Round-trips through ToString/Parse.
  EXPECT_EQ(MustParse(dn.ToString()), dn);

  Dn plus = MustParse(R"(cn=a\+b, dc=com)");
  EXPECT_EQ(plus.rdn().pairs()[0].second, "a+b");
  EXPECT_EQ(MustParse(plus.ToString()), plus);
}

// Regression (fuzzer corpus `dn-roundtrip`): values with leading/trailing
// spaces, backslash runs, and escaped delimiters must survive
// parse -> print -> parse unchanged.
TEST(DnTest, EscapedEdgeValuesRoundTrip) {
  struct Case {
    const char* text;   // input to Parse
    const char* value;  // expected raw RDN value at the leaf
  };
  const Case cases[] = {
      {R"(cn=\ leading, dc=com)", " leading"},
      {R"(cn=trailing\ , dc=com)", "trailing "},
      {R"(cn=\ both\ , dc=com)", " both "},
      {R"(cn=\\, dc=com)", "\\"},
      {R"(cn=a\\\,b, dc=com)", "a\\,b"},
      {R"(cn=a\=b, dc=com)", "a=b"},
      {R"(cn=\,\=\+\\, dc=com)", ",=+\\"},
      {R"(cn=mid dle, dc=com)", "mid dle"},
  };
  for (const Case& c : cases) {
    Dn dn = MustParse(c.text);
    ASSERT_EQ(dn.rdn().pairs()[0].second, c.value) << c.text;
    // parse -> print -> parse is the identity.
    EXPECT_EQ(MustParse(dn.ToString()), dn) << c.text << " -> "
                                            << dn.ToString();
  }
}

TEST(DnTest, BuiltValuesWithEdgeSpacesRoundTrip) {
  // Values constructed programmatically (not via Parse) must print in a
  // form Parse maps back to the same value.
  for (const char* raw : {" leading", "trailing ", " ", "  ", "a ", " a",
                          "back\\slash ", "\\ ", "a\\", "x  y"}) {
    Dn dn = Dn::Make({Rdn::Single("cn", raw).TakeValue()}).TakeValue();
    Dn back = MustParse(dn.ToString());
    ASSERT_EQ(back, dn) << '[' << raw << "] printed as " << dn.ToString();
    EXPECT_EQ(back.rdn().pairs()[0].second, raw);
  }
}

TEST(DnTest, TrailingSpaceAfterEscapedBackslashIsTrimmed) {
  // In "cn=a\\ " the backslash is escaped, so the space is NOT: it must be
  // trimmed (the old single-char lookback kept it).
  Dn dn = MustParse("cn=a\\\\ , dc=com");
  EXPECT_EQ(dn.rdn().pairs()[0].second, "a\\");
  // Odd-length run: the space IS escaped and survives.
  Dn kept = MustParse("cn=a\\\\\\ , dc=com");
  EXPECT_EQ(kept.rdn().pairs()[0].second, "a\\ ");
}

TEST(DnTest, KeyOrderWithEscapedDelimiters) {
  // Escaped delimiters live unescaped inside HierKeys; since RDN values may
  // not contain control bytes, the key separators (0x1e/0x1f) still yield
  // prefix-of-descendant order for such values.
  Dn parent = MustParse(R"(o=a\,b\=c, dc=com)");
  EXPECT_EQ(parent.rdn().pairs()[0].second, "a,b=c");
  Dn child = MustParse(R"(cn=x\+y, o=a\,b\=c, dc=com)");
  Dn grand = MustParse(R"(uid=z\\ , cn=x\+y, o=a\,b\=c, dc=com)");
  EXPECT_TRUE(parent.IsParentOf(child));
  EXPECT_TRUE(parent.IsAncestorOf(grand));
  EXPECT_TRUE(KeyIsAncestor(parent.HierKey(), grand.HierKey()));
  EXPECT_LT(parent.HierKey(), child.HierKey());
  EXPECT_LT(child.HierKey(), grand.HierKey());
  EXPECT_LT(grand.HierKey(), KeySubtreeEnd(parent.HierKey()));
  // A sibling of `parent` whose value string-extends it stays outside.
  Dn sib = MustParse(R"(o=a\,b\=cd, dc=com)");
  EXPECT_FALSE(KeyIsAncestor(parent.HierKey(), sib.HierKey()));
  EXPECT_TRUE(sib.HierKey() >= KeySubtreeEnd(parent.HierKey()) ||
              sib.HierKey() < parent.HierKey());
}

TEST(DnTest, ParseErrors) {
  EXPECT_FALSE(Dn::Parse("dc").ok());             // missing '='
  EXPECT_FALSE(Dn::Parse("dc=,dc=com").ok());     // empty value
  EXPECT_FALSE(Dn::Parse("=x, dc=com").ok());     // empty attribute
  EXPECT_FALSE(Dn::Parse("1dc=x").ok());          // attr starts with digit
  EXPECT_FALSE(Dn::Parse("dc=x\\").ok());         // dangling backslash
  EXPECT_FALSE(Dn::Parse("dc=a\x01").ok());       // control byte
}

TEST(DnTest, ParentChildNavigation) {
  Dn com = MustParse("dc=com");
  Dn att = MustParse("dc=att, dc=com");
  Dn research = MustParse("dc=research, dc=att, dc=com");

  EXPECT_EQ(att.Parent(), com);
  EXPECT_TRUE(com.Parent().IsNull());
  EXPECT_EQ(com.Child(Rdn::Single("dc", "att").TakeValue()), att);

  EXPECT_TRUE(com.IsParentOf(att));
  EXPECT_TRUE(com.IsAncestorOf(att));
  EXPECT_TRUE(com.IsAncestorOf(research));
  EXPECT_FALSE(com.IsParentOf(research));
  EXPECT_TRUE(research.IsDescendantOf(com));
  EXPECT_TRUE(att.IsChildOf(com));
  EXPECT_FALSE(att.IsAncestorOf(att));  // ancestry is proper
  EXPECT_FALSE(att.IsAncestorOf(com));
}

TEST(DnTest, HierKeyParentIsPrefixOfChild) {
  // The property everything else rests on (Sec. 4.2): under the reverse-DN
  // key, a parent's key + separator is a prefix of each descendant's key.
  Dn parent = MustParse("dc=att, dc=com");
  Dn child = MustParse("ou=people, dc=att, dc=com");
  const std::string& pk = parent.HierKey();
  const std::string& ck = child.HierKey();
  ASSERT_LT(pk.size(), ck.size());
  EXPECT_EQ(ck.substr(0, pk.size()), pk);
  EXPECT_EQ(ck[pk.size()], kHierKeySep);
}

TEST(DnTest, HierKeyOrderGroupsSubtrees) {
  // In key order, a subtree is a contiguous run beginning at its root.
  std::vector<Dn> dns = {
      MustParse("dc=com"),
      MustParse("dc=att, dc=com"),
      MustParse("dc=research, dc=att, dc=com"),
      MustParse("ou=people, dc=research, dc=att, dc=com"),
      MustParse("dc=zorg, dc=com"),
      MustParse("dc=att-labs, dc=com"),
  };
  std::sort(dns.begin(), dns.end());
  // dc=att subtree must be contiguous: att, research, people in a row.
  auto pos = [&](const std::string& s) {
    for (size_t i = 0; i < dns.size(); ++i) {
      if (dns[i].ToString() == s) return i;
    }
    return size_t(-1);
  };
  size_t att = pos("dc=att, dc=com");
  size_t research = pos("dc=research, dc=att, dc=com");
  size_t people = pos("ou=people, dc=research, dc=att, dc=com");
  EXPECT_EQ(research, att + 1);
  EXPECT_EQ(people, research + 1);
  // "dc=att-labs" must NOT fall inside the dc=att subtree even though
  // "att" is a string prefix of "att-labs".
  size_t attlabs = pos("dc=att-labs, dc=com");
  EXPECT_TRUE(attlabs < att || attlabs > people);
}

TEST(DnTest, FromHierKeyRoundTrip) {
  for (const char* text : {
           "dc=com",
           "dc=att, dc=com",
           "cn=x+sn=y, ou=p, dc=com",
           "CANumber=9733608751, QHPName=workinghours, uid=jag, "
           "ou=userProfiles, dc=research, dc=att, dc=com",
       }) {
    Dn dn = MustParse(text);
    Result<Dn> back = Dn::FromHierKey(dn.HierKey());
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_EQ(*back, dn) << text;
  }
  Result<Dn> null = Dn::FromHierKey("");
  ASSERT_TRUE(null.ok());
  EXPECT_TRUE(null->IsNull());
}

TEST(DnTest, KeyHelpers) {
  Dn com = MustParse("dc=com");
  Dn att = MustParse("dc=att, dc=com");
  Dn research = MustParse("dc=research, dc=att, dc=com");

  EXPECT_TRUE(KeyIsAncestor(com.HierKey(), research.HierKey()));
  EXPECT_TRUE(KeyIsParent(att.HierKey(), research.HierKey()));
  EXPECT_FALSE(KeyIsParent(com.HierKey(), research.HierKey()));
  EXPECT_TRUE(KeyIsAncestor("", att.HierKey()));  // virtual root
  EXPECT_FALSE(KeyIsAncestor(att.HierKey(), att.HierKey()));

  EXPECT_EQ(KeyDepth(""), 0u);
  EXPECT_EQ(KeyDepth(com.HierKey()), 1u);
  EXPECT_EQ(KeyDepth(research.HierKey()), 3u);

  EXPECT_EQ(KeyParent(research.HierKey()), att.HierKey());
  EXPECT_EQ(KeyParent(com.HierKey()), "");
}

TEST(DnTest, KeySubtreeEndBoundsExactlyTheSubtree) {
  Dn att = MustParse("dc=att, dc=com");
  std::string end = KeySubtreeEnd(att.HierKey());
  // Members of the subtree.
  EXPECT_LE(att.HierKey(), att.HierKey());
  EXPECT_LT(att.HierKey(), end);
  Dn desc = MustParse("ou=x, dc=research, dc=att, dc=com");
  EXPECT_LT(desc.HierKey(), end);
  EXPECT_GE(desc.HierKey(), att.HierKey());
  // Non-members: a sibling whose value extends "att" as a string.
  Dn attlabs = MustParse("dc=att-labs, dc=com");
  EXPECT_TRUE(attlabs.HierKey() >= end || attlabs.HierKey() < att.HierKey());
  // Null key is unbounded.
  EXPECT_EQ(KeySubtreeEnd(""), "");
}

TEST(DnTest, KeyExactEndIsolatesAdjacentKeys) {
  // The point-lookup range [key, KeyExactEnd(key)) must contain `key` and
  // exclude its closest legal neighbors: a child, a multi-pair sibling
  // extending the same RDN, and a sibling whose value extends key's value
  // as a string.
  Dn att = MustParse("dc=att, dc=com");
  std::string end = KeyExactEnd(att.HierKey());
  EXPECT_LT(att.HierKey(), end);

  Dn child = MustParse("dc=research, dc=att, dc=com");
  EXPECT_TRUE(KeyIsParent(att.HierKey(), child.HierKey()));
  EXPECT_GE(child.HierKey(), end) << "child key inside the exact range";

  // Same RDN extended with a second pair sorts immediately after the key
  // (kHierPairSep is the lowest byte a legal extension can add).
  std::string multi_pair =
      att.HierKey() + std::string(1, kHierPairSep) + "o=x";
  EXPECT_GE(multi_pair, end) << "multi-pair sibling inside the exact range";

  Dn attlabs = MustParse("dc=att-labs, dc=com");
  EXPECT_GE(attlabs.HierKey(), end)
      << "value-extending sibling inside the exact range";

  // And nothing legal sorts between the key and its end: the end is the
  // key plus the smallest legal continuation byte.
  EXPECT_EQ(end.substr(0, att.HierKey().size()), att.HierKey());
  EXPECT_EQ(end.size(), att.HierKey().size() + 1);
  EXPECT_LT(end.back(), kHierKeySep + 1);
}

TEST(DnTest, KeyDescendantsBeginExcludesTheRootAndSiblings) {
  Dn att = MustParse("dc=att, dc=com");
  std::string begin = KeyDescendantsBegin(att.HierKey());
  // The root itself and every multi-pair/value-extending sibling sort
  // BEFORE the descendants range.
  EXPECT_LT(att.HierKey(), begin);
  std::string multi_pair =
      att.HierKey() + std::string(1, kHierPairSep) + "o=x";
  EXPECT_LT(multi_pair, begin);

  Dn child = MustParse("dc=research, dc=att, dc=com");
  Dn grand = MustParse("ou=y, dc=research, dc=att, dc=com");
  EXPECT_GE(child.HierKey(), begin);
  EXPECT_GE(grand.HierKey(), begin);
  // Descendants end where the subtree ends.
  EXPECT_LT(child.HierKey(), KeySubtreeEnd(att.HierKey()));

  // The null key's descendants are the whole forest.
  EXPECT_EQ(KeyDescendantsBegin(""), "");
}

TEST(DnTest, KeyInSubtreePostFiltersTheScanRange) {
  Dn att = MustParse("dc=att, dc=com");
  const std::string root = att.HierKey();
  // Members: the root and proper descendants at any depth.
  EXPECT_TRUE(KeyInSubtree(root, root));
  EXPECT_TRUE(KeyInSubtree(root, MustParse("dc=research, dc=att, dc=com")
                                     .HierKey()));
  EXPECT_TRUE(KeyInSubtree(
      root, MustParse("uid=jag, ou=userProfiles, dc=research, dc=att, "
                      "dc=com")
                .HierKey()));
  // Non-members that the range [root, KeySubtreeEnd(root)) DOES yield:
  // the multi-pair sibling. This is exactly what the post-filter is for.
  std::string multi_pair = root + std::string(1, kHierPairSep) + "o=x";
  EXPECT_LT(multi_pair, KeySubtreeEnd(root));
  EXPECT_FALSE(KeyInSubtree(root, multi_pair));
  // Plain non-members.
  EXPECT_FALSE(KeyInSubtree(root, MustParse("dc=att-labs, dc=com").HierKey()));
  EXPECT_FALSE(KeyInSubtree(root, MustParse("dc=com").HierKey()));
  EXPECT_FALSE(KeyInSubtree(root, ""));
  // The null root contains everything, including the null key.
  EXPECT_TRUE(KeyInSubtree("", root));
  EXPECT_TRUE(KeyInSubtree("", ""));
}

// Property test: random DNs obey the prefix/ordering invariants.
class DnPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DnPropertyTest, RandomForestInvariants) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> depth_dist(1, 6);
  std::uniform_int_distribution<int> val_dist(0, 30);
  const char* attrs[] = {"dc", "ou", "cn", "uid"};
  // One in four values is adversarial: escapes, delimiters, edge spaces.
  const char* weird[] = {" lead", "trail ", "a,b", "x=y", "p+q", "b\\s",
                         "\\ ", "a\\", " ", "two  spaces "};
  std::vector<Dn> dns;
  for (int i = 0; i < 200; ++i) {
    std::vector<Rdn> rdns;
    int depth = depth_dist(rng);
    for (int d = 0; d < depth; ++d) {
      int v = val_dist(rng);
      std::string value =
          (v % 4 == 0) ? weird[v % 10] : "v" + std::to_string(v);
      rdns.push_back(
          Rdn::Single(attrs[val_dist(rng) % 4], std::move(value))
              .TakeValue());
    }
    dns.push_back(Dn::Make(std::move(rdns)).TakeValue());
  }
  for (const Dn& a : dns) {
    // Round-trip invariants.
    ASSERT_EQ(Dn::Parse(a.ToString()).TakeValue(), a);
    ASSERT_EQ(Dn::FromHierKey(a.HierKey()).TakeValue(), a);
    ASSERT_EQ(KeyDepth(a.HierKey()), a.depth());
    if (a.depth() > 1) {
      ASSERT_TRUE(a.Parent().IsParentOf(a));
      ASSERT_EQ(KeyParent(a.HierKey()), a.Parent().HierKey());
    }
    for (const Dn& b : dns) {
      // Key predicates agree with DN-level predicates.
      ASSERT_EQ(KeyIsAncestor(a.HierKey(), b.HierKey()), a.IsAncestorOf(b));
      ASSERT_EQ(KeyIsParent(a.HierKey(), b.HierKey()), a.IsParentOf(b));
      if (a.IsAncestorOf(b)) {
        // Ancestors sort before descendants and bound their subtrees.
        ASSERT_LT(a.HierKey(), b.HierKey());
        ASSERT_LT(b.HierKey(), KeySubtreeEnd(a.HierKey()));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnPropertyTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace ndq
