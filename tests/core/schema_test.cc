#include "core/schema.h"

#include <gtest/gtest.h>

#include "core/entry.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;
using testing::PaperSchema;

TEST(SchemaTest, ObjectClassAlwaysPresent) {
  Schema s;
  EXPECT_TRUE(s.HasAttribute(kObjectClassAttr));
  EXPECT_EQ(s.AttributeType(kObjectClassAttr).ValueOrDie(),
            TypeKind::kString);
}

TEST(SchemaTest, AddAttributeIdempotentSameType) {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("priority", TypeKind::kInt).ok());
  EXPECT_TRUE(s.AddAttribute("priority", TypeKind::kInt).ok());
  EXPECT_FALSE(s.AddAttribute("priority", TypeKind::kString).ok());
}

TEST(SchemaTest, SharedAttributeTypeAcrossClasses) {
  // Sec. 3.1: occurrences of the same attribute in multiple classes all
  // share the same type — by construction, tau is per-attribute.
  Schema s;
  ASSERT_TRUE(s.AddAttribute("priority", TypeKind::kInt).ok());
  ASSERT_TRUE(s.AddClass("QHP", {"priority"}).ok());
  ASSERT_TRUE(s.AddClass("callAppearance", {"priority"}).ok());
  EXPECT_EQ(s.AttributeType("priority").ValueOrDie(), TypeKind::kInt);
}

TEST(SchemaTest, ClassRequiresDeclaredAttributes) {
  Schema s;
  EXPECT_FALSE(s.AddClass("c", {"undeclared"}).ok());
}

TEST(SchemaTest, AllowedAttributesIncludeObjectClass) {
  Schema s;
  ASSERT_TRUE(s.AddClass("empty", {}).ok());
  auto attrs = s.AllowedAttributes("empty").ValueOrDie();
  EXPECT_EQ(attrs.count(kObjectClassAttr), 1u);
}

TEST(SchemaTest, AttributeAllowedForAnyClass) {
  Schema s = PaperSchema();
  EXPECT_TRUE(s.AttributeAllowedForAny("uid", {"TOPSSubscriber"}));
  EXPECT_TRUE(s.AttributeAllowedForAny("uid",
                                       {"inetOrgPerson", "TOPSSubscriber"}));
  EXPECT_FALSE(s.AttributeAllowedForAny("SLARulePriority", {"QHP"}));
  EXPECT_TRUE(s.AttributeAllowedForAny(kObjectClassAttr, {"QHP"}));
}

TEST(SchemaValidateTest, AcceptsWellFormedEntry) {
  Schema s = PaperSchema();
  Entry e(D("uid=jag, dc=com"));
  e.AddClass("TOPSSubscriber");
  e.AddString("uid", "jag");
  e.AddString("surName", "jagadish");
  EXPECT_TRUE(s.ValidateEntry(e).ok()) << s.ValidateEntry(e).ToString();
}

TEST(SchemaValidateTest, MultiClassEntryMayMixAttributes) {
  // Sec. 3.5: an entry can specify attributes from any of its classes
  // without a single class containing the union.
  Schema s = PaperSchema();
  Entry e(D("uid=jag, dc=com"));
  e.AddClass("inetOrgPerson");
  e.AddClass("TOPSSubscriber");
  e.AddString("uid", "jag");
  e.AddString("telephoneNumber", "555-1234");  // only in inetOrgPerson
  EXPECT_TRUE(s.ValidateEntry(e).ok());
}

TEST(SchemaValidateTest, RejectsEntryWithoutClass) {
  Schema s = PaperSchema();
  Entry e(D("uid=jag, dc=com"));
  e.AddString("uid", "jag");
  EXPECT_FALSE(s.ValidateEntry(e).ok());
}

TEST(SchemaValidateTest, RejectsUndeclaredClass) {
  Schema s = PaperSchema();
  Entry e(D("uid=jag, dc=com"));
  e.AddClass("martian");
  e.AddString("uid", "jag");
  EXPECT_FALSE(s.ValidateEntry(e).ok());
}

TEST(SchemaValidateTest, RejectsDisallowedAttribute) {
  Schema s = PaperSchema();
  Entry e(D("uid=jag, dc=com"));
  e.AddClass("TOPSSubscriber");
  e.AddString("uid", "jag");
  e.AddInt("SLARulePriority", 1);  // not allowed for TOPSSubscriber
  EXPECT_FALSE(s.ValidateEntry(e).ok());
}

TEST(SchemaValidateTest, RejectsWrongType) {
  Schema s = PaperSchema();
  Entry e(D("uid=jag, dc=com"));
  e.AddClass("QHP");
  e.AddValue("QHPName", Value::String("jag"));
  // uid=jag rdn not in val — but first: priority must be int.
  e.AddValue("priority", Value::String("high"));
  EXPECT_FALSE(s.ValidateEntry(e).ok());
}

TEST(SchemaValidateTest, EnforcesRdnSubsetOfVal) {
  // Def. 3.2(d)(ii): rdn(r) must be contained in val(r).
  Schema s = PaperSchema();
  Entry e(D("uid=jag, dc=com"));
  e.AddClass("TOPSSubscriber");
  // No (uid, jag) pair in val(r):
  EXPECT_FALSE(s.ValidateEntry(e).ok());
  e.AddString("uid", "jag");
  EXPECT_TRUE(s.ValidateEntry(e).ok());
}

TEST(SchemaValidateTest, RdnSubsetWithTypedRdnValue) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("priority", TypeKind::kInt).ok());
  ASSERT_TRUE(s.AddClass("QHP", {"priority"}).ok());
  Entry e(D("priority=3, priority=1"));  // int-typed rdn attribute
  e.AddClass("QHP");
  EXPECT_FALSE(s.ValidateEntry(e).ok());
  e.AddInt("priority", 3);
  EXPECT_TRUE(s.ValidateEntry(e).ok()) << s.ValidateEntry(e).ToString();
}

}  // namespace
}  // namespace ndq
