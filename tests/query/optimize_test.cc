#include "query/optimize.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/cost.h"
#include "exec/evaluator.h"
#include "exec/parallel_evaluator.h"
#include "gen/dif_gen.h"
#include "index/attr_index.h"
#include "query/fingerprint.h"
#include "query/parser.h"
#include "query/rewrite.h"
#include "store/stats.h"

namespace ndq {
namespace {

struct OptimizeFixture {
  SimDisk disk{1024};
  DirectoryInstance inst;
  EntryStore store;

  OptimizeFixture() : inst(Schema(), false) {
    gen::DifOptions opt;
    opt.num_orgs = 4;
    inst = gen::GenerateDif(opt);
    store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  }

  QueryPtr Parse(const std::string& text) {
    return ParseQuery(text).TakeValue();
  }

  std::vector<Entry> Eval(const QueryPtr& q) {
    SimDisk scratch(1024);
    Evaluator evaluator(&scratch, &store);
    return evaluator.EvaluateToEntries(*q).TakeValue();
  }

  /// The legality oracle: the optimized plan must produce byte-identical
  /// results to the original, and never a worse estimate.
  OptimizedPlan CheckOptimize(const std::string& text) {
    QueryPtr q = RewriteQuery(Parse(text));
    OptimizedPlan opt = OptimizeQuery(store, q);
    EXPECT_EQ(Eval(q), Eval(opt.plan)) << text;
    EXPECT_LE(opt.est_pages_after, opt.est_pages_before + 1e-9) << text;
    return opt;
  }
};

// ---------------------------------------------------------------------------
// Store statistics
// ---------------------------------------------------------------------------

TEST(StoreStatsTest, CountsStayExactUnderAddAndRemove) {
  gen::DifOptions opt;
  opt.num_orgs = 2;
  DirectoryInstance inst = gen::GenerateDif(opt);

  StoreStats stats;
  for (const auto& kv : inst) stats.AddEntry(kv.second);
  ASSERT_EQ(stats.num_entries(), inst.size());
  ASSERT_TRUE(stats.complete());

  const SubtreeStats* root = stats.Subtree("");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->subtree_size, inst.size());

  // Remove every entry again: all counters must return to zero.
  for (const auto& kv : inst) stats.RemoveEntry(kv.second);
  EXPECT_EQ(stats.num_entries(), 0u);
  root = stats.Subtree("");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->subtree_size, 0u);
}

TEST(StoreStatsTest, FilterEstimatesAreUpperBounds) {
  gen::DifOptions opt;
  opt.num_orgs = 3;
  DirectoryInstance inst = gen::GenerateDif(opt);
  StoreStats stats;
  for (const auto& kv : inst) stats.AddEntry(kv.second);

  for (const AtomicFilter& filter :
       {AtomicFilter::Equals("objectClass", Value::String("QHP")),
        AtomicFilter::Presence("sourcePort"),
        AtomicFilter::Equals("nosuchattr", Value::String("zzz")),
        AtomicFilter::True()}) {
    size_t actual = 0;
    for (const auto& kv : inst) {
      if (filter.Matches(kv.second)) ++actual;
    }
    EXPECT_GE(stats.EstimateFilterMatches(filter), actual)
        << filter.ToString();
  }
  // Absent attribute: the estimate must PROVE emptiness.
  EXPECT_EQ(stats.EstimateFilterMatches(
                AtomicFilter::Equals("nosuchattr", Value::String("zzz"))),
            0u);
}

TEST(StoreStatsTest, BulkLoadedStoreExposesStats) {
  OptimizeFixture f;
  const StoreStats* stats = f.store.stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->num_entries(), f.inst.size());
  // The sketch proves empty subtrees empty through the cost model.
  QueryPtr missing =
      f.Parse("(dc=nowhere, dc=com ? sub ? objectClass=*)");
  EXPECT_EQ(EstimateCost(f.store, *missing).output_records, 0.0);
}

// ---------------------------------------------------------------------------
// Rewrite legality matrix: every short-circuit preserves M(Q)
// ---------------------------------------------------------------------------

TEST(OptimizeTest, ShortCircuitLegalityMatrix) {
  OptimizeFixture f;
  const std::string kEmpty = "(dc=com ? sub ? nosuchattr=zzz)";
  const std::string kLive = "(dc=com ? sub ? objectClass=QHP)";
  struct Case {
    std::string text;
    bool expect_short_circuit;
    bool expect_cheaper;  // strictly fewer estimated pages
  };
  const Case cases[] = {
      // Same-base conjunctions merge into one LDAP leaf during rewrite;
      // the proof then flows through EstimateLdapMatches.
      {"(& " + kLive + " " + kEmpty + ")", true, true},
      {"(& " + kEmpty + " " + kLive + ")", true, true},
      // Different-base conjunction survives as a kAnd node.
      {"(& (dc=org0, dc=com ? sub ? objectClass=QHP) " + kEmpty + ")",
       true, true},
      // A provably-empty | disjunct is pruned, but the survivor still
      // scans the same range: no page win, just less filter work.
      {"(| " + kLive + " " + kEmpty + ")", true, false},
      {"(| " + kEmpty + " " + kEmpty + ")", true, true},
      {"(- " + kLive + " " + kEmpty + ")", true, true},
      {"(- " + kEmpty + " " + kLive + ")", true, true},
      // Hierarchy with empty q1: output subset of M(Q1) = {}.
      {"(c " + kEmpty + " " + kLive + ")", true, true},
      // Hierarchy with empty q2, no aggregate: pure existential.
      {"(c " + kLive + " " + kEmpty + ")", true, true},
      // Simple aggregate over an empty operand.
      {"(g " + kEmpty + " count(objectClass)>=1)", true, true},
      // Nothing provably empty: no short-circuit may fire.
      {"(& " + kLive + " (dc=com ? sub ? objectClass=TOPSSubscriber))",
       false, false},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.text);
    OptimizedPlan opt = f.CheckOptimize(c.text);
    if (c.expect_short_circuit) {
      EXPECT_GT(opt.stats.short_circuits, 0u);
    } else {
      EXPECT_EQ(opt.stats.short_circuits, 0u);
    }
    if (c.expect_cheaper) {
      EXPECT_LT(opt.est_pages_after, opt.est_pages_before);
    }
  }
}

TEST(OptimizeTest, AggregateGatesHierarchyEmptyWitnessRule) {
  OptimizeFixture f;
  // count($2)>=0 can match entries with ZERO witnesses in M(Q2), so an
  // empty q2 must NOT short-circuit the node — only equivalence is
  // required.
  OptimizedPlan opt = f.CheckOptimize(
      "(c (dc=com ? sub ? objectClass=QHP)"
      "   (dc=com ? sub ? nosuchattr=zzz) count($2)>=0)");
  // The rule for empty q2 is gated; a leaf-level narrowing of the empty
  // scan is still fine, so just require the result equivalence that
  // CheckOptimize already asserted plus a no-worse estimate.
  EXPECT_LE(opt.est_pages_after, opt.est_pages_before);
}

// ---------------------------------------------------------------------------
// Operand reordering
// ---------------------------------------------------------------------------

TEST(OptimizeTest, ReorderIsDeterministicAcrossPermutations) {
  OptimizeFixture f;
  const std::string a = "(dc=com ? sub ? objectClass=QHP)";
  const std::string b = "(dc=com ? sub ? objectClass=trafficProfile)";
  const std::string c = "(dc=com ? sub ? sourcePort=25)";
  const std::string perms[] = {
      "(& " + a + " (& " + b + " " + c + "))",
      "(& (& " + b + " " + a + ") " + c + ")",
      "(& " + c + " (& " + a + " " + b + "))",
  };
  std::string canonical_fp;
  for (const std::string& text : perms) {
    SCOPED_TRACE(text);
    OptimizedPlan opt = f.CheckOptimize(text);
    std::string fp = QueryFingerprint(*opt.plan);
    if (canonical_fp.empty()) {
      canonical_fp = fp;
    } else {
      // Every permutation lands on ONE canonical shape — the property
      // batch sub-plan sharing relies on.
      EXPECT_EQ(fp, canonical_fp);
    }
  }
}

TEST(OptimizeTest, ReorderPutsSelectiveOperandFirst) {
  OptimizeFixture f;
  // Expensive whole-forest scan first, selective narrow scan second
  // (different bases, so the rewrite cannot merge the leaves): the
  // optimizer must flip them.
  OptimizedPlan opt = f.CheckOptimize(
      "(& (dc=com ? sub ? objectClass=*)"
      "   (dc=org0, dc=com ? sub ? objectClass=QHP))");
  ASSERT_EQ(opt.plan->op(), QueryOp::kAnd);
  EXPECT_GT(opt.stats.reordered_operands, 0u);
  EXPECT_LE(EstimateCost(f.store, *opt.plan->q1()).output_records,
            EstimateCost(f.store, *opt.plan->q2()).output_records);
}

// ---------------------------------------------------------------------------
// Filter pushdown
// ---------------------------------------------------------------------------

TEST(OptimizeTest, PushesFilterBelowHierarchyWhenCheaper) {
  OptimizeFixture f;
  // (& F (c Q1 Q2)) with a selective F and a whole-forest Q1: filtering
  // M(Q1) before the hierarchy operator shrinks its input massively.
  OptimizedPlan opt = f.CheckOptimize(
      "(& (dc=com ? sub ? objectClass=QHP)"
      "   (c (dc=com ? sub ? objectClass=*)"
      "      (dc=com ? sub ? objectClass=TOPSSubscriber)))");
  EXPECT_GT(opt.stats.pushed_filters, 0u);
  EXPECT_LT(opt.est_pages_after, opt.est_pages_before);
  // The pushed plan's root is the hierarchy node, not the And.
  EXPECT_EQ(opt.plan->op(), QueryOp::kChildren);
}

TEST(OptimizeTest, SetAggregateBlocksPushdown) {
  OptimizeFixture f;
  // count($1) reads |M(Q1)|; pushing a filter into Q1 would change it.
  OptimizedPlan opt = f.CheckOptimize(
      "(& (dc=com ? sub ? objectClass=QHP)"
      "   (c (dc=com ? sub ? objectClass=*)"
      "      (dc=com ? sub ? objectClass=TOPSSubscriber) count($1)>=1))");
  EXPECT_EQ(opt.stats.pushed_filters, 0u);
}

// ---------------------------------------------------------------------------
// Estimator satellites: kOne and kSimpleAgg est-vs-actual
// ---------------------------------------------------------------------------

TEST(OptimizeTest, OneLevelScopeEstimatesFromDirectChildren) {
  OptimizeFixture f;
  QueryPtr one = f.Parse("(dc=org0, dc=com ? one ? objectClass=*)");
  QueryPtr sub = f.Parse("(dc=org0, dc=com ? sub ? objectClass=*)");
  CostEstimate est_one = EstimateCost(f.store, *one);
  CostEstimate est_sub = EstimateCost(f.store, *sub);
  // kOne must no longer be estimated like kSub: the subtree holds far
  // more than self + direct children.
  EXPECT_LT(est_one.output_records, est_sub.output_records);
  // And it stays an upper bound on the actual result.
  size_t actual = f.Eval(one).size();
  EXPECT_GE(est_one.output_records + 0.5, static_cast<double>(actual));
  // With the sketch the bound is exact for unfiltered one-level scans.
  const SubtreeStats* node =
      f.store.stats()->Subtree(Dn::Parse("dc=org0, dc=com")
                                   .TakeValue()
                                   .HierKey());
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(est_one.output_records),
            node->self + node->direct_children);
}

TEST(OptimizeTest, SimpleAggEstimateWithinBandOfMeasurement) {
  OptimizeFixture f;
  QueryPtr q = f.Parse(
      "(g (dc=com ? sub ? objectClass=SLAPolicyRules)"
      "   count(SLAPVPRef)>=1)");
  CostEstimate est = EstimateCost(f.store, *q);
  SimDisk scratch(1024);
  Evaluator evaluator(&scratch, &f.store);
  f.disk.ResetStats();
  ASSERT_TRUE(evaluator.EvaluateToEntries(*q).ok());
  double measured = static_cast<double>(f.disk.stats().TotalTransfers() +
                                        scratch.stats().TotalTransfers());
  EXPECT_LE(measured, 20.0 * est.TotalPages());
  EXPECT_LE(est.TotalPages(), 20.0 * measured);
}

// ---------------------------------------------------------------------------
// Index selection
// ---------------------------------------------------------------------------

TEST(OptimizeTest, ChoosesIndexProbeOnlyForSelectiveFilters) {
  OptimizeFixture f;
  // Selective: a rare equality the histogram bounds tightly.
  AccessPathChoice probe = ChooseAccessPath(
      f.store, *f.Parse("(dc=com ? sub ? nosuchattr=zzz)"));
  EXPECT_EQ(probe.path, AccessPath::kIndexProbe);
  EXPECT_EQ(probe.est_matches, 0u);
  // Unselective: a presence filter nearly every entry satisfies.
  AccessPathChoice scan = ChooseAccessPath(
      f.store, *f.Parse("(dc=com ? sub ? objectClass=*)"));
  EXPECT_EQ(scan.path, AccessPath::kRangeScan);
  EXPECT_GT(scan.est_matches, 0u);
}

TEST(OptimizeTest, IndexProbeMatchesScanByteForByte) {
  OptimizeFixture f;
  BufferPool pool(&f.disk, 256);
  IndexSpec spec;
  spec.string_attrs = {"objectClass"};
  AttributeIndexes indexes =
      AttributeIndexes::Build(&pool, f.store, spec).TakeValue();

  QueryPtr q = f.Parse("(dc=com ? sub ? objectClass=QHP)");
  SimDisk scratch(1024);

  ExecOptions opts;
  ParallelEvaluator plain(&scratch, &f.store, opts);
  std::vector<Entry> scanned = plain.EvaluateToEntries(*q).TakeValue();

  ParallelEvaluator probed(&scratch, &f.store, opts);
  IndexHook hook;
  hook.indexes = &indexes;
  hook.store = &f.store;
  hook.use_probe = [](const Query&) { return true; };
  probed.SetIndexHook(hook);
  OpTrace trace;
  std::vector<Entry> via_index =
      probed.EvaluateToEntries(*q, &trace).TakeValue();

  EXPECT_EQ(scanned, via_index);
  EXPECT_EQ(trace.index_probes, 1u);
}

// ---------------------------------------------------------------------------
// OptimizeStats rendering
// ---------------------------------------------------------------------------

TEST(OptimizeTest, StatsToString) {
  OptimizeStats none;
  EXPECT_EQ(none.ToString(), "none");
  OptimizeStats some;
  some.short_circuits = 1;
  some.pushed_filters = 2;
  EXPECT_EQ(some.ToString(), "short_circuit=1 pushdown=2");
  EXPECT_EQ(some.Total(), 3u);
}

TEST(OptimizeTest, NeverReturnsAMoreExpensivePlan) {
  OptimizeFixture f;
  // Sweep a mixed bag of plans; the guard must hold for every one.
  for (const char* text : {
           "(dc=com ? sub ? objectClass=QHP)",
           "(& (dc=com ? sub ? objectClass=*)"
           "   (| (dc=com ? sub ? sourcePort=25)"
           "      (dc=com ? sub ? nosuchattr=zzz)))",
           "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
           "    (dc=com ? sub ? objectClass=trafficProfile) SLATPRef)",
           "(g (dc=com ? sub ? nosuchattr=zzz) count(objectClass)>=1)",
       }) {
    SCOPED_TRACE(text);
    f.CheckOptimize(text);
  }
}

}  // namespace
}  // namespace ndq
