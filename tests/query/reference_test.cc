// Executes the paper's running example queries (Sections 4-7) against the
// directory fragments of Figures 1, 11 and 12 and checks the results the
// prose promises.

#include "query/reference.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::D;
using testing::PaperInstance;

class ReferenceEvalTest : public ::testing::Test {
 protected:
  ReferenceEvalTest() : inst_(PaperInstance()) {}

  std::vector<std::string> Eval(const std::string& query_text) {
    Result<QueryPtr> q = ParseQuery(query_text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    Result<std::vector<const Entry*>> r = EvaluateReference(**q, inst_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::vector<std::string> dns;
    for (const Entry* e : *r) dns.push_back(e->dn().ToString());
    return dns;
  }

  DirectoryInstance inst_;
};

TEST_F(ReferenceEvalTest, AtomicSubScope) {
  std::vector<std::string> r =
      Eval("(dc=att, dc=com ? sub ? surName=jagadish)");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "uid=jag, ou=userProfiles, dc=research, dc=att, dc=com");
}

TEST_F(ReferenceEvalTest, AtomicBaseAndOneScope) {
  EXPECT_EQ(Eval("(dc=att, dc=com ? base ? objectClass=*)").size(), 1u);
  // one includes the base + children.
  EXPECT_EQ(Eval("(dc=att, dc=com ? one ? objectClass=*)").size(), 2u);
  // A base that names no entry selects nothing.
  EXPECT_TRUE(Eval("(dc=void, dc=com ? base ? objectClass=*)").empty());
}

TEST_F(ReferenceEvalTest, ResultsAreInReverseDnOrder) {
  std::vector<std::string> r = Eval("(dc=com ? sub ? objectClass=*)");
  EXPECT_EQ(r.size(), inst_.size());
  // Spot-check: dc=com first (root), descendants grouped after.
  EXPECT_EQ(r[0], "dc=com");
}

TEST_F(ReferenceEvalTest, Example41_DifferenceOfBases) {
  // "jagadish in AT&T except Research" — empty on this data, since the
  // only jagadish is in Research.
  EXPECT_TRUE(
      Eval("(- (dc=att, dc=com ? sub ? surName=jagadish)\n"
           "   (dc=research, dc=att, dc=com ? sub ? surName=jagadish))")
          .empty());
  // Sanity: without the subtraction it is non-empty.
  EXPECT_EQ(Eval("(dc=att, dc=com ? sub ? surName=jagadish)").size(), 1u);
}

TEST_F(ReferenceEvalTest, BooleanOperators) {
  // and distributes over different scopes/bases.
  std::vector<std::string> r =
      Eval("(& (dc=research, dc=att, dc=com ? sub ? objectClass=dcObject)\n"
           "   (dc=com ? sub ? dc=corona))");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "dc=corona, dc=research, dc=att, dc=com");

  EXPECT_EQ(Eval("(| (dc=com ? base ? objectClass=*)\n"
                 "   (dc=att, dc=com ? base ? objectClass=*))")
                .size(),
            2u);
}

TEST_F(ReferenceEvalTest, Example51_Children) {
  std::vector<std::string> r =
      Eval("(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)\n"
           "   (dc=att, dc=com ? sub ? surName=jagadish))");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "ou=userProfiles, dc=research, dc=att, dc=com");
}

TEST_F(ReferenceEvalTest, Parents) {
  // QHP entries whose parent is a TOPSSubscriber: both of jag's QHPs.
  std::vector<std::string> r =
      Eval("(p (dc=com ? sub ? objectClass=QHP)\n"
           "   (dc=com ? sub ? objectClass=TOPSSubscriber))");
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(ReferenceEvalTest, Example52_Ancestors) {
  std::vector<std::string> r =
      Eval("(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)\n"
           "   (dc=att, dc=com ? sub ? ou=networkPolicies))");
  EXPECT_EQ(r.size(), 2u);  // lsplitOff and csplitOff
}

TEST_F(ReferenceEvalTest, Descendants) {
  // dcObjects having a QHP descendant: com, att, research.
  std::vector<std::string> r =
      Eval("(d (dc=com ? sub ? objectClass=dcObject)\n"
           "   (dc=com ? sub ? objectClass=QHP))");
  EXPECT_EQ(r.size(), 3u);
}

TEST_F(ReferenceEvalTest, Example53_CoDescendants) {
  // Which subnets have traffic profiles for SMTP (port 25), with no deeper
  // dcObject in between? Only dc=research.
  std::vector<std::string> r =
      Eval("(dc (dc=att, dc=com ? sub ? objectClass=dcObject)\n"
           "    (& (dc=att, dc=com ? sub ? sourcePort=25)\n"
           "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))\n"
           "    (dc=att, dc=com ? sub ? objectClass=dcObject))");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "dc=research, dc=att, dc=com");
}

TEST_F(ReferenceEvalTest, CoAncestors) {
  // Closest dcObject ancestor of jag's entry: dc=research only.
  std::vector<std::string> r =
      Eval("(ac (dc=com ? sub ? uid=jag)\n"
           "    (dc=com ? sub ? objectClass=dcObject)\n"
           "    (dc=com ? sub ? objectClass=dcObject))");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "uid=jag, ou=userProfiles, dc=research, dc=att, dc=com");
  // ...and the witness logic: without the blocking operand, any dcObject
  // ancestor suffices (same result set here, different witnesses).
  std::vector<std::string> r2 =
      Eval("(a (dc=com ? sub ? uid=jag)\n"
           "   (dc=com ? sub ? objectClass=dcObject))");
  EXPECT_EQ(r2, r);
}

TEST_F(ReferenceEvalTest, Example61_SimpleAggregate) {
  std::vector<std::string> r = Eval(
      "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)\n"
      "   count(SLAPVPRef) > 1)");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0],
            "SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, "
            "dc=research, dc=att, dc=com");
}

TEST_F(ReferenceEvalTest, Example62_StructuralAggregate) {
  // Subscribers with more than 1 QHP (the paper uses 10; our fixture's jag
  // has 2).
  std::vector<std::string> r =
      Eval("(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)\n"
           "   (dc=att, dc=com ? sub ? objectClass=QHP)\n"
           "   count($2) > 1)");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "uid=jag, ou=userProfiles, dc=research, dc=att, dc=com");
  // With a higher threshold, nothing qualifies.
  EXPECT_TRUE(Eval("(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)\n"
                   "   (dc=att, dc=com ? sub ? objectClass=QHP)\n"
                   "   count($2) > 10)")
                  .empty());
}

TEST_F(ReferenceEvalTest, StructuralAggregateOverWitnessValues) {
  // QHPs whose call appearances all time out within 25s: min($2.timeOut)
  // over children callAppearances.
  std::vector<std::string> r =
      Eval("(c (dc=com ? sub ? objectClass=QHP)\n"
           "   (dc=com ? sub ? objectClass=callAppearance)\n"
           "   max($2.timeOut) <= 30)");
  ASSERT_EQ(r.size(), 1u);  // only workinghours has CA children (30, 20)
  EXPECT_EQ(r[0],
            "QHPName=workinghours, uid=jag, ou=userProfiles, dc=research, "
            "dc=att, dc=com");
  // Empty witness sets leave max undefined -> comparison false.
  EXPECT_TRUE(Eval("(c (dc=com ? sub ? QHPName=weekend)\n"
                   "   (dc=com ? sub ? objectClass=callAppearance)\n"
                   "   max($2.timeOut) <= 1000)")
                  .empty());
}

TEST_F(ReferenceEvalTest, EntrySetAggregate_MaxCount) {
  // Fig. 6 instantiation: entries of L1 with the MOST descendants in L2.
  // dcObjects by number of descendant organizationalUnits: research has 6.
  std::vector<std::string> r =
      Eval("(d (dc=com ? sub ? objectClass=dcObject)\n"
           "   (dc=com ? sub ? objectClass=organizationalUnit)\n"
           "   count($2)=max(count($2)))");
  // com, att, research all dominate the same 6 ou's; corona has 0.
  EXPECT_EQ(r.size(), 3u);
}

TEST_F(ReferenceEvalTest, Section7_ValueDn) {
  std::vector<std::string> r = Eval(
      "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)\n"
      "    (& (dc=att, dc=com ? sub ? sourcePort=25)\n"
      "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))\n"
      "    SLATPRef)");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0],
            "SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, "
            "dc=research, dc=att, dc=com");
}

TEST_F(ReferenceEvalTest, Section7_FullHighestPriorityAction) {
  // The flagship L3 query: the action of the highest-priority policy
  // governing SMTP traffic.
  std::vector<std::string> r = Eval(
      "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)\n"
      "    (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)\n"
      "           (& (dc=att, dc=com ? sub ? sourcePort=25)\n"
      "              (dc=att, dc=com ? sub ? objectClass=trafficProfile))\n"
      "           SLATPRef)\n"
      "       min(SLARulePriority)=min(min(SLARulePriority)))\n"
      "    SLADSActRef)");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0],
            "DSActionName=denyAll, ou=SLADSAction, ou=networkPolicies, "
            "dc=research, dc=att, dc=com");
}

TEST_F(ReferenceEvalTest, DnValueWithAggregate) {
  // Traffic profiles referenced by at least 1 policy.
  std::vector<std::string> r =
      Eval("(dv (dc=com ? sub ? objectClass=trafficProfile)\n"
           "    (dc=com ? sub ? objectClass=SLAPolicyRules)\n"
           "    SLATPRef count($2) >= 1)");
  EXPECT_EQ(r.size(), 2u);  // both profiles referenced by dso
}

TEST_F(ReferenceEvalTest, LdapBaseline) {
  std::vector<std::string> r = Eval(
      "(ldap dc=com ? sub ? (&(objectClass=QHP)(!(priority>1))))");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0],
            "QHPName=weekend, uid=jag, ou=userProfiles, dc=research, "
            "dc=att, dc=com");
}

TEST_F(ReferenceEvalTest, SimpleAggRejectsWitnessReferences) {
  Result<QueryPtr> q =
      ParseQuery("(g (dc=com ? sub ? objectClass=*) count($2) > 1)");
  ASSERT_TRUE(q.ok());
  Result<std::vector<const Entry*>> r = EvaluateReference(**q, inst_);
  EXPECT_FALSE(r.ok());
}

TEST_F(ReferenceEvalTest, ClosurePropertyQueriesCompose) {
  // The result of a query is a sub-instance, so operators compose: find
  // organizational units that (1) are under research and (2) have a QHP
  // descendant, then take their children of class QHP... arbitrarily deep.
  std::vector<std::string> r =
      Eval("(c (d (dc=research, dc=att, dc=com ? sub ? "
           "objectClass=organizationalUnit)\n"
           "      (dc=com ? sub ? objectClass=QHP))\n"
           "   (dc=com ? sub ? objectClass=TOPSSubscriber))");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "ou=userProfiles, dc=research, dc=att, dc=com");
}

}  // namespace
}  // namespace ndq
