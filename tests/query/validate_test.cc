#include "query/validate.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

using testing::PaperSchema;

std::vector<QueryIssue> Check(const std::string& text) {
  Schema s = PaperSchema();
  QueryPtr q = ParseQuery(text).TakeValue();
  return ValidateQuery(s, *q);
}

size_t Errors(const std::vector<QueryIssue>& issues) {
  size_t n = 0;
  for (const QueryIssue& i : issues) {
    if (i.severity == QueryIssue::Severity::kError) ++n;
  }
  return n;
}

TEST(ValidateTest, CleanQueriesPass) {
  for (const char* text : {
           "(dc=att, dc=com ? sub ? surName=jagadish)",
           "(dc=com ? sub ? priority<=2)",
           "(g (dc=com ? sub ? objectClass=SLAPolicyRules) "
           "count(SLAPVPRef)>1)",
           "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
           " (dc=com ? sub ? objectClass=trafficProfile) SLATPRef)",
           "(c (dc=com ? sub ? objectClass=TOPSSubscriber)"
           " (dc=com ? sub ? objectClass=QHP) min($2.priority)=1)",
           "(ldap dc=com ? sub ? (&(objectClass=QHP)(priority<=2)))",
       }) {
    SCOPED_TRACE(text);
    std::vector<QueryIssue> issues = Check(text);
    EXPECT_TRUE(issues.empty()) << issues.size() << " issue(s), first: "
                                << (issues.empty() ? ""
                                                   : issues[0].message);
  }
}

TEST(ValidateTest, IntComparisonOnStringAttributeIsError) {
  std::vector<QueryIssue> issues = Check("(dc=com ? sub ? surName<5)");
  ASSERT_EQ(Errors(issues), 1u);
  EXPECT_NE(issues[0].message.find("surName"), std::string::npos);
}

TEST(ValidateTest, SubstringOnIntAttributeIsError) {
  EXPECT_EQ(Errors(Check("(dc=com ? sub ? priority=*1*)")), 1u);
  // ...but substring on strings is fine.
  EXPECT_EQ(Errors(Check("(dc=com ? sub ? commonName=*jag*)")), 0u);
}

TEST(ValidateTest, UnknownAttributeIsWarning) {
  std::vector<QueryIssue> issues = Check("(dc=com ? sub ? wtfAttr=x)");
  EXPECT_EQ(Errors(issues), 0u);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].severity, QueryIssue::Severity::kWarning);
}

TEST(ValidateTest, UnknownObjectClassIsError) {
  EXPECT_EQ(Errors(Check("(dc=com ? sub ? objectClass=Martian)")), 1u);
  EXPECT_EQ(Errors(Check("(dc=com ? sub ? objectClass=QHP)")), 0u);
}

TEST(ValidateTest, EmbeddedRefNeedsDnTypedAttribute) {
  EXPECT_EQ(Errors(Check(
                "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
                " (dc=com ? sub ? objectClass=trafficProfile) surName)")),
            1u);
  EXPECT_EQ(Errors(Check(
                "(dv (dc=com ? sub ? objectClass=SLADSAction)"
                " (dc=com ? sub ? objectClass=SLAPolicyRules) "
                "SLADSActRef)")),
            0u);
}

TEST(ValidateTest, AggregatingNonIntAttributeIsError) {
  EXPECT_EQ(Errors(Check("(g (dc=com ? sub ? objectClass=QHP) "
                         "min(QHPName)>1)")),
            1u);
  // count over anything is fine.
  EXPECT_EQ(Errors(Check("(g (dc=com ? sub ? objectClass=QHP) "
                         "count(QHPName)>1)")),
            0u);
  // Witness-side aggregates are checked too.
  EXPECT_EQ(Errors(Check("(c (dc=com ? sub ? objectClass=TOPSSubscriber)"
                         " (dc=com ? sub ? objectClass=QHP) "
                         "sum($2.QHPName)>1)")),
            1u);
}

TEST(ValidateTest, LdapFilterTreeIsWalked) {
  std::vector<QueryIssue> issues =
      Check("(ldap dc=com ? sub ? (&(objectClass=QHP)(!(surName<3))))");
  EXPECT_EQ(Errors(issues), 1u);
}

TEST(ValidateTest, QueryIsValidConvenience) {
  Schema s = PaperSchema();
  QueryPtr good = ParseQuery("(dc=com ? sub ? priority<=2)").TakeValue();
  QueryPtr bad = ParseQuery("(dc=com ? sub ? surName<5)").TakeValue();
  EXPECT_TRUE(QueryIsValid(s, *good));
  EXPECT_FALSE(QueryIsValid(s, *bad));
}

}  // namespace
}  // namespace ndq
