// Robustness: the parsers must never crash and must fail gracefully (a
// Status, not UB) on arbitrary byte soup, truncations and mutations of
// valid inputs.

#include <random>

#include <gtest/gtest.h>

#include "core/dn.h"
#include "filter/ldap_filter.h"
#include "query/aggregate.h"
#include "query/parser.h"

namespace ndq {
namespace {

const char* kSeeds[] = {
    "(dc=att, dc=com ? sub ? surName=jagadish)",
    "(- (a=1 ? sub ? x=*) (b=2 ? base ? y=1))",
    "(c (dc=com ? sub ? objectClass=organizationalUnit) "
    "(dc=com ? sub ? surName=jagadish))",
    "(dc (a=1 ? sub ? x=*) (& (a=1 ? sub ? y=2) (a=1 ? one ? z=*)) "
    "(a=1 ? sub ? w=*))",
    "(g (a=1 ? sub ? x=*) count(SLAPVPRef) > 1)",
    "(vd (a=1 ? sub ? x=*) (a=1 ? sub ? y=*) ref "
    "min(p)=min(min(p)))",
    "(ldap dc=com ? sub ? (&(a=1)(|(b=2)(!(c=3)))))",
};

// Every outcome is acceptable except crashing; parse results, when OK,
// must round-trip through their printers.
void Probe(const std::string& text) {
  Result<QueryPtr> q = ParseQuery(text);
  if (q.ok()) {
    Result<QueryPtr> again = ParseQuery((*q)->ToString());
    ASSERT_TRUE(again.ok()) << text;
    EXPECT_EQ((*again)->ToString(), (*q)->ToString());
  }
  (void)Dn::Parse(text);
  (void)AtomicFilter::Parse(text);
  (void)LdapFilter::Parse(text);
  (void)ParseAggSelFilter(text);
}

TEST(ParserFuzzTest, Truncations) {
  for (const char* seed : kSeeds) {
    std::string s(seed);
    for (size_t len = 0; len <= s.size(); ++len) {
      Probe(s.substr(0, len));
    }
  }
}

TEST(ParserFuzzTest, SingleByteMutations) {
  std::mt19937 rng(99);
  const char alphabet[] = "()?*&|-!$=,.<>0azZ \t\x01\x7f";
  for (const char* seed : kSeeds) {
    std::string s(seed);
    for (int trial = 0; trial < 200; ++trial) {
      std::string mutated = s;
      mutated[rng() % mutated.size()] =
          alphabet[rng() % (sizeof(alphabet) - 1)];
      Probe(mutated);
    }
  }
}

TEST(ParserFuzzTest, RandomByteSoup) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    size_t len = rng() % 80;
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng() % 96 + 32));
    }
    Probe(s);
  }
}

TEST(ParserFuzzTest, DeepNestingDoesNotOverflow) {
  // 2000 levels of (& ... nesting: must fail or succeed, not crash.
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "(& (a=1 ? sub ? x=*) ";
  deep += "(a=1 ? sub ? x=*)";
  for (int i = 0; i < 2000; ++i) deep += ")";
  Result<QueryPtr> q = ParseQuery(deep);
  if (q.ok()) {
    EXPECT_EQ((*q)->NodeCount(), 4001u);
  }
}

TEST(ParserFuzzTest, HugeTokens) {
  std::string huge_attr(10000, 'a');
  Probe("(" + huge_attr + "=1 ? sub ? x=*)");
  Probe("(a=1 ? sub ? " + huge_attr + "=*)");
  Probe("(g (a=1 ? sub ? x=*) count(" + huge_attr + ")>1)");
}

}  // namespace
}  // namespace ndq
