#include "query/parser.h"

#include <gtest/gtest.h>

namespace ndq {
namespace {

QueryPtr P(const std::string& text) {
  Result<QueryPtr> r = ParseQuery(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? r.TakeValue() : nullptr;
}

TEST(QueryParserTest, AtomicQuery) {
  QueryPtr q = P("(dc=att, dc=com ? sub ? surName=jagadish)");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), QueryOp::kAtomic);
  EXPECT_EQ(q->base().ToString(), "dc=att, dc=com");
  EXPECT_EQ(q->scope(), Scope::kSub);
  EXPECT_EQ(q->filter().ToString(), "surName=jagadish");
  EXPECT_EQ(q->MinimalLanguage(), Language::kLdap);
}

TEST(QueryParserTest, AtomicScopes) {
  EXPECT_EQ(P("(dc=com ? base ? objectClass=*)")->scope(), Scope::kBase);
  EXPECT_EQ(P("(dc=com ? one ? objectClass=*)")->scope(), Scope::kOne);
  EXPECT_EQ(P("(dc=com ? sub ? objectClass=*)")->scope(), Scope::kSub);
}

TEST(QueryParserTest, NullDnBase) {
  QueryPtr q1 = P("(null-dn ? sub ? objectClass=*)");
  ASSERT_NE(q1, nullptr);
  EXPECT_TRUE(q1->base().IsNull());
  QueryPtr q2 = P("( ? sub ? objectClass=*)");
  ASSERT_NE(q2, nullptr);
  EXPECT_TRUE(q2->base().IsNull());
}

TEST(QueryParserTest, PaperExample41Difference) {
  // Example 4.1 verbatim.
  QueryPtr q = P(
      "(- (dc=att, dc=com ? sub ? surName=jagadish)\n"
      "   (dc=research, dc=att, dc=com ? sub ? surName=jagadish))");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), QueryOp::kDiff);
  EXPECT_EQ(q->MinimalLanguage(), Language::kL0);
  EXPECT_EQ(q->NodeCount(), 3u);
  EXPECT_EQ(q->Leaves().size(), 2u);
}

TEST(QueryParserTest, PaperExample51Children) {
  QueryPtr q = P(
      "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)\n"
      "   (dc=att, dc=com ? sub ? surName=jagadish))");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), QueryOp::kChildren);
  EXPECT_FALSE(q->agg().has_value());
  EXPECT_EQ(q->MinimalLanguage(), Language::kL1);
}

TEST(QueryParserTest, PaperExample53CoDescendants) {
  // Example 5.3 with nested boolean operand.
  QueryPtr q = P(
      "(dc (dc=att, dc=com ? sub ? objectClass=dcObject)\n"
      "    (& (dc=att, dc=com ? sub ? sourcePort=25)\n"
      "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))\n"
      "    (dc=att, dc=com ? sub ? objectClass=dcObject))");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), QueryOp::kCoDescendants);
  ASSERT_NE(q->q3(), nullptr);
  EXPECT_EQ(q->q2()->op(), QueryOp::kAnd);
  EXPECT_EQ(q->MinimalLanguage(), Language::kL1);
  EXPECT_EQ(q->NodeCount(), 6u);
}

TEST(QueryParserTest, PaperExample61SimpleAgg) {
  QueryPtr q = P(
      "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)\n"
      "   count(SLAPVPRef) > 1)");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), QueryOp::kSimpleAgg);
  ASSERT_TRUE(q->agg().has_value());
  EXPECT_EQ(q->agg()->op, CompareOp::kGt);
  EXPECT_EQ(q->MinimalLanguage(), Language::kL2);
}

TEST(QueryParserTest, PaperExample62StructuralAgg) {
  QueryPtr q = P(
      "(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)\n"
      "   (dc=att, dc=com ? sub ? objectClass=QHP)\n"
      "   count($2) > 10)");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), QueryOp::kChildren);
  ASSERT_TRUE(q->agg().has_value());
  EXPECT_EQ(q->MinimalLanguage(), Language::kL2);
}

TEST(QueryParserTest, PaperSection7ValueDn) {
  QueryPtr q = P(
      "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)\n"
      "    (& (dc=att, dc=com ? sub ? sourcePort=25)\n"
      "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))\n"
      "    SLATPRef)");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), QueryOp::kValueDn);
  EXPECT_EQ(q->ref_attr(), "SLATPRef");
  EXPECT_FALSE(q->agg().has_value());
  EXPECT_EQ(q->MinimalLanguage(), Language::kL3);
}

TEST(QueryParserTest, PaperSection7FullDnValueQuery) {
  // The flagship L3 example: action of the highest-priority SMTP policy.
  QueryPtr q = P(
      "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)\n"
      "    (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)\n"
      "           (& (dc=att, dc=com ? sub ? sourcePort=25)\n"
      "              (dc=att, dc=com ? sub ? objectClass=trafficProfile))\n"
      "           SLATPRef)\n"
      "       min(SLARulePriority)=min(min(SLARulePriority)))\n"
      "    SLADSActRef)");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), QueryOp::kDnValue);
  EXPECT_EQ(q->ref_attr(), "SLADSActRef");
  EXPECT_EQ(q->q2()->op(), QueryOp::kSimpleAgg);
  EXPECT_EQ(q->q2()->q1()->op(), QueryOp::kValueDn);
  EXPECT_EQ(q->MinimalLanguage(), Language::kL3);
  EXPECT_EQ(q->NodeCount(), 8u);
}

TEST(QueryParserTest, LdapBaselineQuery) {
  QueryPtr q = P(
      "(ldap dc=att, dc=com ? sub ? (&(objectClass=QHP)(priority<=2)))");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), QueryOp::kLdap);
  EXPECT_EQ(q->MinimalLanguage(), Language::kLdap);
  EXPECT_NE(q->ldap_filter(), nullptr);
}

TEST(QueryParserTest, StructuralAggOnConstrainedOp) {
  QueryPtr q = P(
      "(ac (dc=com ? sub ? uid=*) (dc=com ? sub ? ou=*)\n"
      "    (dc=com ? sub ? dc=*) count($2)=max(count($2)))");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op(), QueryOp::kCoAncestors);
  ASSERT_TRUE(q->agg().has_value());
  EXPECT_EQ(q->MinimalLanguage(), Language::kL2);
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("dc=com ? sub ? x=*").ok());        // no parens
  EXPECT_FALSE(ParseQuery("(dc=com ? sub)").ok());            // one '?'
  EXPECT_FALSE(ParseQuery("(& (dc=com ? sub ? x=*))").ok());  // 1 operand
  EXPECT_FALSE(ParseQuery("(dc=com ? subb ? x=*)").ok());     // bad scope
  EXPECT_FALSE(
      ParseQuery("(p (dc=com ? sub ? x=*) (dc=com ? sub ? x=*)) junk").ok());
  EXPECT_FALSE(ParseQuery("(vd (dc=com ? sub ? x=*) (dc=com ? sub ? x=*))")
                   .ok());  // missing attr
}

TEST(QueryParserTest, ToStringRoundTrips) {
  for (const char* text : {
           "(dc=att, dc=com ? sub ? surName=jagadish)",
           "(- (dc=com ? sub ? a=*) (dc=com ? base ? b=*))",
           "(& (dc=com ? sub ? a=*) (| (dc=com ? one ? b=*) "
           "(dc=com ? sub ? c=1)))",
           "(p (dc=com ? sub ? a=*) (dc=com ? sub ? b=*))",
           "(ac (dc=com ? sub ? a=*) (dc=com ? sub ? b=*) "
           "(dc=com ? sub ? c=*))",
           "(g (dc=com ? sub ? a=*) count(x)>1)",
           "(d (dc=com ? sub ? a=*) (dc=com ? sub ? b=*) count($2)>=3)",
           "(vd (dc=com ? sub ? a=*) (dc=com ? sub ? b=*) ref)",
           "(dv (dc=com ? sub ? a=*) (dc=com ? sub ? b=*) ref "
           "count($2)=max(count($2)))",
           "(ldap dc=com ? sub ? (&(a=1)(!(b=2))))",
       }) {
    QueryPtr q = P(text);
    ASSERT_NE(q, nullptr) << text;
    QueryPtr again = P(q->ToString());
    ASSERT_NE(again, nullptr) << q->ToString();
    EXPECT_EQ(q->ToString(), again->ToString()) << text;
  }
}

}  // namespace
}  // namespace ndq
