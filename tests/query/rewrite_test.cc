#include "query/rewrite.h"

#include <random>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "gen/random_forest.h"
#include "gen/random_query.h"
#include "query/parser.h"
#include "query/reference.h"
#include "testing/paper_fixture.h"

namespace ndq {
namespace {

QueryPtr P(const std::string& text) {
  return ParseQuery(text).TakeValue();
}

// Both queries produce identical results on `inst` per the oracle.
void ExpectEquivalent(const DirectoryInstance& inst, const QueryPtr& a,
                      const QueryPtr& b) {
  Result<std::vector<const Entry*>> ra = EvaluateReference(*a, inst);
  Result<std::vector<const Entry*>> rb = EvaluateReference(*b, inst);
  ASSERT_EQ(ra.ok(), rb.ok()) << a->ToString() << " vs " << b->ToString();
  if (!ra.ok()) return;
  ASSERT_EQ(ra->size(), rb->size())
      << a->ToString() << "\n-> " << b->ToString();
  for (size_t i = 0; i < ra->size(); ++i) {
    EXPECT_EQ((*ra)[i], (*rb)[i]);
  }
}

TEST(RewriteTest, MergeSameScopeAnd) {
  RewriteStats stats;
  QueryPtr q = P(
      "(& (dc=com ? sub ? objectClass=QHP) (dc=com ? sub ? priority<=1))");
  QueryPtr r = RewriteQuery(q, &stats);
  EXPECT_EQ(stats.merged_boolean_scans, 1u);
  EXPECT_EQ(r->op(), QueryOp::kLdap);
  ExpectEquivalent(testing::PaperInstance(), q, r);
}

TEST(RewriteTest, MergeSameScopeOrAndNested) {
  RewriteStats stats;
  // Both inner pairs share base+scope; after merging, the outer & merges
  // again into a single scan.
  QueryPtr q = P(
      "(& (| (dc=com ? sub ? objectClass=QHP)"
      "      (dc=com ? sub ? objectClass=callAppearance))"
      "   (dc=com ? sub ? priority=1))");
  QueryPtr r = RewriteQuery(q, &stats);
  EXPECT_EQ(stats.merged_boolean_scans, 2u);
  EXPECT_EQ(r->op(), QueryOp::kLdap);
  EXPECT_EQ(r->NodeCount(), 1u);
  ExpectEquivalent(testing::PaperInstance(), q, r);
}

TEST(RewriteTest, DifferentBasesNotMerged) {
  RewriteStats stats;
  QueryPtr q = P(
      "(& (dc=com ? sub ? objectClass=QHP)"
      "   (dc=att, dc=com ? sub ? priority<=1))");
  QueryPtr r = RewriteQuery(q, &stats);
  EXPECT_EQ(stats.merged_boolean_scans, 0u);
  EXPECT_EQ(r->op(), QueryOp::kAnd);
}

TEST(RewriteTest, DiffNeverMerged) {
  // (- ...) has no filter-level counterpart without ! over queries; it
  // must stay a set difference.
  RewriteStats stats;
  QueryPtr q = P(
      "(- (dc=com ? sub ? objectClass=QHP) (dc=com ? sub ? priority<=1))");
  QueryPtr r = RewriteQuery(q, &stats);
  EXPECT_EQ(r->op(), QueryOp::kDiff);
}

TEST(RewriteTest, CollapseIdempotent) {
  RewriteStats stats;
  QueryPtr q = P(
      "(| (c (dc=com ? sub ? ou=*) (dc=com ? sub ? uid=*))"
      "   (c (dc=com ? sub ? ou=*) (dc=com ? sub ? uid=*)))");
  QueryPtr r = RewriteQuery(q, &stats);
  EXPECT_EQ(stats.collapsed_idempotent, 1u);
  EXPECT_EQ(r->op(), QueryOp::kChildren);
  ExpectEquivalent(testing::PaperInstance(), q, r);
}

TEST(RewriteTest, DropExistentialAgg) {
  RewriteStats stats;
  QueryPtr q = P(
      "(d (dc=com ? sub ? objectClass=dcObject)"
      "   (dc=com ? sub ? objectClass=QHP) count($2)>0)");
  QueryPtr r = RewriteQuery(q, &stats);
  EXPECT_EQ(stats.dropped_existential_aggs, 1u);
  EXPECT_FALSE(r->agg().has_value());
  ExpectEquivalent(testing::PaperInstance(), q, r);
  // A non-trivial aggregate must be preserved.
  QueryPtr q2 = P(
      "(d (dc=com ? sub ? objectClass=dcObject)"
      "   (dc=com ? sub ? objectClass=QHP) count($2)>1)");
  QueryPtr r2 = RewriteQuery(q2, &stats);
  EXPECT_TRUE(r2->agg().has_value());
}

TEST(RewriteTest, ExpandAndContractParentsChildren) {
  // Theorem 8.2(d): p/c are expressible via ac/dc with a match-everything
  // third operand; the contraction undoes the expansion.
  DirectoryInstance inst = testing::PaperInstance();
  for (const char* text :
       {"(p (dc=com ? sub ? objectClass=QHP)"
        "   (dc=com ? sub ? objectClass=TOPSSubscriber))",
        "(c (dc=com ? sub ? objectClass=organizationalUnit)"
        "   (dc=com ? sub ? objectClass=SLAPolicyRules))",
        "(p (dc=com ? sub ? objectClass=callAppearance)"
        "   (dc=com ? sub ? objectClass=QHP) count($2)=1)"}) {
    SCOPED_TRACE(text);
    QueryPtr q = P(text);
    QueryPtr expanded = ExpandParentsChildren(q);
    EXPECT_NE(expanded->ToString(), q->ToString());
    EXPECT_TRUE(expanded->op() == QueryOp::kCoAncestors ||
                expanded->op() == QueryOp::kCoDescendants);
    // Equivalent on a prefix-closed instance.
    ExpectEquivalent(inst, q, expanded);
    // And the optimizer contracts it back to the cheap form.
    RewriteStats stats;
    QueryPtr contracted = RewriteQuery(expanded, &stats);
    EXPECT_EQ(stats.contracted_constrained, 1u);
    EXPECT_EQ(contracted->ToString(), q->ToString());
  }
}

TEST(RewriteTest, MergedScanHalvesLeafIo) {
  DirectoryInstance inst = testing::PaperInstance();
  SimDisk disk(512);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  QueryPtr q = P(
      "(& (dc=com ? sub ? objectClass=QHP) (dc=com ? sub ? priority<=1))");
  QueryPtr r = RewriteQuery(q);

  SimDisk scratch(512);
  Evaluator evaluator(&scratch, &store);
  disk.ResetStats();
  std::vector<Entry> before = evaluator.EvaluateToEntries(*q).TakeValue();
  uint64_t io_before = disk.stats().page_reads;
  disk.ResetStats();
  std::vector<Entry> after = evaluator.EvaluateToEntries(*r).TakeValue();
  uint64_t io_after = disk.stats().page_reads;
  EXPECT_EQ(before.size(), after.size());
  EXPECT_LE(2 * io_after, io_before + 1);  // one scan instead of two
}

class RewritePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RewritePropertyTest, RewritesPreserveSemanticsOnRandomQueries) {
  std::mt19937 rng(GetParam());
  gen::RandomForestOptions fopt;
  fopt.seed = static_cast<uint32_t>(GetParam());
  fopt.num_entries = 120;
  DirectoryInstance inst = gen::RandomForest(fopt);
  gen::RandomQueryOptions qopt;
  qopt.max_language = Language::kL3;
  for (int i = 0; i < 60; ++i) {
    QueryPtr q = gen::RandomQuery(&rng, inst, qopt);
    SCOPED_TRACE(q->ToString());
    QueryPtr r = RewriteQuery(q);
    ExpectEquivalent(inst, q, r);
    // The expansion direction must also preserve semantics (instances
    // from RandomForest are prefix-closed by construction).
    QueryPtr e = ExpandParentsChildren(q);
    ExpectEquivalent(inst, q, e);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritePropertyTest,
                         ::testing::Values(5, 15, 25));

}  // namespace
}  // namespace ndq
