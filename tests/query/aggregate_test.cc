#include "query/aggregate.h"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace ndq {
namespace {

constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();
constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();

TEST(AggAccumulatorTest, Count) {
  AggAccumulator acc(AggFn::kCount);
  EXPECT_EQ(acc.Finish().value(), 0);  // count of empty set is 0
  acc.AddValue(Value::Int(5));
  acc.AddValue(Value::String("x"));  // count counts all kinds
  acc.AddUnit();
  EXPECT_EQ(acc.Finish().value(), 3);
}

TEST(AggAccumulatorTest, MinMaxSum) {
  AggAccumulator mn(AggFn::kMin), mx(AggFn::kMax), sm(AggFn::kSum);
  for (int64_t v : {3, -1, 7, 0}) {
    mn.AddInt(v);
    mx.AddInt(v);
    sm.AddInt(v);
  }
  EXPECT_EQ(mn.Finish().value(), -1);
  EXPECT_EQ(mx.Finish().value(), 7);
  EXPECT_EQ(sm.Finish().value(), 9);
}

TEST(AggAccumulatorTest, EmptyMinIsUndefined) {
  AggAccumulator mn(AggFn::kMin);
  EXPECT_FALSE(mn.Finish().has_value());
  // Non-int values don't make min defined.
  mn.AddValue(Value::String("zzz"));
  EXPECT_FALSE(mn.Finish().has_value());
}

TEST(AggAccumulatorTest, AverageIsIntegerDivision) {
  AggAccumulator avg(AggFn::kAvg);
  avg.AddInt(1);
  avg.AddInt(2);
  avg.AddInt(4);
  EXPECT_EQ(avg.Finish().value(), 2);  // 7/3
}

TEST(AggAccumulatorTest, MergeIsDistributive) {
  AggAccumulator a(AggFn::kMin), b(AggFn::kMin), whole(AggFn::kMin);
  for (int64_t v : {5, 9}) {
    a.AddInt(v);
    whole.AddInt(v);
  }
  for (int64_t v : {2, 11}) {
    b.AddInt(v);
    whole.AddInt(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Finish(), whole.Finish());

  AggAccumulator empty(AggFn::kMin);
  empty.Merge(AggAccumulator(AggFn::kMin));
  EXPECT_FALSE(empty.Finish().has_value());
}

// Regression (fuzzer corpus `agg-sum-overflow`): summing adversarial values
// used to wrap a bare int64 (UB). A sum whose true value is outside the
// int64 domain must be undefined, never a wrapped number.
TEST(AggAccumulatorTest, SumOverflowIsUndefined) {
  AggAccumulator sm(AggFn::kSum);
  sm.AddInt(kI64Max);
  sm.AddInt(kI64Max);
  EXPECT_FALSE(sm.Finish().has_value());
  // Comparisons against the undefined sum are false, not UB-dependent.
  EXPECT_FALSE(CompareAgg(sm.Finish(), CompareOp::kEq, -2));

  AggAccumulator neg(AggFn::kSum);
  neg.AddInt(kI64Min);
  neg.AddInt(-1);
  EXPECT_FALSE(neg.Finish().has_value());
}

TEST(AggAccumulatorTest, SumRecoversIntoRange) {
  // The 128-bit accumulator keeps the exact value, so a running sum that
  // transiently exceeds int64 but returns into range is defined again.
  AggAccumulator sm(AggFn::kSum);
  sm.AddInt(kI64Max);
  sm.AddInt(kI64Max);
  sm.AddInt(kI64Min);
  EXPECT_EQ(sm.Finish().value(), kI64Max - 1);
}

TEST(AggAccumulatorTest, SumAtInt64BoundsIsDefined) {
  AggAccumulator hi(AggFn::kSum);
  hi.AddInt(kI64Max);
  EXPECT_EQ(hi.Finish().value(), kI64Max);

  AggAccumulator lo(AggFn::kSum);
  lo.AddInt(kI64Min);
  EXPECT_EQ(lo.Finish().value(), kI64Min);
}

TEST(AggAccumulatorTest, SumOverflowIsMergeOrderIndependent) {
  // The stack algorithms merge accumulators in a different order than a
  // linear scan; the result must not depend on it.
  AggAccumulator a(AggFn::kSum), b(AggFn::kSum), linear(AggFn::kSum);
  for (int64_t v : {kI64Max, 5L}) {
    a.AddInt(v);
    linear.AddInt(v);
  }
  for (int64_t v : {kI64Min, -5L}) {
    b.AddInt(v);
    linear.AddInt(v);
  }
  AggAccumulator merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.Finish(), linear.Finish());
  EXPECT_EQ(merged.Finish().value(), -1);

  AggAccumulator reversed = b;
  reversed.Merge(a);
  EXPECT_EQ(reversed.Finish(), linear.Finish());
}

TEST(AggAccumulatorTest, AverageUsesIntCountNotCount) {
  // Non-int values bump `count` but must not dilute the average.
  AggAccumulator avg(AggFn::kAvg);
  avg.AddValue(Value::Int(10));
  avg.AddValue(Value::Int(20));
  avg.AddValue(Value::String("ignored"));
  avg.AddValue(Value::String("ignored too"));
  EXPECT_EQ(avg.Finish().value(), 15);  // 30/2, not 30/4
}

TEST(AggAccumulatorTest, AverageOfExtremeValuesIsDefined) {
  // avg is computed in 128-bit: |avg| <= max |value|, so it always fits
  // int64 even when the intermediate sum does not.
  AggAccumulator avg(AggFn::kAvg);
  avg.AddInt(kI64Max);
  avg.AddInt(kI64Max);
  avg.AddInt(kI64Max - 2);
  EXPECT_EQ(avg.Finish().value(), kI64Max - 1);
}

TEST(CompareAggTest, UndefinedIsFalse) {
  EXPECT_FALSE(CompareAgg(std::nullopt, CompareOp::kEq, 1));
  EXPECT_FALSE(CompareAgg(1, CompareOp::kEq, std::nullopt));
  EXPECT_FALSE(CompareAgg(std::nullopt, CompareOp::kNe, std::nullopt));
  EXPECT_TRUE(CompareAgg(2, CompareOp::kGt, 1));
  EXPECT_TRUE(CompareAgg(1, CompareOp::kLe, 1));
  EXPECT_TRUE(CompareAgg(1, CompareOp::kNe, 2));
}

TEST(ParseAggSelTest, PaperExamples) {
  // Example 6.1: count(SLAPVPRef) > 1
  AggSelFilter f = ParseAggSelFilter("count(SLAPVPRef) > 1").ValueOrDie();
  EXPECT_EQ(f.lhs.kind, AggAttr::Kind::kEntry);
  EXPECT_EQ(f.lhs.entry.fn, AggFn::kCount);
  EXPECT_EQ(f.lhs.entry.target, AggTarget::kSelfAttr);
  EXPECT_EQ(f.lhs.entry.attr, "SLAPVPRef");
  EXPECT_EQ(f.op, CompareOp::kGt);
  EXPECT_EQ(f.rhs.kind, AggAttr::Kind::kConst);
  EXPECT_EQ(f.rhs.constant, 1);

  // Example 6.2: count($2) > 10
  f = ParseAggSelFilter("count($2) > 10").ValueOrDie();
  EXPECT_EQ(f.lhs.entry.target, AggTarget::kWitnessCount);
  EXPECT_FALSE(f.NeedsSetAggregates());

  // Section 7 example: min(SLARulePriority)=min(min(SLARulePriority))
  f = ParseAggSelFilter("min(SLARulePriority)=min(min(SLARulePriority))")
          .ValueOrDie();
  EXPECT_EQ(f.lhs.kind, AggAttr::Kind::kEntry);
  EXPECT_EQ(f.lhs.entry.fn, AggFn::kMin);
  EXPECT_EQ(f.rhs.kind, AggAttr::Kind::kEntrySet);
  EXPECT_EQ(f.rhs.outer_fn, AggFn::kMin);
  EXPECT_EQ(f.rhs.entry.fn, AggFn::kMin);
  EXPECT_EQ(f.rhs.entry.attr, "SLARulePriority");
  EXPECT_TRUE(f.NeedsSetAggregates());

  // Fig. 6: count($2)=max(count($2))
  f = ParseAggSelFilter("count($2)=max(count($2))").ValueOrDie();
  EXPECT_EQ(f.lhs.entry.target, AggTarget::kWitnessCount);
  EXPECT_EQ(f.rhs.kind, AggAttr::Kind::kEntrySet);
  EXPECT_EQ(f.rhs.outer_fn, AggFn::kMax);
  EXPECT_EQ(f.rhs.entry.target, AggTarget::kWitnessCount);
}

TEST(ParseAggSelTest, DollarForms) {
  AggSelFilter f = ParseAggSelFilter("count($$) >= 5").ValueOrDie();
  EXPECT_EQ(f.lhs.kind, AggAttr::Kind::kEntrySet);
  EXPECT_EQ(f.lhs.set_form, AggAttr::SetForm::kCountSet);

  f = ParseAggSelFilter("count($1) != 0").ValueOrDie();
  EXPECT_EQ(f.lhs.set_form, AggAttr::SetForm::kCountSet);

  f = ParseAggSelFilter("min($1.priority) < max($2.priority)").ValueOrDie();
  EXPECT_EQ(f.lhs.entry.target, AggTarget::kSelfAttr);
  EXPECT_EQ(f.lhs.entry.attr, "priority");
  EXPECT_EQ(f.rhs.entry.target, AggTarget::kWitnessAttr);
  EXPECT_EQ(f.rhs.entry.attr, "priority");

  f = ParseAggSelFilter("sum($2.timeOut) <= 100").ValueOrDie();
  EXPECT_EQ(f.lhs.entry.fn, AggFn::kSum);
}

TEST(ParseAggSelTest, Errors) {
  EXPECT_FALSE(ParseAggSelFilter("count(") .ok());
  EXPECT_FALSE(ParseAggSelFilter("count(x)").ok());        // missing op+rhs
  EXPECT_FALSE(ParseAggSelFilter("min($$) > 1").ok());     // only count($$)
  EXPECT_FALSE(ParseAggSelFilter("min($2) > 1").ok());     // only count($2)
  EXPECT_FALSE(ParseAggSelFilter("bogus(x) = 1").ok());
  EXPECT_FALSE(ParseAggSelFilter("count(x) = 1 trailing").ok());
  EXPECT_FALSE(ParseAggSelFilter("count($3) = 1").ok());
}

TEST(ParseAggSelTest, ToStringRoundTrips) {
  for (const char* text :
       {"count(SLAPVPRef)>1", "count($2)>10", "count($$)>=5", "count($1)=0",
        "min(SLARulePriority)=min(min(SLARulePriority))",
        "count($2)=max(count($2))", "min($1.priority)<max($2.priority)",
        "average($2.timeOut)<=25", "sum(x)!=7"}) {
    AggSelFilter f = ParseAggSelFilter(text).ValueOrDie();
    AggSelFilter again = ParseAggSelFilter(f.ToString()).ValueOrDie();
    EXPECT_EQ(f, again) << text << " -> " << f.ToString();
  }
}

}  // namespace
}  // namespace ndq
