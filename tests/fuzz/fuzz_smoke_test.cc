// Smoke tests for the differential fuzzer itself: determinism of case
// generation, a small clean fuzzing run through every oracle, the
// delta-debugging shrinkers against synthetic failure predicates (so they
// are testable without a real engine bug), and the .ndqrepro round trip.

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dn.h"
#include "core/instance.h"
#include "filter/atomic_filter.h"
#include "fuzz/fuzz.h"
#include "fuzz/repro.h"
#include "query/ast.h"
#include "query/parser.h"

namespace ndq {
namespace fuzz {
namespace {

Dn MustDn(const std::string& text) {
  Result<Dn> dn = Dn::Parse(text);
  EXPECT_TRUE(dn.ok()) << text << ": " << dn.status().ToString();
  return *dn;
}

Entry MakeEntry(const std::string& dn_text,
                const std::string& cls = "class0") {
  Entry e(MustDn(dn_text));
  e.AddClass(cls);
  return e;
}

// A five-entry forest: two children under the root, one grandchild each.
DirectoryInstance SmallInstance() {
  DirectoryInstance inst(Schema(), /*validate=*/false);
  EXPECT_TRUE(inst.Add(MakeEntry("dc=n0")).ok());
  EXPECT_TRUE(inst.Add(MakeEntry("cn=a, dc=n0")).ok());
  EXPECT_TRUE(inst.Add(MakeEntry("cn=b, dc=n0")).ok());
  EXPECT_TRUE(inst.Add(MakeEntry("cn=g, cn=a, dc=n0")).ok());
  EXPECT_TRUE(inst.Add(MakeEntry("cn=h, cn=b, dc=n0")).ok());
  return inst;
}

TEST(CaseSeedTest, DeterministicAndWellSpread) {
  EXPECT_EQ(CaseSeed(42, 7), CaseSeed(42, 7));
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 256; ++i) {
    seen.insert(CaseSeed(1, i));
  }
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_NE(CaseSeed(1, 0), CaseSeed(2, 0));
}

TEST(GenTest, SameCaseSeedSameCase) {
  FuzzCaseOptions gen;
  gen.num_entries = 30;
  const uint64_t cs = CaseSeed(9, 3);
  DirectoryInstance a = GenInstance(cs, gen);
  DirectoryInstance b = GenInstance(cs, gen);
  ASSERT_EQ(a.size(), b.size());
  for (const Entry* e : a.EntriesInScope(Dn(), Scope::kSub)) {
    EXPECT_NE(b.Find(e->dn()), nullptr) << e->dn().ToString();
  }
  QueryPtr qa = GenQuery(cs, a, gen);
  QueryPtr qb = GenQuery(cs, b, gen);
  ASSERT_NE(qa, nullptr);
  ASSERT_NE(qb, nullptr);
  EXPECT_EQ(qa->ToString(), qb->ToString());
}

// A short full-matrix run (distributed + fault oracles included) must be
// divergence-free and byte-for-byte repeatable.
TEST(RunFuzzTest, SmallRunIsCleanAndDeterministic) {
  FuzzOptions opt;
  opt.seed = 7;
  opt.iterations = 4;
  opt.gen.num_entries = 25;
  FuzzReport first = RunFuzz(opt);
  EXPECT_EQ(first.cases, 4u);
  EXPECT_GT(first.checks, 0u);
  for (const Divergence& d : first.divergences) {
    ADD_FAILURE() << d.check << ": " << d.detail
                  << "\n  query: " << d.repro.query_text;
  }
  FuzzReport second = RunFuzz(opt);
  EXPECT_EQ(first.cases, second.cases);
  EXPECT_EQ(first.checks, second.checks);
  EXPECT_EQ(first.divergences.size(), second.divergences.size());
}

// Synthetic predicate: "the instance still contains cn=g, cn=a, dc=n0".
// The shrinker must keep exactly the ancestor chain of that entry (the
// namespace stays prefix-closed) and drop the unrelated subtree.
TEST(ShrinkInstanceTest, ReducesToAncestorChain) {
  DirectoryInstance inst = SmallInstance();
  QueryPtr query = Query::Atomic(Dn(), Scope::kSub,
                                 AtomicFilter::Presence("cn"));
  const Dn needle = MustDn("cn=g, cn=a, dc=n0");
  FailurePredicate fails = [&](const DirectoryInstance& cand,
                               const QueryPtr&) {
    return cand.Find(needle) != nullptr;
  };
  DirectoryInstance shrunk = ShrinkInstance(inst, query, fails);
  EXPECT_EQ(shrunk.size(), 3u);
  EXPECT_NE(shrunk.Find(needle), nullptr);
  EXPECT_NE(shrunk.Find(MustDn("dc=n0")), nullptr);
  EXPECT_NE(shrunk.Find(MustDn("cn=a, dc=n0")), nullptr);
  EXPECT_EQ(shrunk.Find(MustDn("cn=b, dc=n0")), nullptr);
}

// Synthetic predicate: "the query tree still mentions ref=*". The
// shrinker must hoist that leaf out of the surrounding boolean operators.
TEST(ShrinkQueryTest, HoistsToFailingLeaf) {
  DirectoryInstance inst = SmallInstance();
  QueryPtr ref_leaf = Query::Atomic(Dn(), Scope::kSub,
                                    AtomicFilter::Presence("ref"));
  const std::string ref_text = ref_leaf->ToString();
  QueryPtr other = Query::Atomic(Dn(), Scope::kSub,
                                 AtomicFilter::Presence("x"));
  QueryPtr third = Query::Atomic(Dn(), Scope::kOne,
                                 AtomicFilter::Presence("tag"));
  QueryPtr query = Query::And(Query::Or(std::move(ref_leaf),
                                        std::move(other)),
                              std::move(third));
  FailurePredicate fails = [](const DirectoryInstance&,
                              const QueryPtr& cand) {
    return cand->ToString().find("ref=*") != std::string::npos;
  };
  QueryPtr shrunk = ShrinkQuery(inst, query, fails);
  ASSERT_NE(shrunk, nullptr);
  EXPECT_EQ(shrunk->ToString(), ref_text);
}

TEST(ReproTest, QuoteUnquoteRoundTripsAdversarialStrings) {
  const std::string cases[] = {
      "",
      "plain",
      "back\\slash and \"quotes\"",
      "edge  spaces  ",
      " lead, trail\\",
      std::string("nul\x01tab\tnewline\ncr\r"),
      "cn=\\ x\\,y\\=z",
  };
  for (const std::string& s : cases) {
    std::string quoted = QuoteString(s);
    size_t pos = 0;
    Result<std::string> back = UnquoteString(quoted, &pos);
    ASSERT_TRUE(back.ok()) << quoted << ": " << back.status().ToString();
    EXPECT_EQ(*back, s) << quoted;
    EXPECT_EQ(pos, quoted.size());
  }
}

TEST(ReproTest, TextAndFileRoundTrip) {
  Repro repro;
  repro.check = "dn-roundtrip";
  repro.seed = 12345;
  repro.query_text = "(null-dn ? sub ? objectClass=*)";
  Entry root(MustDn("dc=n0"));
  root.AddClass("class0");
  root.AddInt("x", -9223372036854775807LL - 1);
  repro.entries.push_back(root);
  Entry weird(MustDn("cn=\\ lead\\,er\\=x, dc=n0"));
  weird.AddClass("class1");
  weird.AddString("note", "has \"quotes\" and \\ and \n newline");
  weird.AddDnRef("ref", MustDn("dc=n0"));
  repro.entries.push_back(weird);

  const std::string text = repro.ToText();
  Result<Repro> parsed = Repro::FromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToText(), text);
  EXPECT_EQ(parsed->check, "dn-roundtrip");
  EXPECT_EQ(parsed->seed, 12345u);
  ASSERT_EQ(parsed->entries.size(), 2u);
  EXPECT_EQ(parsed->entries[1].dn().ToString(), weird.dn().ToString());

  const std::string path =
      testing::TempDir() + "/fuzz_smoke_roundtrip.ndqrepro";
  ASSERT_TRUE(repro.SaveTo(path).ok());
  Result<Repro> loaded = Repro::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ToText(), text);
  std::remove(path.c_str());

  Result<DirectoryInstance> inst = parsed->BuildInstance();
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  EXPECT_EQ(inst->size(), 2u);
}

TEST(ReproTest, MalformedInputIsRejected) {
  EXPECT_FALSE(Repro::FromText("").ok());
  EXPECT_FALSE(Repro::FromText("not-a-repro 1\n").ok());
  EXPECT_FALSE(Repro::FromText("ndqrepro 1\nattr x int 3\n").ok());
  EXPECT_FALSE(
      Repro::FromText("ndqrepro 1\nentry \"dc=n0\"\nattr x float 1\nend\n")
          .ok());
  EXPECT_FALSE(
      Repro::FromText("ndqrepro 1\nentry \"dc=n0\"\nattr x int z\nend\n")
          .ok());
}

// A healthy handcrafted repro must replay clean through the full matrix.
TEST(ReplayTest, CleanReproHasNoFailures) {
  Repro repro;
  repro.check = "smoke";
  repro.seed = 1;
  repro.query_text = "(null-dn ? sub ? objectClass=*)";
  Entry root(MustDn("dc=n0"));
  root.AddClass("class0");
  repro.entries.push_back(root);
  Entry child(MustDn("cn=a, dc=n0"));
  child.AddClass("class1");
  child.AddInt("x", 5);
  repro.entries.push_back(child);

  FuzzOptions opt;
  Result<std::vector<CheckFailure>> failures = ReplayRepro(repro, opt);
  ASSERT_TRUE(failures.ok()) << failures.status().ToString();
  for (const CheckFailure& f : *failures) {
    ADD_FAILURE() << f.check << ": " << f.detail;
  }
}

// An unparseable query must surface as an error, not a crash.
TEST(ReplayTest, BadQueryTextIsAnError) {
  Repro repro;
  repro.query_text = "(this is not a query";
  Entry root(MustDn("dc=n0"));
  root.AddClass("class0");
  repro.entries.push_back(root);
  FuzzOptions opt;
  EXPECT_FALSE(ReplayRepro(repro, opt).ok());
}

}  // namespace
}  // namespace fuzz
}  // namespace ndq
