// Regression corpus replay: every .ndqrepro under tests/fuzz/corpus/ is a
// minimized counterexample for a bug that has since been FIXED, so each one
// must come back clean from the full differential check matrix. A failure
// here means a fixed bug has reappeared.
//
// The corpus directory is baked in at compile time (NDQ_FUZZ_CORPUS_DIR,
// set in tests/CMakeLists.txt) so the suite runs from any build directory.
// The same files can be replayed by hand with:
//
//   ndqfuzz --corpus tests/fuzz/corpus

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz.h"
#include "fuzz/repro.h"

#ifndef NDQ_FUZZ_CORPUS_DIR
#error "NDQ_FUZZ_CORPUS_DIR must point at tests/fuzz/corpus"
#endif

namespace ndq {
namespace fuzz {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& de :
       std::filesystem::directory_iterator(NDQ_FUZZ_CORPUS_DIR, ec)) {
    if (de.path().extension() == ".ndqrepro") {
      paths.push_back(de.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(FuzzCorpusTest, CorpusIsPresent) {
  // The checked-in corpus pins the DN-escape, cache-key, aggregate
  // overflow and naive-L2 fixes; shrinking away to nothing would silently
  // drop that coverage.
  EXPECT_GE(CorpusFiles().size(), 4u) << "corpus dir: " << NDQ_FUZZ_CORPUS_DIR;
}

TEST(FuzzCorpusTest, EveryReproReplaysClean) {
  FuzzOptions opt;  // full matrix: distributed + fault oracles included
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    Result<Repro> repro = Repro::LoadFrom(path);
    ASSERT_TRUE(repro.ok()) << repro.status().ToString();
    EXPECT_FALSE(repro->check.empty());
    EXPECT_FALSE(repro->entries.empty());
    Result<std::vector<CheckFailure>> failures = ReplayRepro(*repro, opt);
    ASSERT_TRUE(failures.ok()) << failures.status().ToString();
    for (const CheckFailure& f : *failures) {
      ADD_FAILURE() << "regression: " << f.check << ": " << f.detail;
    }
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace ndq
