// E17 — multi-query batching with cross-query operand sharing
// (bench_batch).
// Claim: operand lists are materialized in reverse-DN order, so a
// sub-plan's output is reusable by EVERY query in a batch that contains
// it (Sec. 3's physical design at the workload level). RunBatch censuses
// the batch, materializes each shared subtree once, and serves every
// other occurrence from the operand cache for ~output pages instead of
// re-scanning the store — with results byte-identical to one-at-a-time
// evaluation.
//
// Measures a 16-query batch whose queries overlap heavily in operands:
// sequential cold-cache evaluation vs Session::RunBatch, wall-clock under
// per-page transfer latency plus counted page transfers. Emits
// BENCH_batch.json for EXPERIMENTS.md.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/trace.h"
#include "gen/dif_gen.h"
#include "query/parser.h"
#include "store/entry_store.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

constexpr uint32_t kLatencyMicros = 80;

// Five selective full-store scans (base dc=com, subtree scope): the
// operand pool. Every query below is built from this pool, so each leaf
// recurs in 5-8 of the 16 queries and several whole sub-plans recur too —
// the shape of a directory serving many concurrent clients with
// overlapping interests.
#define LEAF_A "(dc=com ? sub ? objectClass=SLADSAction)"
#define LEAF_B "(dc=com ? sub ? objectClass=policyValidityPeriod)"
#define LEAF_C "(dc=com ? sub ? objectClass=trafficProfile)"
#define LEAF_D "(dc=com ? sub ? sourcePort=25)"
#define LEAF_E "(dc=com ? sub ? objectClass=SLAPolicyRules)"

const char* kBatch[] = {
    "(& " LEAF_A " " LEAF_B ")",
    "(| " LEAF_A " " LEAF_B ")",
    "(- " LEAF_C " " LEAF_D ")",
    "(& " LEAF_C " " LEAF_D ")",
    "(| " LEAF_E " " LEAF_A ")",
    "(- " LEAF_E " " LEAF_B ")",
    "(c " LEAF_B " " LEAF_D ")",
    "(d " LEAF_C " " LEAF_E ")",
    // Nested repeats: the whole (& A B) / (- C D) sub-plans above recur
    // here as operands, so the census finds multi-level sharing.
    "(- (& " LEAF_A " " LEAF_B ") " LEAF_D ")",
    "(| (& " LEAF_A " " LEAF_B ") " LEAF_E ")",
    "(& (- " LEAF_C " " LEAF_D ") " LEAF_A ")",
    "(| (- " LEAF_C " " LEAF_D ") " LEAF_B ")",
    // Exact duplicates: the easiest sharing there is.
    "(& " LEAF_A " " LEAF_B ")",
    "(- " LEAF_C " " LEAF_D ")",
    "(| " LEAF_E " " LEAF_A ")",
    "(c " LEAF_B " " LEAF_D ")",
};

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  PrintHeader("E17: multi-query batch engine (bench_batch)",
              "a batch materializes each shared operand subtree once; "
              "every other occurrence is a cache copy, not a re-scan; "
              "results byte-identical to one-at-a-time evaluation");

  gen::DifOptions opt;
  opt.num_orgs = 6;
  opt.subdomains_per_org = 3;
  DirectoryInstance inst = gen::GenerateDif(opt);

  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  std::printf("directory: %zu entries, %zu store pages, %uus/page\n",
              inst.size(), disk.live_pages(), kLatencyMicros);
  std::printf("batch: %zu queries over 5 overlapping operands\n",
              std::size(kBatch));
  disk.set_transfer_latency_micros(kLatencyMicros);

  std::vector<QueryPtr> plans;
  for (const char* text : kBatch) {
    plans.push_back(ParseQuery(text).TakeValue());
  }

  uint64_t violations = 0;

  // Baseline: one at a time, cold — no cache, so every occurrence of
  // every operand re-scans the store. Canonicalization stays ON on both
  // sides (the comparison is sharing, not rewriting).
  double seq_ms;
  uint64_t seq_pages;
  std::vector<std::vector<Entry>> want;
  {
    EngineOptions opts;
    opts.cache_capacity_pages = 0;
    EngineHarness h(&disk, &store, opts);
    uint64_t before = disk.stats().TotalTransfers();
    auto start = std::chrono::steady_clock::now();
    for (const QueryPtr& q : plans) {
      QueryOutcome out = h.Run(q);
      violations += VerifyTheoremBounds(out.trace).size();
      want.push_back(std::move(out.entries));
    }
    seq_ms = MillisSince(start);
    seq_pages = disk.stats().TotalTransfers() - before;
  }

  // The batch path: same parallelism (1 — the speedup below is sharing,
  // not threading), queue deep enough to admit all 16 at once.
  double batch_ms;
  uint64_t batch_pages;
  BatchResult br;
  {
    EngineOptions opts;
    opts.cache_capacity_pages = 1 << 16;
    opts.queue_depth = 64;
    Engine engine(&disk, &store, opts);
    Session session = engine.OpenSession();
    uint64_t before = disk.stats().TotalTransfers();
    auto start = std::chrono::steady_clock::now();
    br = session.RunBatch(plans);
    batch_ms = MillisSince(start);
    batch_pages = disk.stats().TotalTransfers() - before;
  }

  // Byte-identical or the speedup is meaningless.
  bool identical = br.outcomes.size() == want.size();
  for (size_t i = 0; identical && i < want.size(); ++i) {
    if (!br.outcomes[i].ok() || br.outcomes[i].entries != want[i]) {
      identical = false;
    }
    violations += VerifyTheoremBounds(br.outcomes[i].trace).size();
  }

  // Batching + intra-query parallelism compose: same batch, 4 threads.
  double batch4_ms;
  {
    EngineOptions opts;
    opts.cache_capacity_pages = 1 << 16;
    opts.queue_depth = 64;
    opts.exec.parallelism = 4;
    Engine engine(&disk, &store, opts);
    Session session = engine.OpenSession();
    auto start = std::chrono::steady_clock::now();
    BatchResult br4 = session.RunBatch(plans);
    batch4_ms = MillisSince(start);
    for (size_t i = 0; identical && i < want.size(); ++i) {
      if (!br4.outcomes[i].ok() || br4.outcomes[i].entries != want[i]) {
        identical = false;
      }
    }
  }

  double speedup = seq_ms / batch_ms;
  double speedup4 = seq_ms / batch4_ms;
  std::printf("\n%-34s %10s %12s\n", "mode", "wall_ms", "pages");
  std::printf("%-34s %10.1f %12llu\n", "sequential cold (baseline)", seq_ms,
              static_cast<unsigned long long>(seq_pages));
  std::printf("%-34s %10.1f %12llu\n", "RunBatch, 1 thread", batch_ms,
              static_cast<unsigned long long>(batch_pages));
  std::printf("%-34s %10.1f\n", "RunBatch, 4 threads", batch4_ms);

  std::printf("\nsharing census: %zu shared subtrees, %llu occurrences; "
              "cache %llu hits / %llu misses\n",
              br.stats.shared_subtrees,
              static_cast<unsigned long long>(br.stats.shared_occurrences),
              static_cast<unsigned long long>(br.stats.cache_hits),
              static_cast<unsigned long long>(br.stats.cache_misses));

  std::printf("\nbatch speedup @1 thread: %.2fx (target >= 1.5x) %s\n",
              speedup, speedup >= 1.5 ? "PASS" : "FAIL");
  std::printf("batch+parallel speedup @4 threads: %.2fx\n", speedup4);
  std::printf("page transfers: %llu -> %llu (%.1f%% saved)\n",
              static_cast<unsigned long long>(seq_pages),
              static_cast<unsigned long long>(batch_pages),
              100.0 * (1.0 - static_cast<double>(batch_pages) / seq_pages));
  std::printf("results byte-identical to sequential: %s\n",
              identical ? "PASS" : "FAIL");
  std::printf("theorem-bound violations: %llu %s\n",
              static_cast<unsigned long long>(violations),
              violations == 0 ? "PASS" : "FAIL");

  FILE* f = std::fopen("BENCH_batch.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"experiment\": \"bench_batch\",\n");
    std::fprintf(f, "  \"entries\": %zu,\n", inst.size());
    std::fprintf(f, "  \"batch_queries\": %zu,\n", std::size(kBatch));
    std::fprintf(f, "  \"page_latency_us\": %u,\n", kLatencyMicros);
    std::fprintf(f, "  \"sequential_cold_ms\": %.1f,\n", seq_ms);
    std::fprintf(f, "  \"batch_ms\": %.1f,\n", batch_ms);
    std::fprintf(f, "  \"batch_parallel4_ms\": %.1f,\n", batch4_ms);
    std::fprintf(f, "  \"batch_speedup\": %.2f,\n", speedup);
    std::fprintf(f, "  \"batch_parallel4_speedup\": %.2f,\n", speedup4);
    std::fprintf(f, "  \"sequential_pages\": %llu,\n",
                 static_cast<unsigned long long>(seq_pages));
    std::fprintf(f, "  \"batch_pages\": %llu,\n",
                 static_cast<unsigned long long>(batch_pages));
    std::fprintf(f, "  \"shared_subtrees\": %zu,\n",
                 br.stats.shared_subtrees);
    std::fprintf(f, "  \"shared_occurrences\": %llu,\n",
                 static_cast<unsigned long long>(br.stats.shared_occurrences));
    std::fprintf(f, "  \"cache_hits\": %llu,\n",
                 static_cast<unsigned long long>(br.stats.cache_hits));
    std::fprintf(f, "  \"cache_misses\": %llu,\n",
                 static_cast<unsigned long long>(br.stats.cache_misses));
    std::fprintf(f, "  \"byte_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"theorem_violations\": %llu\n",
                 static_cast<unsigned long long>(violations));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_batch.json\n");
  }
  return (speedup >= 1.5 && identical && violations == 0) ? 0 : 1;
}
