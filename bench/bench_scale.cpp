// E21 — scale-out load (bench_scale): a million-entry directory sharded
// across a replicated fleet, driven by an open-loop mixed query stream
// through Engine sessions.
//
// Claims: the sharded fleet sustains an offered load with bounded tail
// latency; locality keeps most queries on one shard; and taking one
// replica of EVERY shard down changes nothing the client can see — the
// results stay byte-identical with zero degraded queries, only the
// failover counters move.
//
// The stream is OPEN-LOOP: arrivals are scheduled on a fixed-rate clock
// independent of completions, and a query's latency is measured from its
// scheduled arrival (queueing delay included), the way a load balancer's
// client would see it.
//
// Usage: bench_scale [--smoke] [--out <path>]
//   --smoke   small directory + short stream (the CI gate)
//   --out     where to write the JSON report (default BENCH_scale.json)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "gen/dif_gen.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  bool smoke = false;
  const char* out = "BENCH_scale.json";

  gen::DifOptions dif;
  size_t replicas = 2;
  size_t stream_queries = 600;
  double offered_qps = 50.0;
  size_t workers = 4;
};

Config MakeConfig(bool smoke) {
  Config cfg;
  cfg.smoke = smoke;
  if (smoke) {
    cfg.dif.num_orgs = 4;
    cfg.dif.subdomains_per_org = 2;
    cfg.dif.subscribers_per_domain = 40;
    cfg.stream_queries = 60;
    cfg.offered_qps = 100.0;
    cfg.workers = 4;
  } else {
    // >= 1M entries: 16 orgs x 16 subdomains x ~4k entries per domain.
    cfg.dif.num_orgs = 16;
    cfg.dif.subdomains_per_org = 16;
    cfg.dif.subscribers_per_domain = 400;
    cfg.stream_queries = 600;
    // Just under the measured single-core saturation throughput
    // (~4.9 qps for this mix at 1M entries): open-loop percentiles
    // then report service + transient queueing, not unbounded backlog.
    cfg.offered_qps = 4.0;
    cfg.workers = 4;
  }
  return cfg;
}

std::string MakeTopologyText(const Config& cfg) {
  std::string text = "replicas " + std::to_string(cfg.replicas) + "\n";
  text += "shard root dc=com\n";
  for (int i = 0; i < cfg.dif.num_orgs; ++i) {
    text += "shard org" + std::to_string(i) + " dc=org" + std::to_string(i) +
            ", dc=com\n";
  }
  return text;
}

// Engine is neither copyable nor movable; returning the prvalue
// constructs it in the caller's storage, and the (huge) DirectoryInstance
// dies here — the fleet owns its partitions.
Engine MakeFleetEngine(const Config& cfg, size_t* entries_out) {
  DirectoryInstance global = gen::GenerateDif(cfg.dif);
  *entries_out = global.size();
  EngineOptions opt;
  opt.backend = EngineBackend::kDistributed;
  opt.topology = TopologyConfig::Parse(MakeTopologyText(cfg)).TakeValue();
  // Open-loop admission: the stream, not the engine, applies backpressure.
  opt.max_inflight = 64;
  opt.queue_depth = 4096;
  return Engine(global, opt);
}

// The mixed workload. Subdomain j of org i is dc=sub{i*S+j} (dif_gen's
// global subdomain numbering).
std::vector<std::string> MakeStream(const Config& cfg, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> org(0, cfg.dif.num_orgs - 1);
  std::uniform_int_distribution<int> sub(0, cfg.dif.subdomains_per_org - 1);
  std::uniform_int_distribution<int> pct(0, 99);
  std::vector<std::string> stream;
  stream.reserve(cfg.stream_queries);
  for (size_t i = 0; i < cfg.stream_queries; ++i) {
    int o = org(rng);
    std::string org_dn = "dc=org" + std::to_string(o) + ", dc=com";
    std::string sub_dn =
        "dc=sub" + std::to_string(o * cfg.dif.subdomains_per_org + sub(rng)) +
        ", " + org_dn;
    int p = pct(rng);
    if (p < 60) {
      // Subdomain-local scan: one shard, a page-bounded range.
      stream.push_back("(" + sub_dn + " ? sub ? objectClass=QHP)");
    } else if (p < 85) {
      // Org-level scan: still one shard under the per-org layout.
      stream.push_back("(" + org_dn + " ? sub ? objectClass=SLAPolicyRules)");
    } else if (p < 95) {
      // Org-level L2 join: coordinator operators over one shard's streams.
      stream.push_back("(c (" + org_dn +
                       " ? sub ? objectClass=TOPSSubscriber)"
                       "   (" +
                       org_dn + " ? sub ? objectClass=QHP) count($2)>=3)");
    } else {
      // Global scan: fans out to the whole fleet.
      stream.push_back("(dc=com ? sub ? objectClass=SLADSAction)");
    }
  }
  return stream;
}

struct StreamResult {
  std::vector<uint64_t> latency_us;
  uint64_t errors = 0;
  uint64_t degraded = 0;
  double wall_seconds = 0;

  double AchievedQps() const {
    return wall_seconds > 0 ? latency_us.size() / wall_seconds : 0;
  }
};

uint64_t Percentile(std::vector<uint64_t> sorted, double q) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(q * sorted.size());
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

// Fixed-rate open-loop driver: arrival i is due at t0 + i/qps; `workers`
// threads (one Session each — sessions are thread-compatible, not
// thread-safe) pick arrivals off the shared schedule. A worker that runs
// late submits immediately and the lateness lands in the latency, as it
// should.
StreamResult RunStream(Engine* engine, const std::vector<std::string>& stream,
                       double qps, size_t workers) {
  StreamResult r;
  r.latency_us.assign(stream.size(), 0);
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> errors{0}, degraded{0};
  const double inter_us = 1e6 / qps;
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      Session session = engine->OpenSession();
      for (size_t i = next.fetch_add(1); i < stream.size();
           i = next.fetch_add(1)) {
        Clock::time_point due =
            t0 + std::chrono::microseconds(
                     static_cast<uint64_t>(i * inter_us));
        std::this_thread::sleep_until(due);
        QueryOutcome out = session.Run(stream[i]);
        Clock::time_point done = Clock::now();
        r.latency_us[i] = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(done - due)
                .count());
        if (!out.ok()) errors.fetch_add(1);
        if (!out.warnings.empty()) degraded.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  r.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                t0)
          .count();
  r.errors = errors.load();
  r.degraded = degraded.load();
  return r;
}

void PrintPhase(const char* label, const StreamResult& r,
                const NetStats& net) {
  std::vector<uint64_t> sorted = r.latency_us;
  std::sort(sorted.begin(), sorted.end());
  std::printf(
      "%-18s %5zu queries in %6.2fs (%6.1f qps) | p50 %7llu us, p99 %7llu "
      "us, p999 %7llu us | errors %llu, degraded %llu, failovers %llu\n",
      label, r.latency_us.size(), r.wall_seconds, r.AchievedQps(),
      (unsigned long long)Percentile(sorted, 0.50),
      (unsigned long long)Percentile(sorted, 0.99),
      (unsigned long long)Percentile(sorted, 0.999),
      (unsigned long long)r.errors, (unsigned long long)r.degraded,
      (unsigned long long)net.failovers);
}

void AppendPhaseJson(FILE* f, const char* label, double offered_qps,
                     const StreamResult& r, const NetStats& net, bool last) {
  std::vector<uint64_t> sorted = r.latency_us;
  std::sort(sorted.begin(), sorted.end());
  std::fprintf(
      f,
      "    {\"phase\": \"%s\", \"queries\": %zu, \"offered_qps\": %.1f, "
      "\"achieved_qps\": %.1f, \"wall_s\": %.2f, \"p50_us\": %llu, "
      "\"p99_us\": %llu, \"p999_us\": %llu, \"max_us\": %llu, "
      "\"errors\": %llu, \"degraded\": %llu, \"messages\": %llu, "
      "\"records_shipped\": %llu, \"failovers\": %llu}%s\n",
      label, r.latency_us.size(), offered_qps, r.AchievedQps(),
      r.wall_seconds, (unsigned long long)Percentile(sorted, 0.50),
      (unsigned long long)Percentile(sorted, 0.99),
      (unsigned long long)Percentile(sorted, 0.999),
      (unsigned long long)(sorted.empty() ? 0 : sorted.back()),
      (unsigned long long)r.errors, (unsigned long long)r.degraded,
      (unsigned long long)net.messages,
      (unsigned long long)net.records_shipped,
      (unsigned long long)net.failovers, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }
  Config cfg = MakeConfig(smoke);

  PrintHeader("E21: scale-out load (bench_scale)",
              "replicated shards sustain an open-loop mixed stream; one "
              "replica down is invisible");
  std::printf("expected directory size: %zu entries%s\n",
              gen::ExpectedDifSize(cfg.dif), smoke ? " (smoke)" : "");

  const Clock::time_point build_t0 = Clock::now();
  size_t entries = 0;
  Engine engine = MakeFleetEngine(cfg, &entries);
  const double build_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          Clock::now() - build_t0)
          .count();
  if (!engine.init_status().ok()) {
    std::fprintf(stderr, "fleet build failed: %s\n",
                 engine.init_status().ToString().c_str());
    return 1;
  }
  DistributedDirectory* fleet = engine.fleet();
  std::printf("built %zu entries across %zu shards x%zu replicas in %.0f ms\n",
              entries, fleet->shards().size(), cfg.replicas, build_ms);

  std::vector<std::string> stream = MakeStream(cfg, /*seed=*/42);

  // Validation set: one query of each class, checked byte-for-byte across
  // the failover phase. The global scan makes every shard participate.
  std::vector<std::string> validation = {
      "(dc=sub0, dc=org0, dc=com ? sub ? objectClass=QHP)",
      "(dc=org1, dc=com ? sub ? objectClass=SLAPolicyRules)",
      "(c (dc=org0, dc=com ? sub ? objectClass=TOPSSubscriber)"
      "   (dc=org0, dc=com ? sub ? objectClass=QHP) count($2)>=3)",
      "(dc=com ? sub ? objectClass=SLADSAction)",
  };
  Session session = engine.OpenSession();
  std::vector<std::vector<Entry>> healthy_results;
  for (const std::string& q : validation) {
    QueryOutcome out = session.Run(q);
    if (!out.ok()) {
      std::fprintf(stderr, "validation query failed: %s\n",
                   out.status.ToString().c_str());
      return 1;
    }
    healthy_results.push_back(std::move(out.entries));
  }

  // Phase 1: healthy fleet under the open-loop stream.
  fleet->ResetStats();
  StreamResult healthy =
      RunStream(&engine, stream, cfg.offered_qps, cfg.workers);
  NetStats healthy_net;
  healthy_net.messages = uint64_t{fleet->net_stats().messages};
  healthy_net.records_shipped = uint64_t{fleet->net_stats().records_shipped};
  healthy_net.failovers = uint64_t{fleet->net_stats().failovers};
  PrintPhase("healthy", healthy, healthy_net);

  // Phase 2: one replica of EVERY shard down; same stream. The sibling
  // replicas keep serving; nothing may degrade.
  for (const auto& shard : fleet->shards()) {
    shard->replica(0)->set_down(true);
  }
  fleet->ResetStats();
  StreamResult failover =
      RunStream(&engine, stream, cfg.offered_qps, cfg.workers);
  NetStats failover_net;
  failover_net.messages = uint64_t{fleet->net_stats().messages};
  failover_net.records_shipped = uint64_t{fleet->net_stats().records_shipped};
  failover_net.failovers = uint64_t{fleet->net_stats().failovers};
  PrintPhase("one replica down", failover, failover_net);

  // Byte-identity check while still degraded-free.
  bool identical = true;
  uint64_t validation_degraded = 0;
  for (size_t i = 0; i < validation.size(); ++i) {
    QueryOutcome out = session.Run(validation[i]);
    if (!out.ok() || out.entries != healthy_results[i]) identical = false;
    validation_degraded += out.warnings.size();
  }
  for (const auto& shard : fleet->shards()) {
    shard->replica(0)->set_down(false);
  }
  std::printf(
      "failover check: results %s, %llu degraded, %zu replicas reported "
      "failovers\n",
      identical ? "byte-identical" : "DIVERGED",
      (unsigned long long)validation_degraded,
      fleet->ReplicaFailovers().size());

  const bool zero_degraded =
      failover.degraded == 0 && validation_degraded == 0;
  const bool failed_over = uint64_t{failover_net.failovers} > 0;

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"bench_scale\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"entries\": %zu,\n", entries);
  std::fprintf(f, "  \"shards\": %zu,\n", fleet->shards().size());
  std::fprintf(f, "  \"replicas\": %zu,\n", cfg.replicas);
  std::fprintf(f, "  \"workers\": %zu,\n", cfg.workers);
  std::fprintf(f, "  \"build_ms\": %.0f,\n", build_ms);
  std::fprintf(f, "  \"phases\": [\n");
  AppendPhaseJson(f, "healthy", cfg.offered_qps, healthy, healthy_net,
                  /*last=*/false);
  AppendPhaseJson(f, "one_replica_down", cfg.offered_qps, failover,
                  failover_net, /*last=*/true);
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"failover_identical\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"failover_zero_degraded\": %s,\n",
               zero_degraded ? "true" : "false");
  std::fprintf(f, "  \"failover_observed\": %s\n",
               failed_over ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  if (healthy.errors > 0 || failover.errors > 0 || !identical ||
      !zero_degraded || !failed_over) {
    std::fprintf(stderr, "FAILED: scale-out invariants violated\n");
    return 1;
  }
  std::printf(
      "\nexpected: most queries stay on one shard (locality); the failover\n"
      "phase matches the healthy phase byte-for-byte with zero degraded\n"
      "queries — the outage is visible only in the failover counters.\n");
  return 0;
}
