// Wall-clock microbenchmarks (google-benchmark) for the core operators and
// application paths. The I/O-complexity validation lives in the dedicated
// experiment harnesses (E1-E14); this binary tracks CPU-side throughput so
// regressions in the hot loops (merges, stack passes, serde) are visible.

#include <benchmark/benchmark.h>

#include "apps/tops.h"
#include "bench_util.h"
#include "exec/boolean.h"
#include "exec/embedded_ref.h"
#include "exec/hierarchy.h"
#include "gen/dif_gen.h"
#include "gen/paper_data.h"
#include "query/parser.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

void BM_BooleanAnd(benchmark::State& state) {
  OperandLists lists(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    EntryList out =
        EvalBoolean(&lists.disk, QueryOp::kAnd, lists.l1, lists.l2)
            .TakeValue();
    benchmark::DoNotOptimize(out.num_records);
    FreeRun(&lists.disk, &out).ok();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lists.InputRecords()));
}
BENCHMARK(BM_BooleanAnd)->Arg(4000)->Arg(16000);

void BM_HierarchyAncestors(benchmark::State& state) {
  OperandLists lists(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    EntryList out = EvalHierarchy(&lists.disk, QueryOp::kAncestors,
                                  lists.l1, lists.l2, nullptr, std::nullopt)
                        .TakeValue();
    benchmark::DoNotOptimize(out.num_records);
    FreeRun(&lists.disk, &out).ok();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lists.InputRecords()));
}
BENCHMARK(BM_HierarchyAncestors)->Arg(4000)->Arg(16000);

void BM_HierarchyDescendantsAgg(benchmark::State& state) {
  OperandLists lists(static_cast<size_t>(state.range(0)));
  AggSelFilter f = ParseAggSelFilter("count($2)=max(count($2))").TakeValue();
  for (auto _ : state) {
    EntryList out = EvalHierarchy(&lists.disk, QueryOp::kDescendants,
                                  lists.l1, lists.l2, nullptr, f)
                        .TakeValue();
    benchmark::DoNotOptimize(out.num_records);
    FreeRun(&lists.disk, &out).ok();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lists.InputRecords()));
}
BENCHMARK(BM_HierarchyDescendantsAgg)->Arg(4000)->Arg(16000);

void BM_EmbeddedRefValueDn(benchmark::State& state) {
  OperandLists lists(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    EntryList out = EvalEmbeddedRef(&lists.disk, QueryOp::kValueDn,
                                    lists.l1, lists.l2, "ref", std::nullopt)
                        .TakeValue();
    benchmark::DoNotOptimize(out.num_records);
    FreeRun(&lists.disk, &out).ok();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lists.InputRecords()));
}
BENCHMARK(BM_EmbeddedRefValueDn)->Arg(4000)->Arg(16000);

struct DifFixture {
  SimDisk disk, scratch;
  DirectoryInstance inst;
  EntryStore store;
  DifFixture() : inst(Schema(), false) {
    gen::DifOptions opt;
    opt.num_orgs = 4;
    inst = gen::GenerateDif(opt);
    store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  }
};

void BM_FlagshipL3Query(benchmark::State& state) {
  DifFixture f;
  bench::EngineHarness h(&f.scratch, &f.store);
  QueryPtr q = ParseQuery(
                   "(dv (dc=com ? sub ? objectClass=SLADSAction)"
                   "    (g (vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
                   "           (& (dc=com ? sub ? sourcePort=25)"
                   "              (dc=com ? sub ? "
                   "objectClass=trafficProfile))"
                   "           SLATPRef)"
                   "       min(SLARulePriority)=min(min(SLARulePriority)))"
                   "    SLADSActRef)")
                   .TakeValue();
  for (auto _ : state) {
    std::vector<Entry> r = h.Entries(q);
    benchmark::DoNotOptimize(r.size());
  }
}
BENCHMARK(BM_FlagshipL3Query);

void BM_TopsResolve(benchmark::State& state) {
  DifFixture f;
  apps::TopsResolver resolver(&f.scratch, &f.store,
                              gen::MustDn("dc=sub0, dc=org0, dc=com"));
  int i = 0;
  for (auto _ : state) {
    apps::CallContext ctx{"", 900 + (i % 10) * 100, 1 + i % 7};
    auto r = resolver.Resolve("user" + std::to_string(i % 10), ctx);
    benchmark::DoNotOptimize(r.ok());
    ++i;
  }
}
BENCHMARK(BM_TopsResolve);

}  // namespace

BENCHMARK_MAIN();
