// E10 — the language hierarchy (Theorems 8.1 / 8.2) made operational.
//
// Expressiveness itself is a proof, not a measurement; what CAN be
// reproduced is (a) the classifier assigning each paper example its
// minimal language, (b) witness instances separating the operator
// families of Theorem 8.2, and (c) the paper's Example 4.1 cost argument:
// under LDAP the application must issue TWO queries and subtract on the
// client, shipping strictly more records than the single L0 query.

#include "bench_util.h"
#include "gen/dif_gen.h"
#include "gen/paper_data.h"
#include "query/parser.h"
#include "query/reference.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

void Classify() {
  std::printf("\nminimal language of the paper's examples (Thm 8.1):\n");
  const struct {
    const char* label;
    const char* text;
  } examples[] = {
      {"atomic", "(dc=att, dc=com ? sub ? surName=jagadish)"},
      {"Example 4.1", "(- (dc=att, dc=com ? sub ? surName=jagadish) "
                      "(dc=research, dc=att, dc=com ? sub ? "
                      "surName=jagadish))"},
      {"Example 5.1", "(c (dc=att, dc=com ? sub ? "
                      "objectClass=organizationalUnit) (dc=att, dc=com ? "
                      "sub ? surName=jagadish))"},
      {"Example 6.1", "(g (dc=research, dc=att, dc=com ? sub ? "
                      "objectClass=SLAPolicyRules) count(SLAPVPRef)>1)"},
      {"Example 6.2", "(c (dc=att, dc=com ? sub ? "
                      "objectClass=TOPSSubscriber) (dc=att, dc=com ? sub ? "
                      "objectClass=QHP) count($2)>10)"},
      {"Section 7 vd", "(vd (dc=att, dc=com ? sub ? "
                       "objectClass=SLAPolicyRules) (dc=att, dc=com ? sub "
                       "? objectClass=trafficProfile) SLATPRef)"},
  };
  for (const auto& ex : examples) {
    QueryPtr q = ParseQuery(ex.text).TakeValue();
    std::printf("  %-14s -> %s\n", ex.label,
                LanguageToString(q->MinimalLanguage()));
  }
}

void SeparationWitnesses() {
  std::printf(
      "\nTheorem 8.2 separation witnesses (operator families compute\n"
      "different result sets on the same instance):\n");
  DirectoryInstance inst = gen::PaperInstance();
  const char* q_pc =
      "(c (dc=com ? sub ? objectClass=dcObject) (dc=com ? sub ? "
      "objectClass=organizationalUnit))";
  const char* q_ad =
      "(d (dc=com ? sub ? objectClass=dcObject) (dc=com ? sub ? "
      "objectClass=organizationalUnit))";
  const char* q_adc =
      "(dc (dc=com ? sub ? objectClass=dcObject) (dc=com ? sub ? "
      "objectClass=organizationalUnit) (dc=com ? sub ? "
      "objectClass=dcObject))";
  auto count = [&](const char* text) {
    QueryPtr q = ParseQuery(text).TakeValue();
    return EvaluateReference(*q, inst).TakeValue().size();
  };
  size_t n_c = count(q_pc), n_d = count(q_ad), n_dc = count(q_adc);
  std::printf("  (c dcObject ou): %zu entries — children only\n", n_c);
  std::printf("  (d dcObject ou): %zu entries — any depth\n", n_d);
  std::printf("  (dc dcObject ou dcObject): %zu entries — path blocked\n",
              n_dc);
  std::printf("  pairwise distinct result sets: %s\n",
              (n_c != n_d && n_d != n_dc) ? "yes" : "NO (unexpected)");
}

void LdapWorkaroundCost() {
  std::printf(
      "\nExample 4.1 under LDAP vs L0 (records the client must receive):\n");
  std::printf("%10s | %12s %12s %12s | %s\n", "entries", "L0 result",
              "LDAP q1+q2", "overhead", "io(L0)/io(LDAP)");
  for (int scale : {1, 4, 16}) {
    gen::DifOptions opt;
    opt.num_orgs = 2 * scale;
    DirectoryInstance inst = gen::GenerateDif(opt);
    SimDisk disk;
    EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
    SimDisk scratch;
    EngineHarness h(&scratch, &store);

    // L0: the server evaluates the difference; the client receives only
    // the final result.
    QueryPtr l0 = ParseQuery(
                      "(- (dc=com ? sub ? objectClass=TOPSSubscriber)"
                      "   (dc=org0, dc=com ? sub ? "
                      "objectClass=TOPSSubscriber))")
                      .TakeValue();
    uint64_t before =
        disk.stats().TotalTransfers() + scratch.stats().TotalTransfers();
    std::vector<Entry> l0_result = h.Entries(l0);
    uint64_t io_l0 = disk.stats().TotalTransfers() +
                     scratch.stats().TotalTransfers() - before;

    // LDAP: two whole result sets cross to the application, which
    // subtracts locally.
    QueryPtr q1 =
        ParseQuery("(dc=com ? sub ? objectClass=TOPSSubscriber)")
            .TakeValue();
    QueryPtr q2 = ParseQuery(
                      "(dc=org0, dc=com ? sub ? objectClass=TOPSSubscriber)")
                      .TakeValue();
    before =
        disk.stats().TotalTransfers() + scratch.stats().TotalTransfers();
    std::vector<Entry> r1 = h.Entries(q1);
    std::vector<Entry> r2 = h.Entries(q2);
    uint64_t io_ldap = disk.stats().TotalTransfers() +
                       scratch.stats().TotalTransfers() - before;
    size_t shipped_ldap = r1.size() + r2.size();

    std::printf("%10zu | %12zu %12zu %11.1fx | %.2f\n", inst.size(),
                l0_result.size(), shipped_ldap,
                l0_result.empty()
                    ? 0.0
                    : static_cast<double>(shipped_ldap) / l0_result.size(),
                io_ldap > 0 ? static_cast<double>(io_l0) / io_ldap : 0.0);
  }
  std::printf("  (LDAP also pays two round trips and client-side set code;\n"
              "   the L0 difference runs as one linear server-side merge.)\n");
}

}  // namespace

int main() {
  PrintHeader("E10: expressiveness hierarchy (bench_expressiveness)",
              "Theorems 8.1/8.2 — strict hierarchy; LDAP workaround cost");
  Classify();
  SeparationWitnesses();
  LdapWorkaroundCost();
  return 0;
}
