// E11 — distributed evaluation (Sec. 8.3).
// Claims: only atomic sub-query RESULTS travel (not raw partitions); local
// queries touch one server; fleet size trades per-server I/O against
// message count; the coordinator's operator I/O is unchanged from the
// centralized case. The fleet runs behind Engine sessions — the same API
// every other bench drives.

#include "bench_util.h"
#include "engine/engine.h"
#include "gen/dif_gen.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

Engine MakeFleetEngine(
    const DirectoryInstance& global,
    const std::vector<std::pair<std::string, std::string>>& contexts) {
  EngineOptions opt;
  opt.backend = EngineBackend::kDistributed;
  opt.topology = TopologyConfig::FromContexts(contexts);
  return Engine(global, opt);
}

}  // namespace

int main() {
  PrintHeader("E11: distributed evaluation (bench_distributed)",
              "ship atomic results only; locality bounds fan-out");

  gen::DifOptions opt;
  opt.num_orgs = 4;
  opt.subdomains_per_org = 2;
  DirectoryInstance global = gen::GenerateDif(opt);
  std::printf("global directory: %zu entries\n", global.size());

  const struct {
    const char* label;
    std::vector<std::pair<std::string, std::string>> contexts;
  } fleets[] = {
      {"1 server", {{"dc=com", "s0"}}},
      {"1+4 servers (per-org delegation)",
       {{"dc=com", "root"},
        {"dc=org0, dc=com", "s0"},
        {"dc=org1, dc=com", "s1"},
        {"dc=org2, dc=com", "s2"},
        {"dc=org3, dc=com", "s3"}}},
      {"1+8 servers (per-subdomain delegation)",
       {{"dc=com", "root"},
        {"dc=sub0, dc=org0, dc=com", "d0"},
        {"dc=sub1, dc=org0, dc=com", "d1"},
        {"dc=sub2, dc=org1, dc=com", "d2"},
        {"dc=sub3, dc=org1, dc=com", "d3"},
        {"dc=sub4, dc=org2, dc=com", "d4"},
        {"dc=sub5, dc=org2, dc=com", "d5"},
        {"dc=sub6, dc=org3, dc=com", "d6"},
        {"dc=sub7, dc=org3, dc=com", "d7"},
        {"dc=org0, dc=com", "o0"},
        {"dc=org1, dc=com", "o1"},
        {"dc=org2, dc=com", "o2"},
        {"dc=org3, dc=com", "o3"}}},
  };

  const struct {
    const char* label;
    const char* text;
  } queries[] = {
      {"local (one subdomain)",
       "(dc=sub0, dc=org0, dc=com ? sub ? objectClass=QHP)"},
      {"global scan", "(dc=com ? sub ? objectClass=TOPSSubscriber)"},
      {"global L2",
       "(c (dc=com ? sub ? objectClass=TOPSSubscriber)"
       "   (dc=com ? sub ? objectClass=QHP) count($2)>=3)"},
      {"global L3",
       "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
       "    (& (dc=com ? sub ? sourcePort=25)"
       "       (dc=com ? sub ? objectClass=trafficProfile)) SLATPRef)"},
  };

  for (const auto& fleet_spec : fleets) {
    Engine engine = MakeFleetEngine(global, fleet_spec.contexts);
    DistributedDirectory* fleet = engine.fleet();
    Session session = engine.OpenSession();
    std::printf("\n== fleet: %s ==\n", fleet_spec.label);
    std::printf("%-24s %8s %8s %10s %10s | %12s %12s\n", "query", "results",
                "msgs", "recs_ship", "bytes_ship", "max_srv_io",
                "coord_io");
    for (const auto& qspec : queries) {
      fleet->ResetStats();
      QueryOutcome out = session.Run(qspec.text);
      if (!out.ok()) {
        std::printf("%-24s FAILED: %s\n", qspec.label,
                    out.status.ToString().c_str());
        continue;
      }
      uint64_t max_server_io = 0;
      for (const auto& s : fleet->servers()) {
        max_server_io =
            std::max(max_server_io, s->disk()->stats().TotalTransfers());
      }
      const NetStats& net = fleet->net_stats();
      std::printf("%-24s %8zu %8llu %10llu %10llu | %12llu %12llu\n",
                  qspec.label, out.entries.size(),
                  (unsigned long long)net.messages,
                  (unsigned long long)net.records_shipped,
                  (unsigned long long)net.bytes_shipped,
                  (unsigned long long)max_server_io,
                  (unsigned long long)fleet->coordinator_disk()
                      ->stats()
                      .TotalTransfers());
    }
  }
  // Query shipping vs. atomic-result shipping on a subtree-local L2 query.
  std::printf("\n== query shipping ablation (subtree-local L2 query) ==\n");
  std::printf("%-28s %8s %10s %10s\n", "mode", "msgs", "recs_ship",
              "coord_io");
  {
    Engine engine = MakeFleetEngine(global, {{"dc=com", "root"},
                                             {"dc=org0, dc=com", "s0"},
                                             {"dc=org1, dc=com", "s1"},
                                             {"dc=org2, dc=com", "s2"},
                                             {"dc=org3, dc=com", "s3"}});
    DistributedDirectory* fleet = engine.fleet();
    Session session = engine.OpenSession();
    const char* local_l2 =
        "(c (dc=org0, dc=com ? sub ? objectClass=TOPSSubscriber)"
        "   (dc=org0, dc=com ? sub ? objectClass=QHP) count($2)>=3)";
    for (bool shipping : {false, true}) {
      fleet->set_query_shipping(shipping);
      fleet->ResetStats();
      QueryOutcome out = session.Run(local_l2);
      const NetStats& net = fleet->net_stats();
      std::printf("%-28s %8llu %10llu %10llu   (%zu results)\n",
                  shipping ? "ship whole query" : "ship atomic results",
                  (unsigned long long)net.messages,
                  (unsigned long long)net.records_shipped,
                  (unsigned long long)fleet->coordinator_disk()
                      ->stats()
                      .TotalTransfers(),
                  out.entries.size());
    }
  }
  // Streaming vs. materialized scatter-gather merge on a global scan.
  std::printf("\n== merge ablation (global scan, 1+4 fleet) ==\n");
  std::printf("%-28s %10s %12s\n", "mode", "recs_ship", "coord_io");
  {
    Engine engine = MakeFleetEngine(global, fleets[1].contexts);
    DistributedDirectory* fleet = engine.fleet();
    Session session = engine.OpenSession();
    for (bool streaming : {false, true}) {
      fleet->set_streaming_merge(streaming);
      fleet->ResetStats();
      QueryOutcome out = session.Run(queries[1].text);
      const NetStats& net = fleet->net_stats();
      std::printf("%-28s %10llu %12llu   (%zu results)\n",
                  streaming ? "streaming k-way merge"
                            : "materialize then merge",
                  (unsigned long long)net.records_shipped,
                  (unsigned long long)fleet->coordinator_disk()
                      ->stats()
                      .TotalTransfers(),
                  out.entries.size());
    }
  }

  std::printf(
      "\nexpected: local queries contact 1 server regardless of fleet\n"
      "size; finer delegation shrinks max_srv_io (parallelism) at the\n"
      "price of more messages; records shipped equals the atomic result\n"
      "sizes, never the raw partition sizes; query shipping collapses a\n"
      "subtree-local query to one round trip carrying only the final\n"
      "result; the streaming merge halves coordinator I/O on fan-out\n"
      "scans (each record is written once, not copied then merged).\n");
  return 0;
}
