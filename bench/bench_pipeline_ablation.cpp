// E14 — pipelined sorted dataflow (Sec. 8.2).
// Claim: "since each operator gets sorted input lists, and computes a
// sorted output list, no additional sorting of the result of an
// intermediate operator is necessary". Ablation: an engine that does NOT
// maintain the invariant must externally re-sort every intermediate list,
// paying (N/B)·log(N/B) between operators.

#include "bench_util.h"
#include "exec/atomic.h"
#include "exec/boolean.h"
#include "exec/evaluator.h"
#include "exec/hierarchy.h"
#include "gen/dif_gen.h"
#include "gen/paper_data.h"
#include "storage/external_sort.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

// Re-sorts an entry list (what a sorted-order-oblivious engine would do
// between operators).
EntryList Resort(SimDisk* disk, EntryList list) {
  auto key_fn = [](std::string_view rec) {
    Result<std::string_view> key = PeekEntryKey(rec);
    return key.ok() ? *key : std::string_view();
  };
  ExternalSortOptions opts;
  opts.memory_budget = 64 * 1024;  // bounded memory, like the operators
  ExternalSorter sorter(disk, key_fn, opts);
  RunReader reader(disk, list);
  std::string rec;
  while (reader.Next(&rec).ValueOrDie()) {
    if (!sorter.Add(rec).ok()) break;
  }
  FreeRun(disk, &list).ok();
  return sorter.Finish().TakeValue();
}

// The 3-operator plan of Example 5.3, executed operator by operator.
// When `resort` is set, every intermediate list is re-sorted first.
uint64_t RunPlan(const EntryStore& store, SimDisk* scratch, bool resort) {
  SimDisk* d = scratch;
  uint64_t before = d->stats().TotalTransfers();
  Dn root = gen::MustDn("dc=com");
  auto atom = [&](const char* filter) {
    return EvalAtomic(d, store, root, Scope::kSub,
                      AtomicFilter::Parse(filter).TakeValue())
        .TakeValue();
  };
  EntryList dcs = atom("objectClass=dcObject");
  EntryList ports = atom("sourcePort=25");
  EntryList profiles = atom("objectClass=trafficProfile");
  EntryList dcs2 = atom("objectClass=dcObject");
  if (resort) {
    dcs = Resort(d, std::move(dcs));
    ports = Resort(d, std::move(ports));
    profiles = Resort(d, std::move(profiles));
    dcs2 = Resort(d, std::move(dcs2));
  }
  EntryList anded =
      EvalBoolean(d, QueryOp::kAnd, ports, profiles).TakeValue();
  if (resort) anded = Resort(d, std::move(anded));
  EntryList out = EvalHierarchy(d, QueryOp::kCoDescendants, dcs, anded,
                                &dcs2, std::nullopt)
                      .TakeValue();
  if (resort) out = Resort(d, std::move(out));
  uint64_t io = d->stats().TotalTransfers() - before;
  for (EntryList* l : {&dcs, &ports, &profiles, &dcs2, &anded, &out}) {
    FreeRun(d, l).ok();
  }
  return io;
}

}  // namespace

int main() {
  PrintHeader("E14: pipelined sorted dataflow ablation "
              "(bench_pipeline_ablation)",
              "Sec. 8.2 — no intermediate re-sorts needed");
  std::printf("%10s | %12s %14s %10s\n", "entries", "io(pipeline)",
              "io(+resorts)", "overhead");
  for (int scale : {1, 2, 4, 8, 16}) {
    gen::DifOptions opt;
    opt.num_orgs = 2 * scale;
    opt.profiles_per_domain = 12;
    DirectoryInstance inst = gen::GenerateDif(opt);
    SimDisk disk;
    EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
    SimDisk scratch1, scratch2;
    uint64_t io_pipe = RunPlan(store, &scratch1, /*resort=*/false);
    uint64_t io_sort = RunPlan(store, &scratch2, /*resort=*/true);
    std::printf("%10zu | %12llu %14llu %9.2fx\n", inst.size(),
                (unsigned long long)io_pipe, (unsigned long long)io_sort,
                io_pipe > 0 ? static_cast<double>(io_sort) / io_pipe : 0.0);
  }
  std::printf(
      "\nexpected: the re-sorting engine pays a growing constant-factor\n"
      "overhead (and would grow logarithmically once intermediates exceed\n"
      "the sort's memory budget); the pipeline never sorts.\n");
  return 0;
}
