// E12 — atomic query evaluation (Sec. 4.1).
// Claims: the reverse-DN-ordered store answers scoped atomic queries with
// range scans proportional to the subtree size, and the B-tree / trie /
// suffix-array indexes beat full scans for selective filters — "atomic
// queries can be evaluated efficiently", the premise every theorem builds
// on.

#include "bench_util.h"
#include "exec/atomic.h"
#include "gen/dif_gen.h"
#include "gen/paper_data.h"
#include "index/attr_index.h"

using namespace ndq;
using namespace ndq::bench;

int main() {
  PrintHeader("E12: atomic queries — scans, scopes and indexes "
              "(bench_atomic)",
              "scoped range scans + index-assisted selection");

  std::printf("\nscope locality (reads vs. subtree size):\n");
  std::printf("%10s %10s | %10s %10s %10s\n", "entries", "store_pgs",
              "rd(base)", "rd(one)", "rd(sub)");
  for (int scale : {1, 4, 16}) {
    gen::DifOptions opt;
    opt.num_orgs = 2 * scale;
    DirectoryInstance inst = gen::GenerateDif(opt);
    SimDisk disk;
    EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
    SimDisk scratch;
    Dn base = gen::MustDn("ou=userProfiles, dc=sub0, dc=org0, dc=com");
    AtomicFilter f = AtomicFilter::True();
    uint64_t reads[3];
    Scope scopes[3] = {Scope::kBase, Scope::kOne, Scope::kSub};
    for (int i = 0; i < 3; ++i) {
      disk.ResetStats();
      EntryList out =
          EvalAtomic(&scratch, store, base, scopes[i], f).TakeValue();
      reads[i] = disk.stats().page_reads;
      FreeRun(&scratch, &out).ok();
    }
    std::printf("%10zu %10llu | %10llu %10llu %10llu\n", inst.size(),
                (unsigned long long)store.num_pages(),
                (unsigned long long)reads[0], (unsigned long long)reads[1],
                (unsigned long long)reads[2]);
  }
  std::printf("  expected: reads track the subtree, not the directory.\n");

  std::printf("\nindex-assisted vs. full-scan selection (whole-forest "
              "scope):\n");
  std::printf("%-28s | %8s | %10s %10s %8s\n", "filter", "results",
              "rd(scan)", "rd(index)", "speedup");
  gen::DifOptions opt;
  opt.num_orgs = 16;
  DirectoryInstance inst = gen::GenerateDif(opt);
  SimDisk disk;
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  BufferPool pool(&disk, 512);
  IndexSpec spec;
  spec.int_attrs = {"priority", "SLARulePriority", "sourcePort"};
  spec.string_attrs = {"objectClass", "uid", "SourceAddress", "CANumber"};
  spec.dn_attrs = {"SLATPRef"};
  AttributeIndexes indexes =
      AttributeIndexes::Build(&pool, store, spec).TakeValue();
  SimDisk scratch;
  Dn root = gen::MustDn("dc=com");

  for (const char* filter_text :
       {"CANumber=9731000005", "uid=user7", "sourcePort=25",
        "SLARulePriority<=1", "priority>=3", "SourceAddress=204.*",
        "objectClass=SLADSAction", "objectClass=QHP"}) {
    AtomicFilter f = AtomicFilter::Parse(filter_text).TakeValue();
    disk.ResetStats();
    EntryList scan =
        EvalAtomic(&scratch, store, root, Scope::kSub, f).TakeValue();
    uint64_t rd_scan = disk.stats().page_reads;
    disk.ResetStats();
    Result<std::optional<Run>> via =
        indexes.EvalAtomic(&scratch, store, root, Scope::kSub, f);
    uint64_t rd_index = disk.stats().page_reads;
    size_t results = scan.num_records;
    FreeRun(&scratch, &scan).ok();
    if (via.ok() && via->has_value()) {
      std::printf("%-28s | %8zu | %10llu %10llu %7.1fx\n", filter_text,
                  results, (unsigned long long)rd_scan,
                  (unsigned long long)rd_index,
                  rd_index > 0 ? static_cast<double>(rd_scan) / rd_index
                               : 0.0);
      FreeRun(&scratch, &**via).ok();
    } else {
      std::printf("%-28s | %8zu | %10llu %10s %8s\n", filter_text, results,
                  (unsigned long long)rd_scan, "n/a", "-");
    }
  }
  std::printf(
      "  expected: selective filters (point lookups) win big via the\n"
      "  indexes; low-selectivity filters (objectClass=QHP) approach the\n"
      "  scan cost — the classic access-path trade-off.\n");
  return 0;
}
