// E16 — intra-query parallelism (bench_parallel).
// Claims: operand subtrees are independent, so with per-page transfer
// latency on the simulated disk, N threads overlap leaf scans for close to
// Nx wall-clock speedup on multi-operand plans — while the COUNTED page
// transfers (the theorems' currency) are unchanged; and a warm sorted-
// operand cache converts repeated leaf scans (~store pages) into list
// copies (~output pages) for a further multiplicative win.
//
// Emits BENCH_parallel.json (threads x cold/warm sweep) for EXPERIMENTS.md.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exec/trace.h"
#include "gen/dif_gen.h"
#include "query/parser.h"
#include "store/entry_store.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

constexpr uint32_t kLatencyMicros = 80;

// Multi-operand plans: 3-4 independent leaf subtrees each, the shapes
// whose operands the parallel evaluator forks. Every leaf is a SELECTIVE
// full-store scan (base dc=com, subtree scope): the scans dominate the
// plan's I/O and they are exactly the part that parallelizes, while the
// operator merges stay small.
const char* kPlanMix[] = {
    "(& (| (dc=com ? sub ? objectClass=SLADSAction)"
    "      (dc=com ? sub ? objectClass=policyValidityPeriod))"
    "   (- (dc=com ? sub ? objectClass=trafficProfile)"
    "      (dc=com ? sub ? sourcePort=25)))",
    "(dc (dc=com ? sub ? objectClass=dcObject)"
    "    (& (dc=com ? sub ? sourcePort=25)"
    "       (dc=com ? sub ? objectClass=trafficProfile))"
    "    (dc=com ? sub ? objectClass=dcObject))",
    "(- (| (dc=com ? sub ? objectClass=SLAPolicyRules)"
    "      (dc=com ? sub ? objectClass=SLADSAction))"
    "   (| (dc=com ? sub ? objectClass=policyValidityPeriod)"
    "      (dc=com ? sub ? sourcePort=25)))",
    "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
    "    (& (dc=com ? sub ? sourcePort=25)"
    "       (dc=com ? sub ? objectClass=trafficProfile))"
    "    SLATPRef)",
};

// Repeated-leaf workload: four queries over the SAME small set of leaves.
// Cold, every query re-scans dc=com (the whole store) per leaf; warm,
// each leaf is one cached-list copy (~output pages << store pages).
const char* kRepeatedLeaves[] = {
    "(& (dc=com ? sub ? objectClass=SLADSAction)"
    "   (dc=com ? sub ? objectClass=policyValidityPeriod))",
    "(- (dc=com ? sub ? objectClass=trafficProfile)"
    "   (dc=com ? sub ? sourcePort=25))",
    "(| (dc=com ? sub ? objectClass=SLADSAction)"
    "   (dc=com ? sub ? objectClass=trafficProfile))",
    "(c (dc=com ? sub ? objectClass=policyValidityPeriod)"
    "   (dc=com ? sub ? sourcePort=25))",
};

struct Workload {
  std::vector<QueryPtr> queries;
};

// Evaluates every query in `w` once through the engine session,
// accumulates theorem-bound violations, and returns wall-clock
// milliseconds.
double RunOnce(EngineHarness* h, const Workload& w, uint64_t* violations) {
  auto start = std::chrono::steady_clock::now();
  for (const QueryPtr& q : w.queries) {
    QueryOutcome out = h->Run(q);
    *violations += VerifyTheoremBounds(out.trace).size();
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

struct Measurement {
  size_t threads;
  double cold_ms;
  double warm_ms;
  uint64_t transfers_cold;
};

Measurement Measure(SimDisk* disk, const EntryStore& store,
                    const Workload& w, size_t threads,
                    uint64_t* violations) {
  Measurement m;
  m.threads = threads;
  EngineOptions options = EngineHarness::ColdOptions();
  options.exec.parallelism = threads;

  {  // Cold: no cache, every leaf re-scans the store.
    EngineHarness h(disk, &store, options);
    uint64_t before = disk->stats().TotalTransfers();
    m.cold_ms = RunOnce(&h, w, violations);
    m.transfers_cold = disk->stats().TotalTransfers() - before;
  }
  {  // Warm: one unmeasured pass fills the cache, then measure.
    EngineOptions warm = options;
    warm.cache_capacity_pages = 1 << 16;
    EngineHarness h(disk, &store, warm);
    RunOnce(&h, w, violations);
    m.warm_ms = RunOnce(&h, w, violations);
  }
  return m;
}

Workload Parse(const char* const* texts, size_t n) {
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.queries.push_back(ParseQuery(texts[i]).TakeValue());
  }
  return w;
}

void PrintSweep(const char* label, const std::vector<Measurement>& ms) {
  double base = ms.front().cold_ms;
  std::printf("\n== %s ==\n", label);
  std::printf("%8s %10s %10s %10s %10s %12s\n", "threads", "cold_ms",
              "speedup", "warm_ms", "speedup", "cold_pages");
  for (const Measurement& m : ms) {
    std::printf("%8zu %10.1f %9.2fx %10.1f %9.2fx %12llu\n", m.threads,
                m.cold_ms, base / m.cold_ms, m.warm_ms, base / m.warm_ms,
                static_cast<unsigned long long>(m.transfers_cold));
  }
}

void AppendSweepJson(FILE* f, const char* key,
                     const std::vector<Measurement>& ms) {
  double base = ms.front().cold_ms;
  std::fprintf(f, "  \"%s\": [\n", key);
  for (size_t i = 0; i < ms.size(); ++i) {
    const Measurement& m = ms[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"cold_ms\": %.1f, "
                 "\"cold_speedup\": %.2f, \"warm_ms\": %.1f, "
                 "\"warm_speedup\": %.2f, \"cold_pages\": %llu}%s\n",
                 m.threads, m.cold_ms, base / m.cold_ms, m.warm_ms,
                 base / m.warm_ms,
                 static_cast<unsigned long long>(m.transfers_cold),
                 i + 1 < ms.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
}

}  // namespace

int main() {
  PrintHeader("E16: intra-query parallelism (bench_parallel)",
              "threads overlap operand I/O stalls; a warm operand cache "
              "turns repeated scans into copies; counted pages unchanged");

  gen::DifOptions opt;
  opt.num_orgs = 6;
  opt.subdomains_per_org = 3;
  DirectoryInstance inst = gen::GenerateDif(opt);

  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  std::printf("directory: %zu entries, %zu store pages, %uus/page\n",
              inst.size(), disk.live_pages(), kLatencyMicros);
  // Latency goes on AFTER the bulk load: from here on, every page
  // transfer stalls the issuing thread (and only that thread).
  disk.set_transfer_latency_micros(kLatencyMicros);

  uint64_t violations = 0;
  const size_t sweep[] = {1, 2, 4, 8};

  Workload mix = Parse(kPlanMix, std::size(kPlanMix));
  std::vector<Measurement> mix_ms;
  for (size_t threads : sweep) {
    mix_ms.push_back(Measure(&disk, store, mix, threads, &violations));
  }
  PrintSweep("plan mix (independent operand subtrees)", mix_ms);

  Workload repeated = Parse(kRepeatedLeaves, std::size(kRepeatedLeaves));
  std::vector<Measurement> rep_ms;
  for (size_t threads : sweep) {
    rep_ms.push_back(Measure(&disk, store, repeated, threads, &violations));
  }
  PrintSweep("repeated leaves (operand cache)", rep_ms);

  // Counted I/O must be schedule-independent: the cold page totals of the
  // whole sweep agree at every thread count.
  bool io_stable = true;
  for (const auto& ms : {mix_ms, rep_ms}) {
    for (const Measurement& m : ms) {
      if (m.transfers_cold != ms.front().transfers_cold) io_stable = false;
    }
  }

  double mix4 = mix_ms.front().cold_ms / mix_ms[2].cold_ms;
  double warm4 = rep_ms.front().cold_ms / rep_ms[2].warm_ms;
  std::printf("\nplan-mix speedup @4 threads: %.2fx (target >= 2x) %s\n",
              mix4, mix4 >= 2.0 ? "PASS" : "FAIL");
  std::printf("repeated-leaf warm speedup @4 threads: %.2fx (target >= 5x) "
              "%s\n",
              warm4, warm4 >= 5.0 ? "PASS" : "FAIL");
  std::printf("theorem-bound violations: %llu %s\n",
              static_cast<unsigned long long>(violations),
              violations == 0 ? "PASS" : "FAIL");
  std::printf("counted pages stable across thread counts: %s\n",
              io_stable ? "PASS" : "FAIL");

  FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"experiment\": \"bench_parallel\",\n");
    std::fprintf(f, "  \"entries\": %zu,\n", inst.size());
    std::fprintf(f, "  \"page_latency_us\": %u,\n", kLatencyMicros);
    AppendSweepJson(f, "plan_mix", mix_ms);
    std::fprintf(f, ",\n");
    AppendSweepJson(f, "repeated_leaf", rep_ms);
    std::fprintf(f, ",\n");
    std::fprintf(f, "  \"theorem_violations\": %llu,\n",
                 static_cast<unsigned long long>(violations));
    std::fprintf(f, "  \"counted_pages_stable\": %s\n",
                 io_stable ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_parallel.json\n");
  }
  return 0;
}
