// E5/E6 — aggregate selection (Theorems 6.1 and 6.2; Fig. 6).
// Claims: simple aggregate selection "(g L AS)" needs at most two scans of
// the input; structural aggregate selection (ComputeHSAgg*) keeps the
// linear I/O of the plain hierarchy operators for every distributive /
// algebraic aggregate, including the two-phase entry-set aggregates like
// count($2)=max(count($2)).

#include "bench_util.h"
#include "exec/evaluator.h"
#include "exec/hierarchy.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

uint64_t MeasureSimple(OperandLists* lists, const char* filter_text) {
  AggSelFilter f = ParseAggSelFilter(filter_text).TakeValue();
  uint64_t before = lists->disk.stats().TotalTransfers();
  EntryList out = EvalSimpleAgg(&lists->disk, lists->l1, f).TakeValue();
  uint64_t io = lists->disk.stats().TotalTransfers() - before;
  FreeRun(&lists->disk, &out).ok();
  return io;
}

uint64_t MeasureStructural(OperandLists* lists, QueryOp op,
                           const char* filter_text) {
  AggSelFilter f = ParseAggSelFilter(filter_text).TakeValue();
  uint64_t before = lists->disk.stats().TotalTransfers();
  EntryList out = EvalHierarchy(&lists->disk, op, lists->l1, lists->l2,
                                nullptr, f)
                      .TakeValue();
  uint64_t io = lists->disk.stats().TotalTransfers() - before;
  FreeRun(&lists->disk, &out).ok();
  return io;
}

}  // namespace

int main() {
  PrintHeader("E5: simple aggregate selection (bench_aggregate)",
              "Theorem 6.1 — <= 2 scans of L + output, linear I/O");
  std::printf("%10s %9s | %12s %18s | %s\n", "entries", "l1_pages",
              "io(count>1)", "io(min=min(min))", "io/l1_pages");
  {
    std::vector<uint64_t> xs, ys;
    for (size_t n : {4000, 8000, 16000, 32000, 64000}) {
      OperandLists lists(n);
      uint64_t io1 = MeasureSimple(&lists, "count(x)>1");
      uint64_t io2 = MeasureSimple(&lists, "min(x)=min(min(x))");
      std::printf("%10zu %9llu | %12llu %18llu | %.2f\n", n,
                  (unsigned long long)lists.l1.pages.size(),
                  (unsigned long long)io1, (unsigned long long)io2,
                  static_cast<double>(io2) / lists.l1.pages.size());
      xs.push_back(lists.l1.pages.size());
      ys.push_back(io2);
    }
    PrintGrowth(xs, ys, "io(entry-set agg)");
  }

  PrintHeader("E6: structural aggregate selection (bench_aggregate)",
              "Theorem 6.2 / Fig. 6 — ComputeHSAgg linear for all "
              "aggregates");
  const struct {
    const char* label;
    QueryOp op;
    const char* filter;
  } cases[] = {
      {"d + count($2)>3", QueryOp::kDescendants, "count($2)>3"},
      {"a + min($2.x)<5", QueryOp::kAncestors, "min($2.x)<5"},
      {"c + sum($2.x)>=10", QueryOp::kChildren, "sum($2.x)>=10"},
      {"p + average($2.x)<=9", QueryOp::kParents, "average($2.x)<=9"},
      {"d + count($2)=max(count($2))", QueryOp::kDescendants,
       "count($2)=max(count($2))"},
      {"a + min($2.x)=min(min($2.x))", QueryOp::kAncestors,
       "min($2.x)=min(min($2.x))"},
  };
  for (const auto& c : cases) {
    std::printf("\n%s\n", c.label);
    std::printf("%10s %9s | %10s %12s\n", "entries", "in_pages", "io",
                "io/in_pages");
    std::vector<uint64_t> xs, ys;
    for (size_t n : {4000, 8000, 16000, 32000}) {
      OperandLists lists(n);
      uint64_t io = MeasureStructural(&lists, c.op, c.filter);
      uint64_t in_pages =
          lists.l1.pages.size() + lists.l2.pages.size();
      std::printf("%10zu %9llu | %10llu %12.2f\n", n,
                  (unsigned long long)in_pages, (unsigned long long)io,
                  static_cast<double>(io) / in_pages);
      xs.push_back(in_pages);
      ys.push_back(io);
    }
    PrintGrowth(xs, ys, "io");
  }
  std::printf("\nexpected: ~2x io per 2x input everywhere (linear); the\n"
              "entry-set variants add one extra linear scan, not a sort.\n");
  return 0;
}
