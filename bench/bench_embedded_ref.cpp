// E7 — embedded-reference operators (Fig. 3, Theorem 7.1).
// Claims: ComputeERAggVD/DV cost O(|L1|/B + (|L2|/B)·m·log((|L2|/B)·m))
// page I/Os — the sort of the flattened pair list is the only super-linear
// step — while the straightforward per-entry rescan of L2 is quadratic.

#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "exec/embedded_ref.h"
#include "exec/naive.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

uint64_t MeasureSortMerge(OperandLists* lists, QueryOp op) {
  uint64_t before = lists->disk.stats().TotalTransfers();
  EntryList out = EvalEmbeddedRef(&lists->disk, op, lists->l1, lists->l2,
                                  "ref", std::nullopt)
                      .TakeValue();
  uint64_t io = lists->disk.stats().TotalTransfers() - before;
  FreeRun(&lists->disk, &out).ok();
  return io;
}

uint64_t MeasureNaive(OperandLists* lists, QueryOp op) {
  uint64_t before = lists->disk.stats().TotalTransfers();
  EntryList out =
      NaiveEmbeddedRef(&lists->disk, op, lists->l1, lists->l2, "ref")
          .TakeValue();
  uint64_t io = lists->disk.stats().TotalTransfers() - before;
  FreeRun(&lists->disk, &out).ok();
  return io;
}

void Sweep(QueryOp op) {
  std::printf("\noperator %s\n", QueryOpToString(op));
  std::printf("%10s %9s | %12s %14s | %10s %11s\n", "entries", "in_pages",
              "io(sort)", "io/(P log P)", "io(naive)", "naive/sort");
  std::vector<uint64_t> xs, ys;
  for (size_t n : {1000, 2000, 4000, 8000, 16000}) {
    OperandLists lists(n);
    uint64_t io = MeasureSortMerge(&lists, op);
    uint64_t naive_io = n <= 2000 ? MeasureNaive(&lists, op) : 0;
    uint64_t in_pages = lists.l1.pages.size() + lists.l2.pages.size();
    double plogp =
        in_pages * std::max(1.0, std::log2(static_cast<double>(in_pages)));
    std::printf("%10zu %9llu | %12llu %14.3f |", n,
                (unsigned long long)in_pages, (unsigned long long)io,
                io / plogp);
    if (naive_io > 0) {
      std::printf(" %10llu %10.1fx\n", (unsigned long long)naive_io,
                  static_cast<double>(naive_io) / io);
    } else {
      std::printf(" %10s %11s\n", "-", "-");
    }
    xs.push_back(in_pages);
    ys.push_back(io);
  }
  PrintGrowth(xs, ys, "io(sort-merge)");
}

}  // namespace

int main() {
  PrintHeader("E7: embedded-reference operator I/O (bench_embedded_ref)",
              "Theorem 7.1 — N log N for vd/dv; naive rescans quadratic");
  Sweep(QueryOp::kValueDn);
  Sweep(QueryOp::kDnValue);
  // Aggregate-selection variant of Fig. 3 exactly:
  // dv with count($2)=max(count($2)).
  std::printf("\ndv with count($2)=max(count($2)) (Fig. 3 verbatim)\n");
  std::printf("%10s %9s | %10s\n", "entries", "in_pages", "io");
  for (size_t n : {2000, 8000, 32000}) {
    OperandLists lists(n);
    AggSelFilter f =
        ParseAggSelFilter("count($2)=max(count($2))").TakeValue();
    uint64_t before = lists.disk.stats().TotalTransfers();
    EntryList out = EvalEmbeddedRef(&lists.disk, QueryOp::kDnValue,
                                    lists.l1, lists.l2, "ref", f)
                        .TakeValue();
    uint64_t io = lists.disk.stats().TotalTransfers() - before;
    FreeRun(&lists.disk, &out).ok();
    std::printf("%10zu %9llu | %10llu\n", n,
                (unsigned long long)(lists.l1.pages.size() +
                                     lists.l2.pages.size()),
                (unsigned long long)io);
  }
  std::printf(
      "\nexpected: io(sort) slightly super-linear (~2.0-2.3x per 2x input,\n"
      "io/(P log P) roughly flat); io(naive) ~4x per 2x input.\n");
  return 0;
}
