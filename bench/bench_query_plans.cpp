// E8/E9 — whole-query evaluation (Theorems 8.3 and 8.4).
// Claims: an L2 query tree evaluates bottom-up in O(|Q|·|L|/B) page I/Os
// with constant main memory, where |L| is the cumulative size of the
// atomic sub-query outputs; an L3 query adds only the pair-list sorts
// (N log N). Main memory is constant by construction: every operator uses
// single-page stream buffers plus fixed-size spillable-stack windows,
// independent of directory size.

#include "bench_util.h"
#include "exec/trace.h"
#include "gen/dif_gen.h"
#include "gen/paper_data.h"
#include "query/parser.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

// Example 5.3's shape: which subnets specify SMTP traffic profiles.
const char* kL2Query =
    "(dc (dc=com ? sub ? objectClass=dcObject)"
    "    (& (dc=com ? sub ? sourcePort=25)"
    "       (dc=com ? sub ? objectClass=trafficProfile))"
    "    (dc=com ? sub ? objectClass=dcObject))";

// Example 6.2's shape with aggregation.
const char* kL2AggQuery =
    "(c (dc=com ? sub ? objectClass=TOPSSubscriber)"
    "   (dc=com ? sub ? objectClass=QHP) count($2)>=3)";

// The Section 7 flagship (L3).
const char* kL3Query =
    "(dv (dc=com ? sub ? objectClass=SLADSAction)"
    "    (g (vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
    "           (& (dc=com ? sub ? sourcePort=25)"
    "              (dc=com ? sub ? objectClass=trafficProfile))"
    "           SLATPRef)"
    "       min(SLARulePriority)=min(min(SLARulePriority)))"
    "    SLADSActRef)";

void Sweep(const char* label, const char* text) {
  QueryPtr q = ParseQuery(text).TakeValue();
  std::printf("\n%s  [%s, |Q|=%zu nodes]\n", label,
              LanguageToString(q->MinimalLanguage()), q->NodeCount());
  std::printf("%10s %10s %8s | %10s %10s | %10s %8s\n", "entries",
              "|L| recs", "results", "io(query)", "io/|L|pgs", "store pgs",
              "bounds");
  size_t violations = 0;
  for (int scale : {1, 2, 4, 8, 16}) {
    gen::DifOptions opt;
    opt.num_orgs = 2 * scale;
    opt.subdomains_per_org = 2;
    DirectoryInstance inst = gen::GenerateDif(opt);
    SimDisk disk;
    EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
    SimDisk scratch;
    EngineHarness h(&scratch, &store);
    uint64_t before =
        disk.stats().TotalTransfers() + scratch.stats().TotalTransfers();
    QueryOutcome out = h.Run(q);
    uint64_t io = disk.stats().TotalTransfers() +
                  scratch.stats().TotalTransfers() - before;
    const std::vector<Entry>& result = out.entries;
    // Every operator must stay within its paper I/O theorem (exec/trace.h).
    std::vector<std::string> bad = VerifyTheoremBounds(out.trace);
    violations += bad.size();
    // |L| = cumulative atomic sub-query output (Theorem 8.3's input size).
    uint64_t l_records = h.engine.eval_stats().atomic_output_records;
    double l_pages = static_cast<double>(l_records) / 40.0;  // ~40/page
    std::printf("%10zu %10llu %8zu | %10llu %10.2f | %10llu %8s\n",
                inst.size(), (unsigned long long)l_records, result.size(),
                (unsigned long long)io, l_pages > 0 ? io / l_pages : 0.0,
                (unsigned long long)store.num_pages(),
                bad.empty() ? "ok" : "FAIL");
    for (const std::string& v : bad) {
      std::printf("    BOUND VIOLATION: %s\n", v.c_str());
    }
  }
  if (violations > 0) {
    std::printf("  ** %zu theorem-bound violation(s) above **\n", violations);
  }
}

}  // namespace

int main() {
  PrintHeader("E8: whole L2 query plans (bench_query_plans)",
              "Theorem 8.3 — I/O linear in |Q|·|L|/B, constant memory");
  Sweep("Example 5.3 (pure L1/L2 plan)", kL2Query);
  Sweep("Example 6.2 (structural aggregate plan)", kL2AggQuery);

  PrintHeader("E9: whole L3 query plans (bench_query_plans)",
              "Theorem 8.4 — N log N via the embedded-reference sorts");
  Sweep("Section 7 flagship (vd/dv plan)", kL3Query);

  std::printf(
      "\nmemory note: every operator holds single-page buffers plus a\n"
      "fixed spill window (default %zu stack items), independent of the\n"
      "directory size — the constant-memory claim of Theorems 8.3/8.4.\n",
      ExecOptions().stack_window);
  return 0;
}
