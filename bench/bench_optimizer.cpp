// E20 — the cost-based optimizer (src/query/optimize.h).
// Claims: on an adversarially-ordered plan mix (expensive operands first,
// provably-empty operands buried in &/|/- chains, filters sitting above
// hierarchy selections), turning the optimizer on (a) cuts total page
// transfers >= 1.3x, (b) returns byte-identical results, (c) keeps every
// trace inside the paper's theorem bounds, and (d) SHRINKS the gap
// between estimated and measured pages — the estimator fixes (kOne
// direct-child counts, clamped |, audited agg passes, histogram-backed
// leaves) are what make the plan choices trustworthy.
//
// Emits BENCH_optimizer.json for EXPERIMENTS.md.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/cost.h"
#include "exec/trace.h"
#include "gen/dif_gen.h"
#include "query/optimize.h"
#include "query/parser.h"
#include "query/rewrite.h"
#include "storage/serde.h"
#include "store/entry_store.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

constexpr double kMinSpeedup = 1.3;

// Adversarial mix: every plan is written in the worst reasonable operand
// order, the shape a naive frontend (or the paper's Sec. 8 rewriter
// alone) would ship.
const struct {
  const char* label;
  const char* text;
} kMix[] = {
    {"expensive-first & chain",
     "(& (dc=com ? sub ? objectClass=*)"
     "   (& (dc=com ? sub ? sourcePort=25)"
     "      (dc=org0, dc=com ? sub ? objectClass=QHP)))"},
    {"diff of empty left",
     "(- (dc=com ? sub ? nosuchattr=zzz)"
     "   (dc=com ? sub ? objectClass=*))"},
    {"diff minus empty right",
     "(- (dc=org0, dc=com ? sub ? objectClass=QHP)"
     "   (dc=com ? sub ? nosuchattr=zzz))"},
    {"filter above hierarchy",
     "(& (dc=org0, dc=com ? sub ? objectClass=QHP)"
     "   (c (dc=com ? sub ? objectClass=*)"
     "      (dc=com ? sub ? objectClass=TOPSSubscriber)))"},
    {"union with empty subtree arm",
     "(| (dc=org0, dc=com ? sub ? objectClass=QHP)"
     "   (dc=nowhere, dc=com ? sub ? objectClass=*))"},
    {"aggregate over empty operand",
     "(g (dc=com ? sub ? nosuchattr=zzz) count(objectClass)>=1)"},
};

struct ModeResult {
  uint64_t pages = 0;       // measured transfers across the whole mix
  double est_pages = 0;     // summed model estimates for the shipped plans
  double gap = 0;           // sum over plans of |est - actual| / max(1, actual)
  uint64_t violations = 0;  // theorem-bound violations across traces
  uint64_t rewrites = 0;    // optimizer rewrites applied (0 when off)
  std::vector<std::string> digests;
};

ModeResult RunMode(bool optimize, const DirectoryInstance& inst) {
  ModeResult r;
  SimDisk disk(4096);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();

  EngineOptions opts = EngineHarness::ColdOptions();
  opts.rewrite = true;  // the optimizer runs downstream of the rewriter
  opts.optimize = optimize;
  EngineHarness h(&disk, &store, opts);

  for (const auto& plan : kMix) {
    QueryPtr q = ParseQuery(plan.text).TakeValue();
    // The estimate the engine would quote for the plan it actually runs.
    QueryPtr shipped = RewriteQuery(q);
    if (optimize) shipped = OptimizeQuery(store, shipped).plan;
    double est = EstimateCost(store, *shipped).TotalPages();

    IoStats before = disk.stats();
    QueryOutcome out = h.Run(q);
    uint64_t actual = (disk.stats() - before).TotalTransfers();

    r.pages += actual;
    r.est_pages += est;
    r.gap += std::fabs(est - static_cast<double>(actual)) /
             std::max<double>(1.0, static_cast<double>(actual));
    std::vector<std::string> bad = VerifyTheoremBounds(out.trace);
    for (const std::string& v : bad) {
      std::fprintf(stderr, "bound violation [%s, optimize=%d]: %s\n",
                   plan.label, optimize ? 1 : 0, v.c_str());
    }
    r.violations += bad.size();
    r.rewrites += out.optimizer.Total();
    std::string digest;
    for (const Entry& e : out.entries) SerializeEntry(e, &digest);
    r.digests.push_back(std::move(digest));
  }
  return r;
}

}  // namespace

int main() {
  PrintHeader("E20: cost-based optimizer (bench_optimizer)",
              "adversarial plan mix speeds up >= 1.3x with byte-identical "
              "results, intact theorem bounds, and a smaller est-vs-actual "
              "page gap");

  const size_t sweep[] = {4, 8, 16};  // DIF num_orgs
  bool identical = true;
  bool gap_shrinks = true;
  uint64_t violations = 0;
  double worst_speedup = 1e9;

  std::printf("%8s %10s %10s %8s | %9s %9s | %8s\n", "entries", "pages(off)",
              "pages(on)", "speedup", "gap(off)", "gap(on)", "rewrites");
  FILE* f = std::fopen("BENCH_optimizer.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"experiment\": \"bench_optimizer\",\n");
    std::fprintf(f, "  \"sweep\": [\n");
  }
  for (size_t i = 0; i < 3; ++i) {
    gen::DifOptions opt;
    opt.num_orgs = sweep[i];
    DirectoryInstance inst = gen::GenerateDif(opt);
    ModeResult off = RunMode(false, inst);
    ModeResult on = RunMode(true, inst);

    double speedup = on.pages > 0
                         ? static_cast<double>(off.pages) / on.pages
                         : 0.0;
    worst_speedup = std::min(worst_speedup, speedup);
    violations += off.violations + on.violations;
    if (off.digests != on.digests) identical = false;
    if (on.gap > off.gap) gap_shrinks = false;

    std::printf("%8zu %10llu %10llu %7.2fx | %9.2f %9.2f | %8llu\n",
                inst.size(), static_cast<unsigned long long>(off.pages),
                static_cast<unsigned long long>(on.pages), speedup, off.gap,
                on.gap, static_cast<unsigned long long>(on.rewrites));
    if (f != nullptr) {
      std::fprintf(f,
                   "    {\"entries\": %zu, \"pages_off\": %llu, "
                   "\"pages_on\": %llu, \"est_pages_off\": %.1f, "
                   "\"est_pages_on\": %.1f, \"gap_off\": %.3f, "
                   "\"gap_on\": %.3f, \"rewrites\": %llu}%s\n",
                   inst.size(), static_cast<unsigned long long>(off.pages),
                   static_cast<unsigned long long>(on.pages), off.est_pages,
                   on.est_pages, off.gap, on.gap,
                   static_cast<unsigned long long>(on.rewrites),
                   i + 1 < 3 ? "," : "");
    }
  }

  bool fast_ok = worst_speedup >= kMinSpeedup;
  std::printf("\nworst speedup: %.2fx (target >= %.2fx) %s\n", worst_speedup,
              kMinSpeedup, fast_ok ? "PASS" : "FAIL");
  std::printf("results byte-identical on/off: %s\n",
              identical ? "PASS" : "FAIL");
  std::printf("est-vs-actual gap shrinks: %s\n",
              gap_shrinks ? "PASS" : "FAIL");
  std::printf("theorem-bound violations: %llu %s\n",
              static_cast<unsigned long long>(violations),
              violations == 0 ? "PASS" : "FAIL");

  if (f != nullptr) {
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"worst_speedup\": %.3f,\n", worst_speedup);
    std::fprintf(f, "  \"min_speedup\": %.2f,\n", kMinSpeedup);
    std::fprintf(f, "  \"results_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"gap_shrinks\": %s,\n", gap_shrinks ? "true" : "false");
    std::fprintf(f, "  \"theorem_violations\": %llu\n",
                 static_cast<unsigned long long>(violations));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_optimizer.json\n");
  }
  return (fast_ok && identical && gap_shrinks && violations == 0) ? 0 : 1;
}
