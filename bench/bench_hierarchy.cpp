// E2/E3/E4 — stack-based hierarchical selection (Figs. 2, 4, 5;
// Theorem 5.1).
// Claims: ComputeHSPC / ComputeHSAD / ComputeHSADc run in O((|L1|+|L2|
// [+|L3|])/B) page I/Os; the straightforward per-entry witness test is
// quadratic; the stack algorithms win by orders of magnitude past small
// inputs.

#include "bench_util.h"
#include "exec/hierarchy.h"
#include "exec/naive.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

uint64_t MeasureStack(OperandLists* lists, QueryOp op, bool constrained) {
  uint64_t before = lists->disk.stats().TotalTransfers();
  EntryList out =
      EvalHierarchy(&lists->disk, op, lists->l1, lists->l2,
                    constrained ? &lists->l3 : nullptr, std::nullopt)
          .TakeValue();
  uint64_t io = lists->disk.stats().TotalTransfers() - before;
  FreeRun(&lists->disk, &out).ok();
  return io;
}

uint64_t MeasureNaive(OperandLists* lists, QueryOp op, bool constrained) {
  uint64_t before = lists->disk.stats().TotalTransfers();
  EntryList out = NaiveHierarchy(&lists->disk, op, lists->l1, lists->l2,
                                 constrained ? &lists->l3 : nullptr)
                      .TakeValue();
  uint64_t io = lists->disk.stats().TotalTransfers() - before;
  FreeRun(&lists->disk, &out).ok();
  return io;
}

void Sweep(QueryOp op, bool constrained, bool with_naive) {
  std::printf("\noperator %s (%s)\n", QueryOpToString(op),
              constrained ? "Fig. 5 / ComputeHSADc"
                          : "Figs. 2+4 / ComputeHSPC+HSAD");
  std::printf("%10s %9s | %10s %14s | %10s %10s\n", "entries", "in_pages",
              "io(stack)", "io/in_pages", "io(naive)", "naive/stack");
  std::vector<uint64_t> xs, ys, yn;
  for (size_t n : {2000, 4000, 8000, 16000, 32000}) {
    OperandLists lists(n);
    uint64_t io = MeasureStack(&lists, op, constrained);
    uint64_t naive_io = 0;
    if (with_naive && n <= 8000) {
      naive_io = MeasureNaive(&lists, op, constrained);
    }
    uint64_t in_pages = lists.InputPages();
    std::printf("%10zu %9llu | %10llu %14.2f |", n,
                (unsigned long long)in_pages, (unsigned long long)io,
                static_cast<double>(io) / in_pages);
    if (naive_io > 0) {
      std::printf(" %10llu %10.1fx\n", (unsigned long long)naive_io,
                  static_cast<double>(naive_io) / io);
    } else {
      std::printf("%10s %10s\n", "-", "-");
    }
    xs.push_back(in_pages);
    ys.push_back(io);
    if (naive_io > 0) yn.push_back(naive_io);
  }
  PrintGrowth(xs, ys, "io(stack)");
  if (yn.size() > 1) {
    std::vector<uint64_t> xn(xs.begin(), xs.begin() + yn.size());
    PrintGrowth(xn, yn, "io(naive)");
  }
}

}  // namespace

int main() {
  PrintHeader("E2/E3/E4: hierarchical selection I/O (bench_hierarchy)",
              "stack algorithms linear; naive witness test quadratic");
  Sweep(QueryOp::kParents, false, true);
  Sweep(QueryOp::kChildren, false, true);
  Sweep(QueryOp::kAncestors, false, true);
  Sweep(QueryOp::kDescendants, false, true);
  Sweep(QueryOp::kCoAncestors, true, true);
  Sweep(QueryOp::kCoDescendants, true, true);
  std::printf(
      "\nexpected: io(stack) ~2x per 2x input (linear; descendant-direction"
      "\nops carry a constant-factor overhead for the reversal scans);"
      "\nio(naive) ~4x per 2x input (quadratic).\n");
  return 0;
}
