// E18 — online mutations through the engine (bench_mutations).
// Claim: the epoch-guarded write path makes the directory ONLINE — point
// mutations land through Session::Apply at memtable speed while queries
// keep evaluating against pinned snapshots, and durability (WAL +
// fsync-on-commit) costs a bounded constant factor on the write path, not
// a redesign of the read path.
//
// Measures: bulk load and steady-state mutation throughput through
// Session::Apply; query throughput with and without a concurrent writer;
// the durable-vs-volatile write amplification; and crash-recovery wall
// time. Emits BENCH_mutations.json for EXPERIMENTS.md.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/dn.h"
#include "gen/random_forest.h"
#include "store/directory_store.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

constexpr size_t kEntries = 2000;
constexpr size_t kBatchSize = 64;
constexpr int kSteadyOps = 4000;
constexpr int kDurableOps = 600;

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double OpsPerSec(double ops, double ms) {
  return ms > 0 ? 1000.0 * ops / ms : 0.0;
}

// RandomForest generates schema-less instances; declare what it emits
// (rdn attrs, x, tag, ref, two classes per entry) plus the bench's own
// revision counter so the engine-owned store can validate.
Schema BenchSchema(int num_classes) {
  Schema schema;
  auto must = [](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "schema: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  must(schema.AddAttribute("dc", TypeKind::kString));
  must(schema.AddAttribute("ou", TypeKind::kString));
  must(schema.AddAttribute("cn", TypeKind::kString));
  must(schema.AddAttribute("tag", TypeKind::kString));
  must(schema.AddAttribute("x", TypeKind::kInt));
  must(schema.AddAttribute("ref", TypeKind::kDn));
  must(schema.AddAttribute("benchrev", TypeKind::kInt));
  const std::vector<std::string> attrs = {"dc", "ou",  "cn",      "tag",
                                          "x",  "ref", "benchrev"};
  for (int i = 0; i < num_classes; ++i) {
    must(schema.AddClass("class" + std::to_string(i), attrs));
  }
  return schema;
}

// Entries with no descendants: safe to Remove and re-Add.
std::vector<Entry> Leaves(const DirectoryInstance& inst) {
  std::vector<Entry> leaves;
  for (auto it = inst.begin(); it != inst.end(); ++it) {
    auto next = std::next(it);
    if (next == inst.end() || !KeyIsAncestor(it->first, next->first)) {
      leaves.push_back(it->second);
    }
  }
  return leaves;
}

}  // namespace

int main() {
  PrintHeader("E18: online mutations (bench_mutations)",
              "mutations land at memtable speed while queries read pinned "
              "snapshots; WAL durability is a constant-factor write cost");

  gen::RandomForestOptions fopt;
  fopt.seed = 11;
  fopt.num_entries = kEntries;
  DirectoryInstance inst = gen::RandomForest(fopt);
  std::vector<Entry> leaves = Leaves(inst);
  std::printf("directory: %zu entries (%zu leaves)\n", inst.size(),
              leaves.size());

  EngineOptions eopt;
  eopt.exec.parallelism = 3;
  Engine engine(BenchSchema(3), eopt);
  Session session = engine.OpenSession();

  // --- 1. Bulk load through Session::Apply --------------------------------
  double load_ms;
  {
    auto start = std::chrono::steady_clock::now();
    UpdateBatch batch;
    size_t applied = 0;
    for (const auto& [key, entry] : inst) {
      (void)key;
      batch.Put(entry);
      if (batch.size() == kBatchSize) {
        UpdateResult res = session.Apply(batch);
        if (!res.ok()) {
          std::fprintf(stderr, "load failed: %s\n",
                       res.status.ToString().c_str());
          return 1;
        }
        applied += res.applied;
        batch.ops.clear();
      }
    }
    if (!batch.empty()) {
      UpdateResult res = session.Apply(batch);
      if (!res.ok()) {
        std::fprintf(stderr, "load failed: %s\n",
                     res.status.ToString().c_str());
        return 1;
      }
      applied += res.applied;
    }
    load_ms = MillisSince(start);
    if (applied != inst.size()) {
      std::fprintf(stderr, "load applied %zu != %zu\n", applied, inst.size());
      return 1;
    }
  }
  std::printf("bulk load: %zu puts in %.1f ms (%.0f ops/s)\n", inst.size(),
              load_ms, OpsPerSec(static_cast<double>(inst.size()), load_ms));

  // --- 2. Steady-state point mutations ------------------------------------
  double steady_ms;
  {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSteadyOps; ++i) {
      const Entry& leaf = leaves[i % leaves.size()];
      UpdateBatch batch;
      if (i % 3 == 2) {
        batch.Remove(leaf.dn());
        batch.ops.push_back(UpdateOp::Add(leaf));
      } else {
        Entry e = leaf;
        e.AddInt("benchrev", i);
        batch.Put(e);
      }
      UpdateResult res = session.Apply(batch);
      if (!res.ok()) {
        std::fprintf(stderr, "mutation %d failed: %s\n", i,
                     res.status.ToString().c_str());
        return 1;
      }
    }
    steady_ms = MillisSince(start);
  }
  double steady_ops = OpsPerSec(kSteadyOps, steady_ms);
  std::printf("steady-state: %d mutation batches in %.1f ms (%.0f ops/s)\n",
              kSteadyOps, steady_ms, steady_ops);

  // --- 3. Query throughput, idle vs concurrent writer ---------------------
  const std::string query = "(dc=n0 ? sub ? objectClass=class0)";
  auto measure_queries = [&](int n) -> double {
    Session reader = engine.OpenSession();
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) {
      QueryOutcome out = reader.Run(query);
      if (!out.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     out.status.ToString().c_str());
        std::exit(1);
      }
    }
    return MillisSince(start);
  };
  constexpr int kQueries = 200;
  double idle_ms = measure_queries(kQueries);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writer_ops{0};
  std::thread writer([&] {
    Session wsession = engine.OpenSession();
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const Entry& leaf = leaves[i++ % leaves.size()];
      Entry e = leaf;
      e.AddInt("benchrev", static_cast<int64_t>(i));
      UpdateBatch batch;
      batch.Put(e);
      if (wsession.Apply(batch).ok()) {
        writer_ops.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  double busy_ms = measure_queries(kQueries);
  stop = true;
  writer.join();
  double q_idle = OpsPerSec(kQueries, idle_ms);
  double q_busy = OpsPerSec(kQueries, busy_ms);
  double w_busy = OpsPerSec(static_cast<double>(writer_ops.load()), busy_ms);
  std::printf("queries idle: %.0f q/s; with concurrent writer: %.0f q/s "
              "(writer sustained %.0f ops/s)\n",
              q_idle, q_busy, w_busy);

  // --- 4. Durable vs volatile write path ----------------------------------
  // Instance iteration is HierKey order, so parents always precede
  // children: valid on a fresh store.
  auto preload = [&](DirectoryStore* store) {
    for (const auto& [key, entry] : inst) {
      (void)key;
      Status s = store->Put(entry);
      if (!s.ok()) {
        std::fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
        std::exit(1);
      }
    }
  };
  auto time_puts = [&](DirectoryStore* store) -> double {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kDurableOps; ++i) {
      Entry e = leaves[i % leaves.size()];
      e.AddInt("benchrev", i);
      Status s = store->Put(e);
      if (!s.ok()) {
        std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
        std::exit(1);
      }
    }
    return MillisSince(start);
  };
  double volatile_ms, durable_ms, recover_ms;
  uint64_t recovered_entries;
  {
    SimDisk vdisk(1024);
    DirectoryStore vstore(&vdisk, BenchSchema(3));
    preload(&vstore);
    volatile_ms = time_puts(&vstore);
  }
  SimDisk ddisk(1024);
  {
    auto dstore =
        DirectoryStore::CreateDurable(&ddisk, BenchSchema(3)).TakeValue();
    preload(dstore.get());
    durable_ms = time_puts(dstore.get());
    // Abandon without teardown: recovery must rebuild from the disk.
  }
  {
    auto start = std::chrono::steady_clock::now();
    auto recovered =
        DirectoryStore::Recover(&ddisk, BenchSchema(3)).TakeValue();
    recover_ms = MillisSince(start);
    recovered_entries = recovered->num_entries();
  }
  double volatile_ops = OpsPerSec(kDurableOps, volatile_ms);
  double durable_ops = OpsPerSec(kDurableOps, durable_ms);
  double wal_factor = durable_ops > 0 ? volatile_ops / durable_ops : 0.0;
  std::printf("write path: volatile %.0f ops/s, durable (WAL+sync) %.0f "
              "ops/s (%.1fx overhead)\n",
              volatile_ops, durable_ops, wal_factor);
  std::printf("recovery: %llu entries in %.1f ms\n",
              static_cast<unsigned long long>(recovered_entries), recover_ms);

  bool online = q_busy > 0 && writer_ops.load() > 0;
  std::printf("\nonline (queries and writes overlapped): %s\n",
              online ? "PASS" : "FAIL");

  FILE* f = std::fopen("BENCH_mutations.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"experiment\": \"bench_mutations\",\n");
    std::fprintf(f, "  \"entries\": %zu,\n", inst.size());
    std::fprintf(f, "  \"load_ops_per_sec\": %.0f,\n",
                 OpsPerSec(static_cast<double>(inst.size()), load_ms));
    std::fprintf(f, "  \"steady_mutation_ops_per_sec\": %.0f,\n", steady_ops);
    std::fprintf(f, "  \"queries_per_sec_idle\": %.0f,\n", q_idle);
    std::fprintf(f, "  \"queries_per_sec_concurrent_writer\": %.0f,\n",
                 q_busy);
    std::fprintf(f, "  \"writer_ops_per_sec_concurrent\": %.0f,\n", w_busy);
    std::fprintf(f, "  \"volatile_put_ops_per_sec\": %.0f,\n", volatile_ops);
    std::fprintf(f, "  \"durable_put_ops_per_sec\": %.0f,\n", durable_ops);
    std::fprintf(f, "  \"wal_overhead_factor\": %.2f,\n", wal_factor);
    std::fprintf(f, "  \"recover_ms\": %.1f,\n", recover_ms);
    std::fprintf(f, "  \"recovered_entries\": %llu,\n",
                 static_cast<unsigned long long>(recovered_entries));
    std::fprintf(f, "  \"online_pass\": %s\n", online ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_mutations.json\n");
  }
  return online ? 0 : 1;
}
