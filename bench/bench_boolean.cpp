// E1 — boolean operators (Sec. 4.2, after Jacobson et al. [21]).
// Claim: (& L1 L2), (| L1 L2), (- L1 L2) cost O((|L1|+|L2|)/B) page I/Os
// via one merging scan, and the output stays sorted.

#include "bench_util.h"
#include "exec/boolean.h"

using namespace ndq;
using namespace ndq::bench;

int main() {
  PrintHeader("E1: boolean operator I/O (bench_boolean)",
              "linear I/O in (|L1|+|L2|)/B for &, |, -");
  std::printf("%10s %10s %8s | %8s %8s %8s | %s\n", "entries", "in_pages",
              "in_recs", "io(&)", "io(|)", "io(-)", "io(&)/in_pages");
  std::vector<uint64_t> xs, ys;
  for (size_t n : {4000, 8000, 16000, 32000, 64000}) {
    OperandLists lists(n);
    uint64_t io[3];
    QueryOp ops[3] = {QueryOp::kAnd, QueryOp::kOr, QueryOp::kDiff};
    for (int i = 0; i < 3; ++i) {
      uint64_t before = lists.disk.stats().TotalTransfers();
      EntryList out =
          EvalBoolean(&lists.disk, ops[i], lists.l1, lists.l2).TakeValue();
      io[i] = lists.disk.stats().TotalTransfers() - before;
      FreeRun(&lists.disk, &out).ok();
    }
    uint64_t in_pages = lists.l1.pages.size() + lists.l2.pages.size();
    std::printf("%10zu %10llu %8llu | %8llu %8llu %8llu | %.2f\n", n,
                (unsigned long long)in_pages,
                (unsigned long long)(lists.l1.num_records +
                                     lists.l2.num_records),
                (unsigned long long)io[0], (unsigned long long)io[1],
                (unsigned long long)io[2],
                static_cast<double>(io[0]) / in_pages);
    xs.push_back(in_pages);
    ys.push_back(io[0]);
  }
  PrintGrowth(xs, ys, "io(&)");
  std::printf("  expected: ~2x per 2x input (linear), constant io/in_pages\n");
  return 0;
}
