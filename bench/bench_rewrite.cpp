// E15 — the query optimizer (src/query/rewrite.h).
// Claims: (a) merging same-base/same-scope boolean operands into one LDAP
// scan saves a full leaf scan per merge; (b) contracting the Theorem
// 8.2(d) p/c-via-ac/dc expansion removes the whole-forest third operand —
// the exact cost Sec. 8.1 warns about when motivating keeping p and c as
// primitives; (c) the cost model predicts the same ordering the measured
// I/O shows.

#include "bench_util.h"
#include "exec/cost.h"
#include "gen/dif_gen.h"
#include "gen/paper_data.h"
#include "query/parser.h"
#include "query/rewrite.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

struct Measured {
  uint64_t io;
  size_t results;
  double estimated;
};

Measured Measure(SimDisk* disk, const EntryStore& store,
                 const QueryPtr& q) {
  SimDisk scratch;
  // The harness default (canonicalization off) matters here: the whole
  // point is measuring the plan exactly as given, pre- vs post-rewrite.
  EngineHarness h(&scratch, &store);
  disk->ResetStats();
  std::vector<Entry> r = h.Entries(q);
  return Measured{
      disk->stats().TotalTransfers() + scratch.stats().TotalTransfers(),
      r.size(), EstimateCost(store, *q).TotalPages()};
}

}  // namespace

int main() {
  PrintHeader("E15: query optimizer (bench_rewrite)",
              "rewrites reduce scans; the Thm 8.2(d) expansion is costly");

  std::printf("%10s | %-22s | %10s %10s %8s | %10s %10s\n", "entries",
              "plan", "io(orig)", "io(rewr)", "saved", "est(orig)",
              "est(rewr)");
  for (int scale : {2, 8}) {
    gen::DifOptions opt;
    opt.num_orgs = 2 * scale;
    DirectoryInstance inst = gen::GenerateDif(opt);
    SimDisk disk;
    EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();

    const struct {
      const char* label;
      const char* text;
    } plans[] = {
        {"merge & into one scan",
         "(& (dc=com ? sub ? objectClass=QHP)"
         "   (dc=com ? sub ? priority<=1))"},
        {"merge nested | and &",
         "(& (| (dc=com ? sub ? objectClass=QHP)"
         "      (dc=com ? sub ? objectClass=callAppearance))"
         "   (dc=com ? sub ? priority=1))"},
        {"contract p from ac",
         "(ac (dc=com ? sub ? objectClass=QHP)"
         "    (dc=com ? sub ? objectClass=TOPSSubscriber)"
         "    (null-dn ? sub ? objectClass=*))"},
        {"contract c from dc",
         "(dc (dc=com ? sub ? objectClass=TOPSSubscriber)"
         "    (dc=com ? sub ? objectClass=QHP)"
         "    (null-dn ? sub ? objectClass=*))"},
    };
    for (const auto& plan : plans) {
      QueryPtr q = ParseQuery(plan.text).TakeValue();
      QueryPtr r = RewriteQuery(q);
      Measured orig = Measure(&disk, store, q);
      Measured rewr = Measure(&disk, store, r);
      if (orig.results != rewr.results) {
        std::printf("RESULT MISMATCH on %s!\n", plan.label);
        return 1;
      }
      std::printf("%10zu | %-22s | %10llu %10llu %7.2fx | %10.0f %10.0f\n",
                  inst.size(), plan.label,
                  (unsigned long long)orig.io, (unsigned long long)rewr.io,
                  rewr.io > 0 ? static_cast<double>(orig.io) / rewr.io
                              : 0.0,
                  orig.estimated, rewr.estimated);
    }
  }
  std::printf(
      "\nexpected: scan merges save ~1.5-2x I/O; contracting the Thm\n"
      "8.2(d) expansion removes the whole-forest scan of the third\n"
      "operand (the cost Sec. 8.1 cites for keeping p/c primitive); the\n"
      "cost-model estimates rank plans the same way as measured I/O.\n");
  return 0;
}
