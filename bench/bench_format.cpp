// E19 — compact on-disk page format (bench_format).
// Claims: on a deep directory (fan-out 2, so DNs nest far and the
// reverse-DN sort keys share long prefixes), prefix-compressed pages
// with restart points cut the store's footprint AND every cold query's
// page transfers by >= 30% — while query results stay byte-identical to
// the raw format and the paper's theorem bounds keep holding on the
// compressed traces.
//
// Queries are built programmatically (Query::Atomic/And/Or/Diff) so the
// mix is immune to DN-escaping differences in the generated RDNs.
// Emits BENCH_format.json for EXPERIMENTS.md.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/trace.h"
#include "filter/atomic_filter.h"
#include "gen/random_forest.h"
#include "query/ast.h"
#include "storage/serde.h"
#include "store/entry_store.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

constexpr double kMaxPageRatio = 0.7;  // compressed/raw, both footprint+cold

// A deep forest: fan-out 2 pushes median depth to ~log2(n), which is the
// regime the paper's hierarchical operators target and where reverse-DN
// keys share the longest prefixes.
DirectoryInstance DeepForest(size_t n) {
  gen::RandomForestOptions opt;
  opt.seed = 19;
  opt.num_entries = n;
  opt.num_roots = 2;
  opt.max_children = 2;
  opt.weird_rdn_probability = 0.1;
  opt.extreme_int_probability = 0.05;
  return gen::RandomForest(opt);
}

// Programmatic query mix over the deep store: subtree selections from
// the roots, boolean combinations, a whole-forest scan (null base), and
// a deep-base subtree that exercises the sparse-index seek path.
std::vector<QueryPtr> BuildMix(const DirectoryInstance& inst) {
  std::vector<Dn> roots;
  Dn deepest;
  for (const auto& [key, entry] : inst) {
    (void)key;
    const Dn& dn = entry.dn();
    if (dn.depth() == 1) roots.push_back(dn);
    if (dn.depth() > deepest.depth()) deepest = dn;
  }
  // Mid-depth base: ancestor of the deepest entry, halfway up.
  Dn mid = deepest;
  for (size_t i = 0; i + 1 < deepest.depth() / 2; ++i) mid = mid.Parent();

  auto atomic = [](Dn base, AtomicFilter f) {
    return Query::Atomic(std::move(base), Scope::kSub, std::move(f));
  };
  std::vector<QueryPtr> mix;
  mix.push_back(atomic(roots[0],
                       AtomicFilter::Equals("objectClass",
                                            Value::String("class0"))));
  mix.push_back(Query::Or(
      atomic(roots[0], AtomicFilter::Equals("tag", Value::String("tag1"))),
      atomic(roots.size() > 1 ? roots[1] : roots[0],
             AtomicFilter::Equals("objectClass", Value::String("class1")))));
  mix.push_back(Query::And(
      atomic(roots[0], AtomicFilter::Presence("x")),
      atomic(roots[0],
             AtomicFilter::Equals("objectClass", Value::String("class2")))));
  mix.push_back(Query::Diff(
      atomic(roots[0], AtomicFilter::Presence("objectClass")),
      atomic(roots[0], AtomicFilter::Equals("tag", Value::String("tag0")))));
  // Whole forest (null base), then a deep subtree.
  mix.push_back(atomic(Dn(), AtomicFilter::Presence("objectClass")));
  mix.push_back(atomic(mid, AtomicFilter::Presence("objectClass")));
  return mix;
}

struct ModeResult {
  uint64_t store_pages = 0;
  uint64_t cold_pages = 0;
  uint64_t violations = 0;
  /// Serialized bytes of every result entry, per query, in order: equal
  /// digests == byte-identical results.
  std::vector<std::string> digests;
};

ModeResult RunMode(bool compressed, const DirectoryInstance& inst,
                   const std::vector<QueryPtr>& mix) {
  SetPageCompression(compressed);
  ModeResult r;
  SimDisk disk(4096);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  r.store_pages = store.num_pages();

  EngineHarness h(&disk, &store);
  IoStats before = disk.stats();
  for (const QueryPtr& q : mix) {
    QueryOutcome out = h.Run(q);
    r.violations += VerifyTheoremBounds(out.trace).size();
    std::string digest;
    for (const Entry& e : out.entries) SerializeEntry(e, &digest);
    r.digests.push_back(std::move(digest));
  }
  r.cold_pages = (disk.stats() - before).TotalTransfers();
  return r;
}

}  // namespace

int main() {
  PrintHeader("E19: compact on-disk format (bench_format)",
              "prefix-compressed pages cut deep-directory store and cold "
              "query pages >= 30% with byte-identical results and intact "
              "theorem bounds");

  const size_t sweep[] = {4000, 8000, 16000};
  bool identical = true;
  uint64_t violations = 0;
  double worst_store_ratio = 0, worst_cold_ratio = 0;

  std::printf("%8s %10s %10s %7s %10s %10s %7s\n", "entries", "raw_store",
              "cmp_store", "ratio", "raw_cold", "cmp_cold", "ratio");
  FILE* f = std::fopen("BENCH_format.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"experiment\": \"bench_format\",\n");
    std::fprintf(f, "  \"sweep\": [\n");
  }
  for (size_t i = 0; i < 3; ++i) {
    size_t n = sweep[i];
    DirectoryInstance inst = DeepForest(n);
    std::vector<QueryPtr> mix = BuildMix(inst);
    ModeResult raw = RunMode(false, inst, mix);
    ModeResult comp = RunMode(true, inst, mix);
    SetPageCompression(true);  // restore the default

    double store_ratio =
        static_cast<double>(comp.store_pages) / raw.store_pages;
    double cold_ratio = static_cast<double>(comp.cold_pages) / raw.cold_pages;
    worst_store_ratio = std::max(worst_store_ratio, store_ratio);
    worst_cold_ratio = std::max(worst_cold_ratio, cold_ratio);
    violations += raw.violations + comp.violations;
    if (raw.digests != comp.digests) identical = false;

    std::printf("%8zu %10llu %10llu %6.2f%% %10llu %10llu %6.2f%%\n", n,
                static_cast<unsigned long long>(raw.store_pages),
                static_cast<unsigned long long>(comp.store_pages),
                100 * store_ratio,
                static_cast<unsigned long long>(raw.cold_pages),
                static_cast<unsigned long long>(comp.cold_pages),
                100 * cold_ratio);
    if (f != nullptr) {
      std::fprintf(f,
                   "    {\"entries\": %zu, \"raw_store_pages\": %llu, "
                   "\"compressed_store_pages\": %llu, \"raw_cold_pages\": "
                   "%llu, \"compressed_cold_pages\": %llu}%s\n",
                   n, static_cast<unsigned long long>(raw.store_pages),
                   static_cast<unsigned long long>(comp.store_pages),
                   static_cast<unsigned long long>(raw.cold_pages),
                   static_cast<unsigned long long>(comp.cold_pages),
                   i + 1 < 3 ? "," : "");
    }
  }

  bool store_ok = worst_store_ratio <= kMaxPageRatio;
  bool cold_ok = worst_cold_ratio <= kMaxPageRatio;
  std::printf("\nworst store-page ratio: %.2f (target <= %.2f) %s\n",
              worst_store_ratio, kMaxPageRatio, store_ok ? "PASS" : "FAIL");
  std::printf("worst cold-page ratio:  %.2f (target <= %.2f) %s\n",
              worst_cold_ratio, kMaxPageRatio, cold_ok ? "PASS" : "FAIL");
  std::printf("results byte-identical across formats: %s\n",
              identical ? "PASS" : "FAIL");
  std::printf("theorem-bound violations: %llu %s\n",
              static_cast<unsigned long long>(violations),
              violations == 0 ? "PASS" : "FAIL");

  if (f != nullptr) {
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"worst_store_ratio\": %.3f,\n", worst_store_ratio);
    std::fprintf(f, "  \"worst_cold_ratio\": %.3f,\n", worst_cold_ratio);
    std::fprintf(f, "  \"max_page_ratio\": %.2f,\n", kMaxPageRatio);
    std::fprintf(f, "  \"results_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"theorem_violations\": %llu\n",
                 static_cast<unsigned long long>(violations));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_format.json\n");
  }
  return (store_ok && cold_ok && identical && violations == 0) ? 0 : 1;
}
