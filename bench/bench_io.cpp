// E18 — async I/O and scan prefetch (bench_io).
// Claims: with per-page transfer latency on the simulated disk, scan
// prefetch at io-depth d overlaps a plan's page transfers with its CPU
// work, so COLD multi-thread wall-clock approaches the latency-free
// floor — while the COUNTED page transfers (the theorems' currency) are
// byte-identical to the synchronous run at every io-depth. The same
// workload on the real-file backend (FileDisk, pread) reports actual
// hardware wall-clock next to the simulated numbers.
//
// Emits BENCH_io.json (threads x io-depth sweep, sim + file backends)
// for EXPERIMENTS.md. Gate: cold 4-thread async >= 4.5x over the
// 1-thread synchronous baseline, pages identical, theorem bounds clean.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/trace.h"
#include "gen/dif_gen.h"
#include "query/parser.h"
#include "storage/file_disk.h"
#include "store/entry_store.h"

using namespace ndq;
using namespace ndq::bench;

namespace {

constexpr uint32_t kLatencyMicros = 80;
constexpr double kTargetSpeedup = 4.5;
// FileDisk gate: with the OS page cache serving reads faster than the
// async queue round trip, adaptive backoff (Disk::PrefetchWorthwhile)
// must keep every prefetching config within ~10% of its same-thread
// synchronous peer — prefetch never pays, so it must never cost either.
constexpr double kFileAsyncFloor = 0.9;

// Multi-operand plans whose leaves are selective full-store scans: the
// scans dominate the I/O, each one is a sorted-run pass the Prefetcher
// can stream ahead on, and with >1 thread the operand subtrees overlap.
const char* kPlanMix[] = {
    "(& (| (dc=com ? sub ? objectClass=SLADSAction)"
    "      (dc=com ? sub ? objectClass=policyValidityPeriod))"
    "   (- (dc=com ? sub ? objectClass=trafficProfile)"
    "      (dc=com ? sub ? sourcePort=25)))",
    "(dc (dc=com ? sub ? objectClass=dcObject)"
    "    (& (dc=com ? sub ? sourcePort=25)"
    "       (dc=com ? sub ? objectClass=trafficProfile))"
    "    (dc=com ? sub ? objectClass=dcObject))",
    "(- (| (dc=com ? sub ? objectClass=SLAPolicyRules)"
    "      (dc=com ? sub ? objectClass=SLADSAction))"
    "   (| (dc=com ? sub ? objectClass=policyValidityPeriod)"
    "      (dc=com ? sub ? sourcePort=25)))",
    "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
    "    (& (dc=com ? sub ? sourcePort=25)"
    "       (dc=com ? sub ? objectClass=trafficProfile))"
    "    SLATPRef)",
};

struct Config {
  size_t threads;
  size_t io_depth;
};

struct Measurement {
  Config config;
  double cold_ms = 0;
  uint64_t pages = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;
};

std::vector<QueryPtr> ParseMix() {
  std::vector<QueryPtr> mix;
  for (const char* text : kPlanMix) {
    mix.push_back(ParseQuery(text).TakeValue());
  }
  return mix;
}

// One cold pass of the whole mix under (threads, io_depth); counted
// transfers and prefetch stats come off the disk's global stats so the
// numbers cover every scan in the plan, not just the traced root.
Measurement Measure(Disk* disk, const EntrySource& store,
                    const std::vector<QueryPtr>& mix, Config config,
                    uint64_t* violations) {
  Measurement m;
  m.config = config;
  EngineOptions options = EngineHarness::ColdOptions();
  options.exec.parallelism = config.threads;
  options.io_depth = config.io_depth;
  // options.io_depth == 0 means "leave the disk alone", so reset the
  // depth the previous config left attached before measuring.
  disk->SetIoDepth(config.io_depth);

  EngineHarness h(disk, &store, options);
  IoStats before = disk->stats();
  auto start = std::chrono::steady_clock::now();
  for (const QueryPtr& q : mix) {
    QueryOutcome out = h.Run(q);
    *violations += VerifyTheoremBounds(out.trace).size();
  }
  auto end = std::chrono::steady_clock::now();
  m.cold_ms = std::chrono::duration<double, std::milli>(end - start).count();
  IoStats delta = disk->stats() - before;
  m.pages = delta.TotalTransfers();
  m.prefetch_hits = delta.prefetch_hits;
  m.prefetch_wasted = delta.prefetch_wasted;
  return m;
}

void PrintSweep(const char* label, const std::vector<Measurement>& ms) {
  double base = ms.front().cold_ms;
  std::printf("\n== %s ==\n", label);
  std::printf("%8s %9s %10s %10s %12s %10s %8s\n", "threads", "iodepth",
              "cold_ms", "speedup", "pages", "pf_hits", "wasted");
  for (const Measurement& m : ms) {
    std::printf("%8zu %9zu %10.1f %9.2fx %12llu %10llu %8llu\n",
                m.config.threads, m.config.io_depth, m.cold_ms,
                base / m.cold_ms, static_cast<unsigned long long>(m.pages),
                static_cast<unsigned long long>(m.prefetch_hits),
                static_cast<unsigned long long>(m.prefetch_wasted));
  }
}

void AppendSweepJson(FILE* f, const char* key,
                     const std::vector<Measurement>& ms) {
  double base = ms.front().cold_ms;
  std::fprintf(f, "  \"%s\": [\n", key);
  for (size_t i = 0; i < ms.size(); ++i) {
    const Measurement& m = ms[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"io_depth\": %zu, "
                 "\"cold_ms\": %.1f, \"speedup\": %.2f, \"pages\": %llu, "
                 "\"prefetch_hits\": %llu, \"prefetch_wasted\": %llu}%s\n",
                 m.config.threads, m.config.io_depth, m.cold_ms,
                 base / m.cold_ms, static_cast<unsigned long long>(m.pages),
                 static_cast<unsigned long long>(m.prefetch_hits),
                 static_cast<unsigned long long>(m.prefetch_wasted),
                 i + 1 < ms.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
}

}  // namespace

int main() {
  PrintHeader("E18: async I/O and scan prefetch (bench_io)",
              "prefetch overlaps scan transfers with CPU so cold "
              "multi-thread wall-clock approaches the latency-free floor; "
              "counted pages byte-identical at every io-depth");

  gen::DifOptions opt;
  opt.num_orgs = 6;
  opt.subdomains_per_org = 3;
  DirectoryInstance inst = gen::GenerateDif(opt);
  std::vector<QueryPtr> mix = ParseMix();

  const Config sweep[] = {
      {1, 0},  // synchronous baseline: every transfer stalls its thread
      {1, 4}, {1, 16}, {4, 0}, {4, 4}, {4, 16},
  };

  // ---- Simulated device: latency-accurate wall-clock + exact pages ----
  SimDisk disk(1024);
  EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();
  std::printf("directory: %zu entries, %zu store pages, %uus/page\n",
              inst.size(), disk.live_pages(), kLatencyMicros);
  disk.set_transfer_latency_micros(kLatencyMicros);

  uint64_t violations = 0;
  std::vector<Measurement> sim;
  for (Config config : sweep) {
    sim.push_back(Measure(&disk, store, mix, config, &violations));
  }
  disk.SetIoDepth(0);
  disk.set_transfer_latency_micros(0);
  PrintSweep("simulated disk (80us/page)", sim);

  // ---- Real files: wall-clock on actual hardware, same workload ----
  const char* tmp = std::getenv("TMPDIR");
  std::string path = std::string(tmp != nullptr ? tmp : "/tmp") +
                     "/ndq-bench-io-" + std::to_string(::getpid()) +
                     ".pages";
  std::vector<Measurement> file;
  {
    FileDisk fdisk(path, 1024);
    if (!fdisk.init_status().ok()) {
      std::fprintf(stderr, "file backend unavailable: %s\n",
                   fdisk.init_status().ToString().c_str());
      return 1;
    }
    EntryStore fstore = EntryStore::BulkLoad(&fdisk, inst).TakeValue();
    uint64_t fviolations = 0;
    for (Config config : sweep) {
      // Real-file wall-clock is noisy at this scale; keep the best of
      // three so the async-vs-sync gate measures the backend, not the
      // scheduler.
      Measurement best = Measure(&fdisk, fstore, mix, config, &fviolations);
      for (int rep = 1; rep < 3; ++rep) {
        Measurement again =
            Measure(&fdisk, fstore, mix, config, &fviolations);
        if (again.cold_ms < best.cold_ms) best = again;
      }
      file.push_back(best);
    }
    fdisk.SetIoDepth(0);
    violations += fviolations;
    PrintSweep("file disk (pread, page cache)", file);
  }
  ::unlink(path.c_str());

  // ---- Gates ----
  bool pages_identical = true;
  for (const auto& ms : {sim, file}) {
    for (const Measurement& m : ms) {
      if (m.pages != ms.front().pages) pages_identical = false;
    }
  }
  // Best cold 4-thread async config against the 1-thread sync baseline.
  double best4 = 0;
  for (const Measurement& m : sim) {
    if (m.config.threads == 4 && m.config.io_depth > 0) {
      best4 = std::max(best4, sim.front().cold_ms / m.cold_ms);
    }
  }
  // Every prefetching file-backend config against its same-thread
  // synchronous peer.
  double worst_file_ratio = 1e9;
  for (const Measurement& m : file) {
    if (m.config.io_depth == 0) continue;
    for (const Measurement& s : file) {
      if (s.config.threads == m.config.threads && s.config.io_depth == 0) {
        worst_file_ratio = std::min(worst_file_ratio, s.cold_ms / m.cold_ms);
      }
    }
  }
  std::printf("\ncold 4-thread async speedup: %.2fx (target >= %.1fx) %s\n",
              best4, kTargetSpeedup, best4 >= kTargetSpeedup ? "PASS" : "FAIL");
  std::printf("file async vs sync, worst point: %.2fx (floor >= %.1fx) %s\n",
              worst_file_ratio, kFileAsyncFloor,
              worst_file_ratio >= kFileAsyncFloor ? "PASS" : "FAIL");
  std::printf("counted pages identical across io-depths: %s\n",
              pages_identical ? "PASS" : "FAIL");
  std::printf("theorem-bound violations: %llu %s\n",
              static_cast<unsigned long long>(violations),
              violations == 0 ? "PASS" : "FAIL");

  FILE* f = std::fopen("BENCH_io.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"experiment\": \"bench_io\",\n");
    std::fprintf(f, "  \"entries\": %zu,\n", inst.size());
    std::fprintf(f, "  \"page_latency_us\": %u,\n", kLatencyMicros);
    AppendSweepJson(f, "sim", sim);
    std::fprintf(f, ",\n");
    AppendSweepJson(f, "file", file);
    std::fprintf(f, ",\n");
    std::fprintf(f, "  \"cold_4t_async_speedup\": %.2f,\n", best4);
    std::fprintf(f, "  \"target_speedup\": %.1f,\n", kTargetSpeedup);
    std::fprintf(f, "  \"file_async_vs_sync_worst\": %.2f,\n",
                 worst_file_ratio);
    std::fprintf(f, "  \"file_async_vs_sync_floor\": %.1f,\n",
                 kFileAsyncFloor);
    std::fprintf(f, "  \"pages_identical\": %s,\n",
                 pages_identical ? "true" : "false");
    std::fprintf(f, "  \"theorem_violations\": %llu\n",
                 static_cast<unsigned long long>(violations));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_io.json\n");
  }
  return (best4 >= kTargetSpeedup && worst_file_ratio >= kFileAsyncFloor &&
          pages_identical && violations == 0)
             ? 0
             : 1;
}
