// E13 — end-to-end DEN workloads (Secs. 2 and 7; Figs. 11 and 12).
// Claims: the full application pipelines — QoS packet-to-action
// resolution and TOPS dial-by-name — run with I/O dominated by the
// relevant subtrees and scale gracefully with directory size.

#include <chrono>

#include "apps/qos.h"
#include "apps/tops.h"
#include "bench_util.h"
#include "gen/dif_gen.h"
#include "gen/paper_data.h"

using namespace ndq;
using namespace ndq::bench;

int main() {
  PrintHeader("E13: DEN application workloads (bench_den_apps)",
              "QoS match + TOPS resolve, scaling with directory size");

  std::printf("%10s %10s | %12s %12s | %12s %12s\n", "entries", "store_pgs",
              "qos io/req", "qos us/req", "tops io/req", "tops us/req");
  for (int scale : {1, 2, 4, 8}) {
    gen::DifOptions opt;
    opt.num_orgs = 2 * scale;
    opt.subdomains_per_org = 2;
    opt.policies_per_domain = 16;
    opt.subscribers_per_domain = 25;
    DirectoryInstance inst = gen::GenerateDif(opt);
    SimDisk disk, scratch;
    EntryStore store = EntryStore::BulkLoad(&disk, inst).TakeValue();

    apps::QosPolicyEngine qos(&scratch, &store,
                              gen::MustDn("dc=sub0, dc=org0, dc=com"));
    apps::TopsResolver tops(&scratch, &store,
                            gen::MustDn("dc=sub0, dc=org0, dc=com"));

    const int kReqs = 50;
    // --- QoS ---
    uint64_t io0 = disk.stats().TotalTransfers() +
                   scratch.stats().TotalTransfers();
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReqs; ++i) {
      apps::PacketProfile packet;
      packet.source_address = std::to_string(200 + i % 20) + ".7.3.2";
      packet.source_port = (i % 2 == 0) ? 25 : 443;
      packet.timestamp = 19980408120000 + i;
      packet.day_of_week = 1 + i % 7;
      if (!qos.Match(packet).ok()) return 1;
    }
    auto t1 = std::chrono::steady_clock::now();
    uint64_t qos_io = disk.stats().TotalTransfers() +
                      scratch.stats().TotalTransfers() - io0;
    double qos_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kReqs;

    // --- TOPS ---
    io0 = disk.stats().TotalTransfers() + scratch.stats().TotalTransfers();
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReqs; ++i) {
      apps::CallContext ctx{"", 900 + (i % 10) * 100, 1 + i % 7};
      if (!tops.Resolve("user" + std::to_string(i % 25), ctx).ok()) {
        return 1;
      }
    }
    t1 = std::chrono::steady_clock::now();
    uint64_t tops_io = disk.stats().TotalTransfers() +
                       scratch.stats().TotalTransfers() - io0;
    double tops_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kReqs;

    std::printf("%10zu %10llu | %12.1f %12.1f | %12.1f %12.1f\n",
                inst.size(), (unsigned long long)store.num_pages(),
                static_cast<double>(qos_io) / kReqs, qos_us,
                static_cast<double>(tops_io) / kReqs, tops_us);
  }
  std::printf(
      "\nexpected: per-request I/O grows with the *domain* subtree (fixed\n"
      "here), not the whole directory — locality from the hierarchical\n"
      "namespace; latency stays in the sub-millisecond range.\n");
  return 0;
}
