// Shared helpers for the experiment harnesses (see DESIGN.md, Sec. 4).
//
// Every harness validates a *shape* claim from the paper — linear I/O,
// N log N I/O, quadratic naive baselines, crossovers — by measuring page
// transfers on the simulated disk across a size sweep and printing the
// series plus a fitted growth ratio.

#ifndef NDQ_BENCH_BENCH_UTIL_H_
#define NDQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/common.h"
#include "gen/random_forest.h"

namespace ndq {
namespace bench {

/// Two operand lists drawn from a random forest by class membership.
struct OperandLists {
  SimDisk disk{4096};
  DirectoryInstance inst{Schema(), false};
  EntryList l1, l2, l3;

  explicit OperandLists(size_t n, uint32_t seed = 7) {
    gen::RandomForestOptions opt;
    opt.seed = seed;
    opt.num_entries = n;
    inst = gen::RandomForest(opt);
    std::vector<const Entry*> c0, c01, c2;
    for (const auto& [key, entry] : inst) {
      (void)key;
      if (entry.HasClass("class0")) c0.push_back(&entry);
      if (entry.HasClass("class1") || entry.HasClass("class0")) {
        c01.push_back(&entry);
      }
      if (entry.HasClass("class2")) c2.push_back(&entry);
    }
    l1 = MakeEntryList(&disk, c0).TakeValue();
    l2 = MakeEntryList(&disk, c01).TakeValue();
    l3 = MakeEntryList(&disk, c2).TakeValue();
  }

  uint64_t InputPages() const {
    return l1.pages.size() + l2.pages.size() + l3.pages.size();
  }
  uint64_t InputRecords() const {
    return l1.num_records + l2.num_records + l3.num_records;
  }
};

/// Engine-backed evaluation for the harnesses: a borrowing-mode engine
/// over (scratch, store) plus one session. The default options are tuned
/// for measurement, not serving: the operand cache is OFF (the shape
/// claims measure cold I/O) and plan canonicalization is OFF (several
/// harnesses compare un-rewritten against rewritten plans). Flip either
/// through `opts` when a harness wants warm-cache or canonical behavior.
struct EngineHarness {
  Engine engine;
  Session session;

  static EngineOptions ColdOptions() {
    EngineOptions o;
    o.cache_capacity_pages = 0;
    o.rewrite = false;
    return o;
  }

  EngineHarness(Disk* scratch, const EntrySource* store,
                EngineOptions opts = ColdOptions())
      : engine(scratch, store, opts), session(engine.OpenSession()) {}

  /// Evaluates one plan; exits on failure (the bench convention — a
  /// harness measuring a failed query would report garbage).
  QueryOutcome Run(const QueryPtr& plan) {
    QueryOutcome out = session.Run(plan);
    if (!out.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   out.status.ToString().c_str());
      std::exit(1);
    }
    return out;
  }

  std::vector<Entry> Entries(const QueryPtr& plan) {
    return Run(plan).entries;
  }
};

inline void PrintHeader(const char* experiment, const char* claim) {
  std::printf("\n==================================================\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("==================================================\n");
}

/// Prints the growth factor between successive sweep points: ~doubling for
/// linear behaviour under a doubling sweep, ~4x for quadratic.
inline void PrintGrowth(const std::vector<uint64_t>& xs,
                        const std::vector<uint64_t>& ys,
                        const char* label) {
  std::printf("  growth of %s per 2x input:", label);
  for (size_t i = 1; i < ys.size(); ++i) {
    double gx = xs[i] > 0 && xs[i - 1] > 0
                    ? static_cast<double>(xs[i]) / xs[i - 1]
                    : 0.0;
    double gy = ys[i - 1] > 0 ? static_cast<double>(ys[i]) / ys[i - 1] : 0.0;
    std::printf(" %.2fx(in %.1fx)", gy, gx);
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace ndq

#endif  // NDQ_BENCH_BENCH_UTIL_H_
